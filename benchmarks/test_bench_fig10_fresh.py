"""Figure 10: effect of the number of fresh tokens |F| (synthetic).

Sweep |F| over {0, 5, 10, 15, 20} with Table 3 defaults otherwise.

Paper claims reproduced as assertions:
* TM_R stays roughly flat in |F|,
* the informed approaches exploit fresh tokens (cheap single-token
  modules) to find smaller rings as |F| grows,
* running time grows (weakly) with |F| — more candidate modules.
"""

from repro.experiments.figures import fig10_vary_fresh
from repro.experiments.tables import settings_banner

from bench_common import INSTANCES_PER_POINT, mean, trend, write_figure


def test_fig10_effect_of_fresh_tokens(benchmark):
    sweep = benchmark.pedantic(
        fig10_vary_fresh,
        kwargs=dict(instances_per_point=INSTANCES_PER_POINT, seed=0),
        iterations=1,
        rounds=1,
    )
    note = settings_banner("Figure 10: vary |F| (synthetic)", F="0..20")
    print("\n" + write_figure("fig10", sweep, note))

    game_sizes = sweep.series("game", "mean_size")
    progressive_sizes = sweep.series("progressive", "mean_size")

    # Informed approaches shrink rings as fresh tokens appear.
    assert trend(game_sizes) < 0
    assert trend(progressive_sizes) <= 0

    # And they beat the baselines on mean size across the sweep.
    assert mean(game_sizes) <= mean(sweep.series("smallest", "mean_size"))
    assert mean(game_sizes) <= mean(sweep.series("random", "mean_size"))
