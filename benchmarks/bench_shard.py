"""Sharded selection fleet vs today's single daemon (BENCH_shard.json).

The workload is the commit-interleaved hot-target pattern the shard
router exists for: a universe of many TokenMagic batches, each with
its own ring history and a couple of popular targets, and a chain
that keeps growing — every round commits one ring into one batch and
then re-asks every hot target.

Today's daemon (the 1-shard column: a partitioned
:class:`~repro.service.daemon.SelectionService` with the stock
whole-snapshot invalidation) rebuilds *all* warm state after every
commit.  The router columns keep each shard's untouched batch slices
— solver cache, module decomposition, result memo — warm across those
commits, so each round re-solves exactly one batch and replays the
rest.  On the single-core bench box that work-avoidance, not
parallelism, is where the aggregate-throughput win comes from; the
shard counts mostly show the routing/IPC overhead staying flat.

Claims asserted:

* responses are byte-identical across every column (modulo execution
  coordinates), including through all the commits;
* aggregate throughput at REPRO_BENCH_SHARD_HEADLINE shards is
  >= REPRO_BENCH_SHARD_MIN_SPEEDUP x the 1-shard column (default 3.0;
  the smoke profile relaxes it).

Writes ``benchmarks/results/BENCH_shard.json``: per-column throughput
and request-latency quantiles, per-shard p99 via the PR-7 telemetry
rows, and the workload fingerprint ``tools/bench_trend.py`` keys on.
Run as a script (``make bench`` / ``make shard-smoke``); the smoke
profile (``REPRO_BENCH_SHARD_SMOKE=1``) shrinks the grid to 1/4
shards with its own fingerprint so trend checks skip it.
"""

from __future__ import annotations

import os
import random
import time

from repro.core.ring import Ring, TokenUniverse
from repro.service import (
    RouterConfig,
    SelectionService,
    SelectRequest,
    ServiceConfig,
)
from repro.service.router import ShardRouter

from bench_common import save_json, save_text

SMOKE = os.environ.get("REPRO_BENCH_SHARD_SMOKE") == "1"

BATCHES = 8 if SMOKE else 16
TOKENS_PER_BATCH = 16 if SMOKE else 18
HT_COUNT = 5
RINGS_PER_BATCH = 8 if SMOKE else 10
HOT_PER_BATCH = 2
ROUNDS = 3 if SMOKE else 8
SHARD_COUNTS = (1, 4) if SMOKE else (1, 2, 4, 8, 16)
SEED = 9
C, ELL = 2.0, 2

HEADLINE_SHARDS = int(
    os.environ.get("REPRO_BENCH_SHARD_HEADLINE", "4" if SMOKE else "8")
)
MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_SHARD_MIN_SPEEDUP", "1.1" if SMOKE else "3.0")
)

WORKLOAD = {
    "batches": BATCHES,
    "tokens_per_batch": TOKENS_PER_BATCH,
    "hts": HT_COUNT,
    "rings_per_batch": RINGS_PER_BATCH,
    "hot_per_batch": HOT_PER_BATCH,
    "rounds": ROUNDS,
    "shard_counts": list(SHARD_COUNTS),
    "seed": SEED,
    "c": C,
    "ell": ELL,
    "smoke": SMOKE,
}


def build_workload():
    """Universe, batch-local histories, hot targets and commit stream."""
    rng = random.Random(SEED)
    count = BATCHES * TOKENS_PER_BATCH
    universe = TokenUniverse(
        {f"t{i:03d}": f"h{rng.randrange(HT_COUNT)}" for i in range(count)}
    )
    tokens = sorted(universe.tokens)
    slices = [
        tokens[b * TOKENS_PER_BATCH : (b + 1) * TOKENS_PER_BATCH]
        for b in range(BATCHES)
    ]
    rings, seq = [], 0
    for b, members in enumerate(slices):
        for k in range(RINGS_PER_BATCH):
            rings.append(
                Ring(
                    f"h{b}:{k}",
                    frozenset(members[k : k + 4]),
                    c=C,
                    ell=ELL,
                    seq=seq,
                )
            )
            seq += 1
    hot = [members[-h - 1] for members in slices for h in range(HOT_PER_BATCH)]
    commits = [
        tuple(slices[r % BATCHES][0:3]) for r in range(max(0, ROUNDS - 1))
    ]
    return universe, rings, hot, commits


def canon(response) -> dict:
    """A response minus execution coordinates (see tests/test_service_shard)."""
    payload = response.to_dict()
    for key in ("elapsed", "batch_id", "batch_size", "warm_cache"):
        payload.pop(key, None)
    attrs = payload.get("attrs")
    if attrs is not None:
        attrs.pop("memo", None)
        if not attrs:
            payload.pop("attrs")
    return payload


def run_column(service, hot, commits):
    """ROUNDS of (commit, re-ask every hot target) against one backend."""
    responses = []
    started = time.perf_counter()
    for round_no in range(ROUNDS):
        if round_no > 0:
            service.commit_ring(tokens=commits[round_no - 1], c=C, ell=ELL)
        slots = [
            service.submit(
                SelectRequest(
                    request_id=f"r{round_no}-{i}",
                    target=target,
                    c=C,
                    ell=ELL,
                    mode="exact",
                )
            )
            for i, target in enumerate(hot)
        ]
        responses.extend(slot.wait(300.0) for slot in slots)
    elapsed = time.perf_counter() - started
    stats = service.stats()
    return responses, elapsed, stats


def column_row(shards: int, responses, elapsed: float, stats: dict) -> dict:
    hist = stats.get("telemetry", {}).get("histograms", {}).get("request_s", {})
    row = {
        "shards": shards,
        "requests": len(responses),
        "elapsed_s": round(elapsed, 6),
        "throughput_rps": round(len(responses) / elapsed, 3),
        "p50_ms": None if hist.get("p50") is None else round(hist["p50"] * 1e3, 3),
        "p99_ms": None if hist.get("p99") is None else round(hist["p99"] * 1e3, 3),
        "caches_invalidated": stats.get("caches_invalidated"),
        "memo_hits": stats.get("counters", {}).get("memo.hits", 0),
    }
    if "shards" in stats:
        row["per_shard"] = [
            {
                "shard": entry["shard"],
                "batches": entry["batches"],
                "requests": entry.get("requests"),
                "p99_ms": (
                    None
                    if entry.get("p99_s") is None
                    else round(entry["p99_s"] * 1e3, 3)
                ),
                "warm_hit_rate": entry.get("warm_hit_rate"),
                "memo_hit_rate": entry.get("memo_hit_rate"),
            }
            for entry in stats["shards"]
        ]
    return row


def main() -> int:
    universe, rings, hot, commits = build_workload()
    columns, baselines = [], {}
    for shards in SHARD_COUNTS:
        if shards == 1:
            # Today's daemon: single worker, whole-snapshot invalidation.
            service = SelectionService(
                universe,
                rings,
                ServiceConfig(partition=BATCHES, max_batch=64, linger_s=0.01),
            )
        else:
            service = ShardRouter(
                universe,
                rings,
                RouterConfig(
                    shards=shards, batches=BATCHES, max_batch=64, linger_s=0.01
                ),
            )
        with service:
            responses, elapsed, stats = run_column(service, hot, commits)
        assert all(r.status == "ok" for r in responses), [
            r.to_dict() for r in responses if r.status != "ok"
        ][:3]
        baselines[shards] = [canon(r) for r in responses]
        columns.append(column_row(shards, responses, elapsed, stats))
        print(
            f"shards={shards:>2}: {columns[-1]['throughput_rps']:8.1f} req/s  "
            f"p99={columns[-1]['p99_ms']}ms  "
            f"invalidated={columns[-1]['caches_invalidated']}"
        )

    # -- equivalence: every column answered every request identically -------
    reference = baselines[SHARD_COUNTS[0]]
    for shards in SHARD_COUNTS[1:]:
        assert baselines[shards] == reference, (
            f"column {shards} diverged from the 1-shard responses"
        )

    single = columns[0]["throughput_rps"]
    by_shards = {row["shards"]: row for row in columns}
    headline_row = by_shards.get(HEADLINE_SHARDS, columns[-1])
    speedup = round(headline_row["throughput_rps"] / single, 3)

    table = ["# BENCH_shard", "", "shards  req/s     p50ms    p99ms   speedup"]
    for row in columns:
        table.append(
            f"{row['shards']:>6}  {row['throughput_rps']:>8.1f}  "
            f"{row['p50_ms']!s:>7}  {row['p99_ms']!s:>7}  "
            f"{row['throughput_rps'] / single:>6.2f}x"
        )
    text = "\n".join(table)
    print(text)

    payload = {
        "workload": WORKLOAD,
        "columns": columns,
        "headline": {
            "shards": headline_row["shards"],
            "throughput_rps": headline_row["throughput_rps"],
            "speedup_vs_single": speedup,
            "single_throughput_rps": single,
        },
    }
    save_json("BENCH_shard.json", payload)
    save_text("BENCH_shard.txt", text)

    assert speedup >= MIN_SPEEDUP, (
        f"{headline_row['shards']}-shard throughput is only {speedup}x the "
        f"single daemon (need >= {MIN_SPEEDUP}x)"
    )
    print(
        f"headline: {headline_row['shards']} shards at "
        f"{headline_row['throughput_rps']} req/s = {speedup}x single"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
