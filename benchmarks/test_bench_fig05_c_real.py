"""Figure 5: effect of c on the real (Monero-shaped) data set.

Sweep c over {0.2, 0.4, 0.6, 0.8, 1.0} with l = 40 (Table 2) and
compare TM_S / TM_R / TM_P / TM_G on mean ring size and mean time.

Paper claims reproduced as assertions:
* ring sizes decrease as c grows (easier constraint),
* TM_P and TM_G produce smaller rings than the two baselines,
* TM_G's rings are the smallest of all.
"""

import math

from repro.experiments.figures import fig5_vary_c
from repro.experiments.tables import settings_banner

from bench_common import INSTANCES_PER_POINT, mean, write_figure


def test_fig5_effect_of_c(benchmark):
    sweep = benchmark.pedantic(
        fig5_vary_c,
        kwargs=dict(instances_per_point=INSTANCES_PER_POINT, seed=0),
        iterations=1,
        rounds=1,
    )
    note = settings_banner("Figure 5: vary c (real data)", c="0.2..1.0", l=40)
    print("\n" + write_figure("fig05", sweep, note))

    sizes = {name: sweep.series(name, "mean_size") for name in
             ("smallest", "random", "progressive", "game")}
    for series in sizes.values():
        assert all(not math.isnan(v) for v in series)

    # Sizes decrease (weakly) as c grows for the diversity-aware methods.
    assert sizes["progressive"][0] >= sizes["progressive"][-1]
    assert sizes["game"][0] >= sizes["game"][-1]

    # TM_G <= TM_P <= baselines on average across the sweep.
    assert mean(sizes["game"]) <= mean(sizes["progressive"]) + 1e-9
    assert mean(sizes["progressive"]) <= mean(sizes["smallest"]) + 1e-9
    assert mean(sizes["game"]) < mean(sizes["random"])

    # TM_G is the slowest approach (it buys size with time).
    times = {name: mean(sweep.series(name, "mean_time")) for name in sizes}
    assert times["game"] >= times["progressive"]
    assert times["game"] >= times["smallest"]
