"""Figure 8: effect of the number of super RSs |S| (synthetic).

Sweep |S| over {10, 30, 50, 70, 90} with Table 3 defaults otherwise.

Paper claims reproduced as assertions:
* TM_R's ring sizes stay roughly flat in |S| (random picking does not
  exploit a richer candidate pool),
* the other approaches find smaller rings as |S| grows,
* running time grows with |S| for every approach, fastest for TM_G.
"""

from repro.experiments.figures import fig8_vary_super_count
from repro.experiments.tables import settings_banner

from bench_common import INSTANCES_PER_POINT, trend, write_figure


def test_fig8_effect_of_super_count(benchmark):
    sweep = benchmark.pedantic(
        fig8_vary_super_count,
        kwargs=dict(instances_per_point=INSTANCES_PER_POINT, seed=0),
        iterations=1,
        rounds=1,
    )
    note = settings_banner("Figure 8: vary |S| (synthetic)", S="10..90")
    print("\n" + write_figure("fig08", sweep, note))

    game_sizes = sweep.series("game", "mean_size")
    smallest_sizes = sweep.series("smallest", "mean_size")
    random_sizes = sweep.series("random", "mean_size")

    # The informed selectors improve with a richer pool.
    assert trend(game_sizes) < 0
    assert trend(smallest_sizes) <= 0

    # TM_R does not improve the way informed selectors do: its relative
    # drop is smaller than TM_G's.
    random_drop = (random_sizes[0] - random_sizes[-1]) / random_sizes[0]
    game_drop = (game_sizes[0] - game_sizes[-1]) / game_sizes[0]
    assert game_drop >= random_drop - 0.05

    # Time grows with |S|.
    for name in ("progressive", "game"):
        assert trend(sweep.series(name, "mean_time")) > 0
