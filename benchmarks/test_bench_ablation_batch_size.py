"""Ablation A3: the TokenMagic batch parameter lambda.

Bigger batches = bigger mixin universes = smaller, more diverse rings —
but more data for light nodes to fetch and larger related RS sets to
reason about.  The bench sweeps lambda and reports mean ring size and
selection time at each setting, over the same chain.
"""

import random
import statistics

from repro.chain.blockchain import Blockchain
from repro.chain.transaction import Transaction
from repro.core.problem import InfeasibleError
from repro.tokenmagic.framework import TokenMagic, TokenMagicConfig

from bench_common import save_text


def build_chain(blocks=72, outputs_per_block=2):
    chain = Blockchain(verify_signatures=False)
    for index in range(blocks):
        tx = Transaction(inputs=(), output_count=outputs_per_block, nonce=index)
        chain.append_block(chain.make_block([tx], timestamp=float(index)))
    return chain


def sweep_lambda(lambdas=(12, 24, 48, 96), instances=12, seed=0):
    chain = build_chain()
    rows = []
    for lam in lambdas:
        magic = TokenMagic(
            chain, TokenMagicConfig(batch_lambda=lam, apply_second_config=True)
        )
        rng = random.Random(seed)
        tokens = sorted(chain.universe.tokens)
        sizes, times, failures = [], [], 0
        for _ in range(instances):
            target = tokens[rng.randrange(len(tokens))]
            try:
                result = magic.generate_ring(target, c=1.0, ell=3, rng=rng)
            except InfeasibleError:
                failures += 1
                continue
            sizes.append(result.size)
            times.append(result.elapsed)
        rows.append(
            (
                lam,
                statistics.fmean(sizes) if sizes else float("nan"),
                statistics.fmean(times) if times else float("nan"),
                failures,
            )
        )
    return rows


def test_batch_size_tradeoff(benchmark):
    rows = benchmark.pedantic(sweep_lambda, iterations=1, rounds=1)

    lines = ["# Ablation A3: TokenMagic batch parameter lambda", ""]
    lines.append(f"{'lambda':>7} | {'mean size':>9} | {'mean time (s)':>13} | {'infeasible':>10}")
    lines.append("-" * 52)
    for lam, size, elapsed, failures in rows:
        lines.append(f"{lam:>7} | {size:>9.2f} | {elapsed:>13.6f} | {failures:>10}")
    text = "\n".join(lines)
    save_text("ablation_batch_size.txt", text)
    print("\n" + text)

    # Feasibility improves (weakly) with lambda: bigger universes can
    # only make requirements easier to satisfy.
    failures = [f for _, _, _, f in rows]
    assert failures[-1] <= failures[0]
