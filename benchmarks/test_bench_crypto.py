"""Substrate benchmark: bLSAG signing and verification throughput.

Not a paper figure — Step 2/3 of the RS scheme are out of the paper's
scope — but a downstream user sizing a deployment wants these numbers,
and they put the "selection time" figures in context: at Monero's ring
size 11, pure-python signing is the dominant cost, which is exactly why
the paper argues Step 1's extra milliseconds are immaterial.
"""

from repro.crypto.keys import keypair_from_seed
from repro.crypto.lsag import sign, verify

from bench_common import save_text

RING_SIZE = 11  # Monero's dominant ring size per the paper

_signer = keypair_from_seed("bench-signer")
_ring = [keypair_from_seed(f"bench-decoy-{i}").public for i in range(RING_SIZE - 1)]
_ring.append(_signer.public)
_message = b"bench transaction message"
_proof = sign(_message, _ring, _signer)


def test_lsag_sign(benchmark):
    proof = benchmark(sign, _message, _ring, _signer)
    assert proof.size == RING_SIZE
    save_text(
        "crypto_sign.txt",
        f"# bLSAG sign, ring size {RING_SIZE}\nmean seconds: "
        f"{benchmark.stats['mean']:.4f}",
    )


def test_lsag_verify(benchmark):
    valid = benchmark(verify, _message, _proof)
    assert valid
    save_text(
        "crypto_verify.txt",
        f"# bLSAG verify, ring size {RING_SIZE}\nmean seconds: "
        f"{benchmark.stats['mean']:.4f}",
    )
