"""Figure 6: effect of l on the real (Monero-shaped) data set.

Sweep l over {20, 30, 40, 50, 60} with c = 0.6 (Table 2).

Paper claims reproduced as assertions:
* ring sizes increase (roughly linearly) with l,
* running time increases with l,
* TM_G is the slowest and the most sensitive to l.
"""

from repro.experiments.figures import fig6_vary_ell
from repro.experiments.tables import settings_banner

from bench_common import INSTANCES_PER_POINT, mean, trend, write_figure


def test_fig6_effect_of_l(benchmark):
    sweep = benchmark.pedantic(
        fig6_vary_ell,
        kwargs=dict(instances_per_point=INSTANCES_PER_POINT, seed=0),
        iterations=1,
        rounds=1,
    )
    note = settings_banner("Figure 6: vary l (real data)", l="20..60", c=0.6)
    print("\n" + write_figure("fig06", sweep, note))

    for name in ("smallest", "random", "progressive", "game"):
        sizes = sweep.series(name, "mean_size")
        # Sizes grow with l for every approach.
        assert trend(sizes) > 0, f"{name} sizes did not grow with l"

    # The diversity-aware methods stay below the baselines.
    assert mean(sweep.series("game", "mean_size")) <= mean(
        sweep.series("smallest", "mean_size")
    )

    # Time grows with l; TM_G slowest on average.
    game_times = sweep.series("game", "mean_time")
    assert trend(game_times) > 0
    assert mean(game_times) >= mean(sweep.series("progressive", "mean_time"))
