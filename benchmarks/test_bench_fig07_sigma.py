"""Figure 7: effect of the HT-distribution sigma (synthetic).

Sweep sigma over {8, 10, 12, 14, 16} with Table 3 defaults otherwise.

Paper claims reproduced as assertions:
* larger sigma spreads tokens over more HTs, so ring sizes decrease,
* running time decreases with sigma,
* TM_P is much faster than TM_G while both beat the baselines on size.
"""

from repro.experiments.figures import fig7_vary_sigma
from repro.experiments.tables import settings_banner

from bench_common import INSTANCES_PER_POINT, mean, trend, write_figure


def test_fig7_effect_of_sigma(benchmark):
    sweep = benchmark.pedantic(
        fig7_vary_sigma,
        kwargs=dict(instances_per_point=INSTANCES_PER_POINT, seed=0),
        iterations=1,
        rounds=1,
    )
    note = settings_banner("Figure 7: vary sigma (synthetic)", sigma="8..16")
    print("\n" + write_figure("fig07", sweep, note))

    for name in ("progressive", "game"):
        sizes = sweep.series(name, "mean_size")
        assert trend(sizes) < 0, f"{name} sizes did not shrink with sigma"

    assert mean(sweep.series("game", "mean_size")) <= mean(
        sweep.series("smallest", "mean_size")
    )
    assert mean(sweep.series("progressive", "mean_time")) <= mean(
        sweep.series("game", "mean_time")
    )
