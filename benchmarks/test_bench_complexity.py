"""Complexity verification: TM_P ~ O(n^2), TM_G ~ O(n^3) (Section 6).

The paper analyzes the Progressive algorithm at O(n^2) and the
Game-theoretic algorithm at O(n^3) in the universe size n = |T|, and
reads the confirmation off Figure 8's time curves.  This bench scales
the universe directly and asserts the two growth regimes: both
superlinear, with TM_G growing at least as fast as TM_P.
"""

import statistics
import time

from repro.core.baselines import smallest_select
from repro.core.game import game_select
from repro.core.progressive import progressive_select
from repro.data.synthetic import SyntheticConfig, generate_synthetic

from bench_common import save_text

SIZES = (10, 20, 40, 80)  # super-RS counts; |T| ~ 15 * |S|
REPEATS = 3


def time_selector(select, modules, targets) -> float:
    samples = []
    for target in targets:
        start = time.perf_counter()
        select(modules, target, 0.6, 10)
        samples.append(time.perf_counter() - start)
    return statistics.fmean(samples)


def run_scaling():
    rows = []
    for super_count in SIZES:
        data = generate_synthetic(
            SyntheticConfig(super_count=super_count, fresh_count=5, seed=1)
        )
        modules = data.module_universe()
        tokens = sorted(modules.universe.tokens)
        targets = tokens[:: max(1, len(tokens) // REPEATS)][:REPEATS]
        rows.append(
            (
                len(modules.universe),
                time_selector(progressive_select, modules, targets),
                time_selector(game_select, modules, targets),
                time_selector(smallest_select, modules, targets),
            )
        )
    return rows


def test_complexity_regimes(benchmark):
    rows = benchmark.pedantic(run_scaling, iterations=1, rounds=1)

    lines = ["# Complexity scaling: mean seconds per selection vs |T|", ""]
    lines.append(f"{'|T|':>6} | {'TM_P':>10} | {'TM_G':>10} | {'TM_S':>10}")
    lines.append("-" * 46)
    for n, p, g, s in rows:
        lines.append(f"{n:>6} | {p:>10.6f} | {g:>10.6f} | {s:>10.6f}")
    text = "\n".join(lines)
    save_text("complexity.txt", text)
    print("\n" + text)

    n_ratio = rows[-1][0] / rows[0][0]
    p_ratio = rows[-1][1] / max(rows[0][1], 1e-9)
    g_ratio = rows[-1][2] / max(rows[0][2], 1e-9)

    # Both diversity-aware selectors' per-selection cost grows clearly
    # with |T| (the asymptotic exponents of Section 6 only dominate at
    # larger n than a laptop bench reaches; what must hold at any scale
    # is substantial growth and the TM_G > TM_P cost ordering).
    assert p_ratio > n_ratio / 2, (
        f"TM_P grew only {p_ratio:.1f}x over {n_ratio:.1f}x data"
    )
    assert g_ratio > n_ratio / 2, (
        f"TM_G grew only {g_ratio:.1f}x over {n_ratio:.1f}x data"
    )
    # TM_G is the slowest in absolute terms at every size, and the
    # cheap baseline grows far slower than both.
    for _, p, g, s in rows:
        assert g >= p
        assert s <= p
