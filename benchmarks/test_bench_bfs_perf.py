"""Before/after benchmark of the exact-BFS performance layer.

Runs the same sequential TM_B ladder (Figure-4 workload, harder
(5, 4)-diversity so the blow-up arrives by ring 5) twice: once with the
frozen seed solver (``bfs_select_reference``) and once with the
optimized solver (shared-work cache + compact worlds + incremental
matching), and writes ``benchmarks/results/BENCH_bfs.json`` with the
per-ring timings so the speedup is tracked across PRs.

Claims asserted:

* both solvers agree on every generation they both complete (ring
  tokens, sizes and ``candidates_checked``),
* at the largest ladder rung the seed completes, the optimized solver
  is >= 3x faster,
* the whole bench stays under a budget-scaled time box.

The artifact also records which kernel backend
(:mod:`repro.core.perf.kernels`) the optimized run used and its
batch-size histogram, so perf history distinguishes backend changes
from algorithmic ones.

Budgets are env-overridable: REPRO_BENCH_OPT_BUDGET (per-ring budget
for the optimized run, default 10 s), REPRO_BENCH_REF_BUDGET (seed
run, default 90 s — enough for the seed to complete rung 6, ~70 s on
the reference substrate; note the seed only honours the budget
*between* candidates), REPRO_BENCH_REF_TOTAL (cumulative cap on the
seed ladder, default 45 s).  ``make bench-smoke`` pins
REF_BUDGET=15/REF_TOTAL=30 so the smoke run budget-trips rung 6 and
claims rung 5; the full ``make bench`` lets the seed finish rung 6 and
claims the deepest rung.
"""

import os
import random
import time

from repro.core.bfs import SearchBudgetExceeded, bfs_select
from repro.core.perf.kernels import active_backend_name
from repro.core.perf.reference import bfs_select_reference
from repro.core.problem import DamsInstance, InfeasibleError
from repro.core.ring import Ring, TokenUniverse
from repro.obs import metrics as obs_metrics

from bench_common import save_json, save_text

TOKEN_COUNT = 20
HT_COUNT = 10
C = 5.0
ELL = 4
SEED = 3
MAX_RINGS = 6

OPT_BUDGET = float(os.environ.get("REPRO_BENCH_OPT_BUDGET", "10"))
REF_BUDGET = float(os.environ.get("REPRO_BENCH_REF_BUDGET", "90"))
REF_TOTAL = float(os.environ.get("REPRO_BENCH_REF_TOTAL", "45"))
MIN_SPEEDUP = 3.0
MIN_REF_SECONDS = 0.05  # below this, timer noise dominates — no claim


def _ladder(solver, budget, total_cap=None):
    """The Figure-4 sequential workload, parameterized by solver.

    Deterministic: its own rng, seeded identically for both runs, is
    drawn from in the same order, so both solvers face the same
    universe, targets and histories rung by rung.
    """
    rng = random.Random(SEED)
    universe = TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(HT_COUNT)}" for i in range(TOKEN_COUNT)}
    )
    rings: list[Ring] = []
    consumed: set[str] = set()
    rows = []
    ladder_start = time.perf_counter()
    for index in range(MAX_RINGS):
        free = sorted(universe.tokens - consumed)
        target = free[rng.randrange(len(free))]
        if total_cap is not None and time.perf_counter() - ladder_start > total_cap:
            rows.append({"ring_index": index + 1, "outcome": "skipped"})
            break
        instance = DamsInstance(universe, list(rings), target, c=C, ell=ELL)
        start = time.perf_counter()
        try:
            result = solver(instance, time_budget=budget)
        except SearchBudgetExceeded:
            rows.append(
                {
                    "ring_index": index + 1,
                    "outcome": "budget",
                    "seconds": time.perf_counter() - start,
                }
            )
            break
        except InfeasibleError:
            rows.append(
                {
                    "ring_index": index + 1,
                    "outcome": "exhausted",
                    "seconds": time.perf_counter() - start,
                }
            )
            break
        rows.append(
            {
                "ring_index": index + 1,
                "outcome": "ok",
                "seconds": result.elapsed,
                "ring_size": len(result.ring.tokens),
                "candidates_checked": result.candidates_checked,
                "tokens": sorted(result.ring.tokens),
            }
        )
        rings.append(
            Ring(
                rid=f"r{index}",
                tokens=result.ring.tokens,
                c=C,
                ell=ELL,
                seq=result.ring.seq,
            )
        )
        consumed.add(target)
    return rows


def test_bfs_perf_layer_speedup():
    bench_start = time.perf_counter()
    # The optimized run records solver metrics; the snapshot rides along
    # in BENCH_bfs.json so cache hit rates are tracked next to timings.
    with obs_metrics.recording() as recorder:
        optimized = _ladder(bfs_select, OPT_BUDGET)
    reference = _ladder(bfs_select_reference, REF_BUDGET, total_cap=REF_TOTAL)

    ref_by_index = {row["ring_index"]: row for row in reference}
    rows = []
    for opt in optimized:
        ref = ref_by_index.get(opt["ring_index"], {"outcome": "skipped"})
        row = {
            "ring_index": opt["ring_index"],
            "optimized_outcome": opt["outcome"],
            "seed_outcome": ref["outcome"],
            "optimized_seconds": opt.get("seconds"),
            "seed_seconds": ref.get("seconds"),
        }
        if opt["outcome"] == "ok" and ref["outcome"] == "ok":
            # Equivalence on the shared rungs — the bench doubles as an
            # end-to-end check on the exact workload it times.
            assert opt["tokens"] == ref["tokens"], (
                f"solver divergence at ring {opt['ring_index']}"
            )
            assert opt["candidates_checked"] == ref["candidates_checked"]
            row["ring_size"] = opt["ring_size"]
            row["candidates_checked"] = opt["candidates_checked"]
            row["speedup"] = ref["seconds"] / max(opt["seconds"], 1e-9)
        rows.append(row)

    claimable = [
        row
        for row in rows
        if row.get("speedup") is not None
        and row["seed_seconds"] >= MIN_REF_SECONDS
    ]
    assert claimable, (
        "no ladder rung where both solvers finished and the seed took "
        f">= {MIN_REF_SECONDS}s — workload too easy to claim anything"
    )
    headline = max(claimable, key=lambda row: row["ring_index"])

    total = time.perf_counter() - bench_start
    snapshot = recorder.snapshot()
    kernel_counters = snapshot.get("counters", {})
    kernel = {
        "backend": active_backend_name(),
        "batches": kernel_counters.get("kernel.batches", 0),
        "candidates": kernel_counters.get("kernel.candidates", 0),
        "states_built": kernel_counters.get("kernel.states", 0),
        "batch_size": snapshot.get("histograms", {}).get("kernel.batch_size"),
    }
    payload = {
        "kernel": kernel,
        "workload": {
            "token_count": TOKEN_COUNT,
            "ht_count": HT_COUNT,
            "c": C,
            "ell": ELL,
            "seed": SEED,
            "max_rings": MAX_RINGS,
            "opt_budget_s": OPT_BUDGET,
            "ref_budget_s": REF_BUDGET,
        },
        "rows": rows,
        "headline": {
            "ring_index": headline["ring_index"],
            "seed_seconds": headline["seed_seconds"],
            "optimized_seconds": headline["optimized_seconds"],
            "speedup": headline["speedup"],
        },
        "total_bench_seconds": total,
    }
    save_json("BENCH_bfs.json", payload, recorder=recorder)

    lines = ["# Exact-BFS perf layer: seed vs optimized (per ladder rung)", ""]
    lines.append(
        f"{'ring':>4} | {'seed (s)':>10} | {'optimized (s)':>13} | {'speedup':>8}"
    )
    lines.append("-" * 48)
    for row in rows:
        seed_s = row["seed_seconds"]
        opt_s = row["optimized_seconds"]
        speedup = row.get("speedup")
        lines.append(
            f"{row['ring_index']:>4} | "
            f"{seed_s if seed_s is None else format(seed_s, '10.3f')} | "
            f"{opt_s if opt_s is None else format(opt_s, '13.3f')} | "
            f"{'-' if speedup is None else format(speedup, '8.1f')}"
        )
    lines.append("")
    batch_hist = kernel["batch_size"] or {}
    mean_batch = batch_hist.get("sum", 0) / max(batch_hist.get("count", 0), 1)
    lines.append(
        f"kernel backend: {kernel['backend']} "
        f"({kernel['batches']} batches, {kernel['candidates']} candidates, "
        f"mean batch {mean_batch:.1f}, "
        f"{kernel['states_built']} states built)"
    )
    text = "\n".join(lines)
    save_text("BENCH_bfs.txt", text)
    print("\n" + text)

    assert headline["speedup"] >= MIN_SPEEDUP, (
        f"ring {headline['ring_index']}: expected >= {MIN_SPEEDUP}x, got "
        f"{headline['speedup']:.2f}x "
        f"({headline['seed_seconds']:.3f}s -> {headline['optimized_seconds']:.3f}s)"
    )
    # The total cap only gates *starting* a rung, so the seed can spend
    # up to one full REF_BUDGET past it; the box scales with both caps
    # (60 s under the bench-smoke pins, 150 s at the full defaults).
    assert total < REF_TOTAL + REF_BUDGET + 15, (
        f"bench overran its time box: {total:.1f}s"
    )
