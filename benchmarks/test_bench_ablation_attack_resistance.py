"""Ablation A2: privacy value — diversity-aware vs size-only selection.

Over the same dense token universe, compare the anonymity of rings
produced by size-only Monero-style sampling against TokenMagic's
Progressive selection, under exact chain-reaction analysis with leaked
side information (Definition 3).

The paper's core security claim: diversity-aware rings resist the
attacks that size-only rings do not.
"""

import random

from repro.analysis.chain_reaction import exact_analysis
from repro.analysis.homogeneity import homogeneity_attack
from repro.core.combinations import enumerate_combinations
from repro.core.modules import ModuleUniverse
from repro.core.problem import InfeasibleError
from repro.core.progressive import progressive_select
from repro.core.ring import Ring, TokenUniverse

from bench_common import save_text


def build_worlds(tokens=40, hts=8, spends=22, ring_size=3, seed=0):
    rng = random.Random(seed)
    universe = TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(hts)}" for i in range(tokens)}
    )
    ids = sorted(universe.tokens)

    naive, spent = [], set()
    naive_rng = random.Random(seed + 1)
    for index in range(spends):
        target = naive_rng.choice([t for t in ids if t not in spent])
        spent.add(target)
        mixins = naive_rng.sample([t for t in ids if t != target], ring_size - 1)
        naive.append(
            Ring(rid=f"n{index}", tokens=frozenset([target, *mixins]), seq=index)
        )

    magic, spent = [], set()
    magic_rng = random.Random(seed + 1)
    for index in range(spends):
        target = magic_rng.choice([t for t in ids if t not in spent])
        spent.add(target)
        modules = ModuleUniverse(universe, magic)
        try:
            result = progressive_select(modules, target, c=1.0, ell=4)
        except InfeasibleError:
            continue
        magic.append(
            Ring(rid=f"m{index}", tokens=result.tokens, c=1.0, ell=3, seq=len(magic))
        )
    return universe, naive, magic


def leak_attack(universe, rings, leaked):
    world = next(enumerate_combinations(rings, limit=1), {})
    side = {rid: world[rid] for rid in list(world)[:leaked]}
    analysis = exact_analysis(rings, side)
    homogeneity = homogeneity_attack(rings, universe, side, analysis)
    inferred = sum(
        1 for rid in analysis.deanonymized if rid not in side
    )
    ht_leaks = sum(1 for rid in homogeneity.revealed if rid not in side)
    return inferred, ht_leaks


def test_attack_resistance(benchmark):
    universe, naive, magic = benchmark.pedantic(
        build_worlds, iterations=1, rounds=1
    )

    rows = ["# Ablation A2: attack resistance (inferred pairs beyond leaked SI)", ""]
    rows.append(f"{'leaked':>7} | {'naive inferred':>14} | {'TM inferred':>11} | "
                f"{'naive HT leak':>13} | {'TM HT leak':>10}")
    rows.append("-" * 68)
    naive_total = magic_total = 0
    for leaked in (0, 4, 8, 12):
        naive_inferred, naive_ht = leak_attack(universe, naive, leaked)
        magic_inferred, magic_ht = leak_attack(universe, magic, leaked)
        naive_total += naive_inferred + naive_ht
        magic_total += magic_inferred + magic_ht
        rows.append(
            f"{leaked:>7} | {naive_inferred:>14} | {magic_inferred:>11} | "
            f"{naive_ht:>13} | {magic_ht:>10}"
        )
    text = "\n".join(rows)
    save_text("ablation_attack_resistance.txt", text)
    print("\n" + text)

    # Diversity-aware selection never leaks more than size-only.
    assert magic_total <= naive_total
