"""Figure 3: distribution of output-token counts per transaction (real).

Regenerates the histogram the paper shows for its hour of Monero
blocks: 285 transactions, 633 tokens, mode at 2 outputs per tx.
"""

from repro.experiments.figures import fig3_output_distribution

from bench_common import save_text


def test_fig3_output_distribution(benchmark):
    distribution = benchmark(fig3_output_distribution, 0)

    total_txs = sum(distribution.values())
    total_tokens = sum(count * n for n, count in distribution.items())
    lines = ["# Figure 3: #transactions by output-token count", ""]
    lines.append(f"{'outputs/tx':>10} | {'transactions':>12}")
    lines.append("-" * 26)
    for outputs in sorted(distribution):
        lines.append(f"{outputs:>10} | {distribution[outputs]:>12}")
    lines.append("")
    lines.append(f"total transactions: {total_txs} (paper: 285)")
    lines.append(f"total tokens      : {total_tokens} (paper: 633)")
    text = "\n".join(lines)
    save_text("fig03.txt", text)
    print("\n" + text)

    # Shape assertions: exact paper aggregates, mode at 2 outputs.
    assert total_txs == 285
    assert total_tokens == 633
    assert max(distribution, key=distribution.get) == 2
    # Two-output transactions dominate the histogram (Figure 3's shape).
    assert distribution[2] > total_txs / 2
