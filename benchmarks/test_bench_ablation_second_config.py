"""Ablation A1: what does the second practical configuration cost?

The second configuration (Theorem 6.4) makes a new ring target
(c, l+1)-diversity so every DTRS retains (c, l).  The alternative is
targeting (c, l) directly and checking DTRS diversity post hoc with
Theorem 6.1 — cheaper rings, but selections can come out DTRS-unsafe.

The bench measures, over the Monero-shaped data set:
* the ring-size premium of targeting l+1 instead of l,
* how often an l-targeted ring would violate the DTRS condition.
"""

import statistics

from repro.core.modules import ring_is_recursive_diverse_config
from repro.core.problem import InfeasibleError
from repro.core.progressive import progressive_select
from repro.core.ring import Ring
from repro.data.monero import generate_monero_hour

from bench_common import save_text


def run_ablation(instances=40, c=0.6, ell=20, seed=0):
    hour = generate_monero_hour(seed=seed)
    modules = hour.module_universe()
    tokens = sorted(modules.universe.tokens)
    step = max(1, len(tokens) // instances)
    targets = tokens[::step][:instances]

    plain_sizes, second_sizes, unsafe = [], [], 0
    for index, target in enumerate(targets):
        try:
            plain = progressive_select(modules, target, c, ell)
            second = progressive_select(modules, target, c, ell + 1)
        except InfeasibleError:
            continue
        plain_sizes.append(plain.size)
        second_sizes.append(second.size)
        probe = Ring(
            rid=f"probe{index}", tokens=plain.tokens, c=c, ell=ell, seq=10_000
        )
        # Would the plain ring keep every DTRS (c, l)-diverse?  Under
        # configuration 1, Theorem 6.1 answers in polynomial time: the
        # DTRS token sets must satisfy (c, l) — equivalently the ring
        # must satisfy the Definition 4 pair at (c, l).
        if not ring_is_recursive_diverse_config(probe, modules, c=c, ell=ell):
            unsafe += 1
    return plain_sizes, second_sizes, unsafe


def test_second_config_premium(benchmark):
    plain, second, unsafe = benchmark.pedantic(
        run_ablation, iterations=1, rounds=1
    )
    assert plain and second

    mean_plain = statistics.fmean(plain)
    mean_second = statistics.fmean(second)
    premium = (mean_second - mean_plain) / mean_plain

    lines = [
        "# Ablation A1: second practical configuration (c, l+1)",
        "",
        f"instances            : {len(plain)}",
        f"mean size @ (c, l)   : {mean_plain:.2f}",
        f"mean size @ (c, l+1) : {mean_second:.2f}",
        f"size premium         : {premium:.1%}",
        f"(c, l)-selected rings failing the DTRS check: {unsafe}",
    ]
    text = "\n".join(lines)
    save_text("ablation_second_config.txt", text)
    print("\n" + text)

    # The second configuration costs something but stays proportionate.
    assert mean_second >= mean_plain
    assert premium < 0.5, "l+1 should not blow rings up by 50%+ here"
