"""Ablation A4: spending policies over a running economy.

Runs the full-stack simulation (mint -> select -> mempool -> blocks)
under each selection policy and compares the accumulated ring
population on fee (total mixins paid for) and anonymity (effective
ring size, erosion events) — the longitudinal version of the paper's
per-selection comparison, showing that the per-ring ordering
(TM_G <= TM_P <= baselines on size) survives compounding over time.
"""

from repro.analysis.metrics import population_metrics
from repro.analysis.temporal import erosion_events
from repro.sim import Economy, EconomyConfig

from bench_common import save_text

TICKS = 8


def run_policies():
    results = {}
    for algorithm in ("smallest", "random", "progressive", "game"):
        economy = Economy(
            EconomyConfig(
                algorithm=algorithm,
                seed=9,
                ell=3,
                c=1.0,
                spends_per_tick=2,
            )
        )
        economy.run(TICKS)
        rings = sorted(economy.chain.rings, key=lambda r: r.seq)
        metrics = population_metrics(rings, economy.chain.universe)
        events = erosion_events(rings)
        results[algorithm] = (metrics, len(events))
    return results


def test_policy_comparison(benchmark):
    results = benchmark.pedantic(run_policies, iterations=1, rounds=1)

    lines = ["# Ablation A4: spending policies over a running economy", ""]
    lines.append(
        f"{'policy':>12} | {'rings':>5} | {'mean size':>9} | "
        f"{'effective':>9} | {'fee':>5} | {'erosions':>8}"
    )
    lines.append("-" * 64)
    for algorithm, (metrics, erosions) in results.items():
        lines.append(
            f"{algorithm:>12} | {metrics.ring_count:>5} | "
            f"{metrics.mean_nominal_size:>9.2f} | "
            f"{metrics.mean_effective_size:>9.2f} | "
            f"{metrics.total_fee:>5} | {erosions:>8}"
        )
    text = "\n".join(lines)
    save_text("ablation_policies.txt", text)
    print("\n" + text)

    game_metrics, game_erosions = results["game"]
    progressive_metrics, progressive_erosions = results["progressive"]
    random_metrics, _ = results["random"]

    # Per-ring ordering survives compounding: TM_G pays the least fee.
    assert game_metrics.total_fee <= progressive_metrics.total_fee
    assert game_metrics.total_fee <= random_metrics.total_fee
    # Diversity-aware policies never erode earlier rings.
    assert game_erosions == 0
    assert progressive_erosions == 0
    # And nothing in any policy's population is outright deanonymized
    # (every policy here still enforces the diversity constraint).
    for metrics, _ in results.values():
        assert metrics.deanonymization_rate == 0.0