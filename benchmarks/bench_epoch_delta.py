"""Epoch-delta commits vs whole-snapshot replacement (BENCH_epoch.json).

The workload is sustained traffic against a single daemon while the
chain keeps growing: a universe of several disjoint ring clusters
(token-overlap components), hot targets spread over the *stable*
clusters, and a churn cluster that takes one block commit per round.
Every round commits a ring into the churn cluster, then re-asks every
hot target, one request at a time — each response's ``elapsed`` is one
solve.

The ``replace`` column is today's default: each commit replaces the
snapshot, so the next round re-enumerates every cluster's world set
from scratch — cold exactly when traffic is heaviest.  The ``delta``
column runs the same daemon with ``epoch_mode="delta"``
(:meth:`~repro.service.state.ChainSnapshot.advance`): the commit
invalidates only the churn cluster's component, and every hot target
keeps solving against warm worlds (Thm 6.1 locality made operational).

Claims asserted:

* responses are byte-identical between the two modes (modulo execution
  coordinates), through every commit;
* delta mode's warm-hit rate (worlds-cache hits over lookups in the
  measured rounds) is strictly higher than replace mode's;
* delta mode's measured p99 request latency is strictly lower.

Writes ``benchmarks/results/BENCH_epoch.json``: per-mode throughput,
measured-round latency quantiles (computed from the responses' own
``elapsed`` field — window-independent), warm-hit rates, the service's
``delta.*`` retention counters, and the workload fingerprint
``tools/bench_trend.py`` keys on.  Run as a script (``make bench`` /
``make epoch-smoke``); the smoke profile (``REPRO_BENCH_EPOCH_SMOKE=1``)
shrinks the grid with its own fingerprint so trend checks skip it.
"""

from __future__ import annotations

import math
import os
import random
import time

from repro.core.ring import Ring, TokenUniverse
from repro.obs import metrics as obs_metrics
from repro.service import SelectionService, SelectRequest, ServiceConfig

from bench_common import save_json, save_text

SMOKE = os.environ.get("REPRO_BENCH_EPOCH_SMOKE") == "1"

CLUSTERS = 4 if SMOKE else 6          # stable clusters (one component each)
TOKENS_PER_CLUSTER = 14
CHURN_TOKENS = 8                      # the cluster the commits land in
HT_COUNT = 5
# Ring depth drives the cost of one cold world enumeration; 8 is the
# deepest profile that enumerates in ~100 ms — depth 9 multiplies the
# world count (and RSS) by orders of magnitude, past any useful scale.
RINGS_PER_CLUSTER = 8
RING_SPAN = 5                         # tokens per history ring (overlapping)
HOT_PER_CLUSTER = 2
ROUNDS = 4 if SMOKE else 10           # measured rounds (one commit each)
SEED = 13
C, ELL = 2.0, 2
MODES = ("replace", "delta")

WORKLOAD = {
    "clusters": CLUSTERS,
    "tokens_per_cluster": TOKENS_PER_CLUSTER,
    "churn_tokens": CHURN_TOKENS,
    "hts": HT_COUNT,
    "rings_per_cluster": RINGS_PER_CLUSTER,
    "ring_span": RING_SPAN,
    "hot_per_cluster": HOT_PER_CLUSTER,
    "rounds": ROUNDS,
    "seed": SEED,
    "c": C,
    "ell": ELL,
    "smoke": SMOKE,
}


def build_workload():
    """Universe, clustered ring history, hot targets and commit stream."""
    rng = random.Random(SEED)
    count = CLUSTERS * TOKENS_PER_CLUSTER + CHURN_TOKENS
    universe = TokenUniverse(
        {f"t{i:03d}": f"h{rng.randrange(HT_COUNT)}" for i in range(count)}
    )
    tokens = sorted(universe.tokens)
    slices = [
        tokens[b * TOKENS_PER_CLUSTER : (b + 1) * TOKENS_PER_CLUSTER]
        for b in range(CLUSTERS)
    ]
    churn = tokens[CLUSTERS * TOKENS_PER_CLUSTER :]
    rings, seq = [], 0
    for b, members in enumerate(slices):
        # Overlapping RING_SPAN-rings chain the cluster into one
        # component with a deep (expensive to re-enumerate) world set.
        for k in range(RINGS_PER_CLUSTER):
            rings.append(
                Ring(
                    f"c{b}:{k}",
                    frozenset(members[k : k + RING_SPAN]),
                    c=C,
                    ell=ELL,
                    seq=seq,
                )
            )
            seq += 1
    rings.append(Ring("churn:0", frozenset(churn[0:4]), c=C, ell=ELL, seq=seq))
    # Hot traffic goes to the stable clusters only: the realistic case
    # where most requests are not about the batch the block touched.
    hot = [members[-h - 1] for members in slices for h in range(HOT_PER_CLUSTER)]
    commits = [tuple(churn[0 : 4 + (r % 3)]) for r in range(ROUNDS)]
    return universe, rings, hot, commits


def canon(response) -> dict:
    """A response minus execution coordinates (see tests/test_service_shard)."""
    payload = response.to_dict()
    for key in ("elapsed", "batch_id", "batch_size", "warm_cache"):
        payload.pop(key, None)
    attrs = payload.get("attrs")
    if attrs is not None:
        attrs.pop("memo", None)
        if not attrs:
            payload.pop("attrs")
    return payload


def quantile(values: list[float], q: float) -> float:
    """Exact nearest-rank quantile (same rule as obs.telemetry)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def run_column(mode: str, universe, rings, hot, commits):
    """Warm-up round, then ROUNDS of (commit, re-ask every hot target).

    Requests go one at a time (every batch is one request), so each
    response's ``elapsed`` measures one solve and the installed
    recorder's ``cache.worlds_*`` counters measure real worlds-cache
    behaviour, not the whole-snapshot batch flag.
    """
    service = SelectionService(
        universe,
        rings,
        ServiceConfig(telemetry=False, epoch_mode=mode),
    )
    warmup, measured = [], []
    with obs_metrics.recording(obs_metrics.MemoryRecorder()) as recorder:
        with service:
            started = time.perf_counter()
            for round_no in range(ROUNDS + 1):
                if round_no > 0:
                    service.commit_ring(
                        tokens=commits[round_no - 1], c=C, ell=ELL
                    )
                bucket = measured if round_no > 0 else warmup
                for i, target in enumerate(hot):
                    bucket.append(
                        service.submit_wait(
                            SelectRequest(
                                request_id=f"r{round_no}-{i}",
                                target=target,
                                c=C,
                                ell=ELL,
                                mode="exact",
                            ),
                            timeout=300.0,
                        )
                    )
                if round_no == 0:
                    warm_base = (
                        recorder.counters.get("cache.worlds_hits", 0),
                        recorder.counters.get("cache.worlds_misses", 0),
                    )
            elapsed = time.perf_counter() - started
            stats = service.stats()
        hits = recorder.counters.get("cache.worlds_hits", 0) - warm_base[0]
        misses = recorder.counters.get("cache.worlds_misses", 0) - warm_base[1]
    return warmup + measured, measured, elapsed, stats, (hits, misses)


def column_row(mode, measured, elapsed, stats, worlds) -> dict:
    latencies = [r.elapsed for r in measured if r.elapsed is not None]
    hits, misses = worlds
    return {
        "mode": mode,
        "requests": len(measured),
        "elapsed_s": round(elapsed, 6),
        "throughput_rps": round(len(measured) / elapsed, 3),
        "worlds_hits": hits,
        "worlds_misses": misses,
        "warm_hit_rate": round(hits / (hits + misses), 6) if hits + misses else None,
        "p50_ms": round(quantile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(quantile(latencies, 0.99) * 1e3, 3),
        "epochs_advanced": stats.get("epochs_advanced"),
        "caches_invalidated": stats.get("caches_invalidated"),
        "delta": stats.get("delta"),
    }


def main() -> int:
    universe, rings, hot, commits = build_workload()
    columns, baselines = [], {}
    for mode in MODES:
        responses, measured, elapsed, stats, worlds = run_column(
            mode, universe, rings, hot, commits
        )
        assert all(r.status == "ok" for r in responses), [
            r.to_dict() for r in responses if r.status != "ok"
        ][:3]
        baselines[mode] = [canon(r) for r in responses]
        columns.append(column_row(mode, measured, elapsed, stats, worlds))
        row = columns[-1]
        print(
            f"mode={mode:>7}: {row['throughput_rps']:8.1f} req/s  "
            f"warm={row['warm_hit_rate']:.0%}  p99={row['p99_ms']}ms"
        )

    # -- equivalence: both modes answered every request identically ---------
    assert baselines["delta"] == baselines["replace"], (
        "delta-mode responses diverged from replace mode"
    )

    by_mode = {row["mode"]: row for row in columns}
    replace, delta = by_mode["replace"], by_mode["delta"]
    p99_speedup = round(replace["p99_ms"] / delta["p99_ms"], 3)

    table = ["# BENCH_epoch", "", "mode     req/s     warm%    p50ms    p99ms"]
    for row in columns:
        table.append(
            f"{row['mode']:>7}  {row['throughput_rps']:>8.1f}  "
            f"{row['warm_hit_rate']:>6.0%}  {row['p50_ms']!s:>7}  "
            f"{row['p99_ms']!s:>7}"
        )
    text = "\n".join(table)
    print(text)

    payload = {
        "workload": WORKLOAD,
        "columns": columns,
        "headline": {
            "warm_hit_rate": delta["warm_hit_rate"],
            "replace_warm_hit_rate": replace["warm_hit_rate"],
            "p99_ms": delta["p99_ms"],
            "replace_p99_ms": replace["p99_ms"],
            "p99_speedup": p99_speedup,
            "throughput_rps": delta["throughput_rps"],
        },
    }
    save_json("BENCH_epoch.json", payload)
    save_text("BENCH_epoch.txt", text)

    # Cross-multiplied so rounding can never turn a real improvement
    # into a tie: rate_delta > rate_replace over the raw lookup counts.
    d_total = delta["worlds_hits"] + delta["worlds_misses"]
    r_total = replace["worlds_hits"] + replace["worlds_misses"]
    assert delta["worlds_hits"] * r_total > replace["worlds_hits"] * d_total, (
        f"delta warm-hit rate {delta['warm_hit_rate']} is not above "
        f"replace's {replace['warm_hit_rate']}"
    )
    assert delta["worlds_misses"] < replace["worlds_misses"], (
        f"delta cold re-enumerations ({delta['worlds_misses']}) not below "
        f"replace's ({replace['worlds_misses']})"
    )
    assert delta["p99_ms"] < replace["p99_ms"], (
        f"delta p99 {delta['p99_ms']}ms is not below replace's "
        f"{replace['p99_ms']}ms"
    )
    print(
        f"headline: delta warm-hit {delta['warm_hit_rate']:.0%} vs "
        f"{replace['warm_hit_rate']:.0%}, p99 {delta['p99_ms']}ms vs "
        f"{replace['p99_ms']}ms ({p99_speedup}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
