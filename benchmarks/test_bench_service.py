"""Batched-warm service vs sequential-cold one-shots.

The workload is the hot-target pattern the service exists for: a few
popular targets, each requested several times while the chain snapshot
stays put.  The cold baseline re-solves every request from scratch
(one-shot CLI semantics: fresh :class:`SolverCache` per call); the warm
run pushes all requests through one :class:`SelectionService`, which
shares the snapshot's solver cache across distinct targets and
deduplicates repeats through the per-snapshot result memo.

Claims asserted:

* every warm response is byte-identical to its cold solve (tokens,
  mixins, ``candidates_checked``) — the service changes *when* work
  happens, never *what*;
* the repeats were genuinely memo-served (counter check), inside one
  micro-batch;
* warm throughput is >= REPRO_BENCH_SERVICE_MIN_SPEEDUP x cold
  (default 2.0).

Writes ``benchmarks/results/BENCH_service.json`` with per-request
timings, totals, the speedup and the service counter snapshot.
"""

import os
import random
import time

from repro.core.bfs import bfs_select
from repro.core.problem import DamsInstance
from repro.core.ring import Ring, TokenUniverse
from repro.obs import metrics as obs_metrics
from repro.service import SelectionService, SelectRequest, ServiceConfig

from bench_common import save_json, save_text

TOKEN_COUNT = 18
HT_COUNT = 6
SEED = 5
RING_COUNT = 4
RING_SIZE = 4
RING_C, RING_ELL = 2.0, 2  # the history's claimed requirement
C, ELL = 4.0, 3  # the requests' requirement

HOT_TARGETS = 4  # distinct popular targets...
REPEAT = 4  # ...each requested this many times

MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVICE_MIN_SPEEDUP", "2.0"))


def workload() -> tuple[TokenUniverse, list[Ring], list[str]]:
    """Universe, history and the hot-target request stream."""
    rng = random.Random(SEED)
    universe = TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(HT_COUNT)}" for i in range(TOKEN_COUNT)}
    )
    tokens = sorted(universe.tokens)
    rings = []
    for k in range(RING_COUNT):
        low = k * (RING_SIZE - 1)  # chained overlap: one component
        rings.append(
            Ring(
                f"r{k}",
                frozenset(tokens[low : low + RING_SIZE]),
                c=RING_C,
                ell=RING_ELL,
                seq=k,
            )
        )
    spanned = set().union(*(ring.tokens for ring in rings))
    targets = [token for token in tokens if token not in spanned][:HOT_TARGETS]
    assert len(targets) == HOT_TARGETS, "universe too small for the workload"
    # Interleave repeats (t13, t14, ..., t13, t14, ...): the memo, not
    # request adjacency, has to provide the dedup.
    return universe, rings, targets * REPEAT


def test_service_batched_warm_vs_sequential_cold():
    bench_start = time.perf_counter()
    universe, rings, stream = workload()

    # -- cold: one fresh solve per request, sequential ----------------------
    cold_rows = []
    cold_start = time.perf_counter()
    for index, target in enumerate(stream):
        instance = DamsInstance(universe, list(rings), target, c=C, ell=ELL)
        started = time.perf_counter()
        solved = bfs_select(instance)  # fresh SolverCache inside
        cold_rows.append(
            {
                "request": index,
                "target": target,
                "seconds": time.perf_counter() - started,
                "tokens": sorted(solved.ring.tokens),
                "mixins": sorted(solved.mixins),
                "candidates_checked": solved.candidates_checked,
            }
        )
    cold_total = time.perf_counter() - cold_start

    # -- warm: every request through one service, one micro-batch ----------
    with obs_metrics.recording() as recorder:
        service = SelectionService(
            universe, rings, ServiceConfig(max_batch=len(stream))
        )
        pendings = [
            service.submit(
                SelectRequest(
                    request_id=f"q{index}", target=target, c=C, ell=ELL,
                    mode="exact",
                )
            )
            for index, target in enumerate(stream)
        ]
        warm_start = time.perf_counter()
        service.start()
        try:
            responses = [pending.wait(120.0) for pending in pendings]
        finally:
            service.stop()
        warm_total = time.perf_counter() - warm_start
        stats = service.stats()

    # -- equivalence: the service changed nothing about the answers --------
    warm_rows = []
    for cold, response in zip(cold_rows, responses):
        assert response.status == "ok", response.detail
        assert sorted(response.tokens) == cold["tokens"]
        assert sorted(response.mixins) == cold["mixins"]
        assert response.candidates_checked == cold["candidates_checked"]
        warm_rows.append(
            {
                "request": cold["request"],
                "target": cold["target"],
                "seconds": response.elapsed,
                "memo": bool(response.attrs.get("memo")),
                "batch_id": response.batch_id,
            }
        )
    assert len({row["batch_id"] for row in warm_rows}) == 1  # one batch
    expected_hits = len(stream) - HOT_TARGETS
    assert stats["counters"]["memo.hits"] == expected_hits
    assert stats["counters"]["memo.stores"] == HOT_TARGETS

    speedup = cold_total / max(warm_total, 1e-9)
    total = time.perf_counter() - bench_start
    payload = {
        "workload": {
            "token_count": TOKEN_COUNT,
            "ht_count": HT_COUNT,
            "seed": SEED,
            "ring_count": RING_COUNT,
            "ring_size": RING_SIZE,
            "history_claim": [RING_C, RING_ELL],
            "request_claim": [C, ELL],
            "hot_targets": HOT_TARGETS,
            "repeat": REPEAT,
            "requests": len(stream),
        },
        "cold": {"total_seconds": cold_total, "rows": cold_rows},
        "warm": {
            "total_seconds": warm_total,
            "rows": warm_rows,
            "service_stats": stats,
        },
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "total_bench_seconds": total,
    }
    save_json("BENCH_service.json", payload, recorder=recorder)

    lines = ["# Selection service: batched-warm vs sequential-cold", ""]
    lines.append(
        f"{len(stream)} requests ({HOT_TARGETS} hot targets x {REPEAT}): "
        f"cold {cold_total:.3f}s, warm {warm_total:.3f}s, "
        f"speedup {speedup:.2f}x "
        f"(memo hits {stats['counters']['memo.hits']})"
    )
    text = "\n".join(lines)
    save_text("BENCH_service.txt", text)
    print("\n" + text)

    assert speedup >= MIN_SPEEDUP, (
        f"expected warm >= {MIN_SPEEDUP}x cold, got {speedup:.2f}x "
        f"(cold {cold_total:.3f}s, warm {warm_total:.3f}s)"
    )
    assert total < 120, f"bench overran its time box: {total:.1f}s"
