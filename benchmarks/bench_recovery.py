"""Journal-on overhead and recovery-replay cost (BENCH_recovery.json).

Two costs of the crash-safe daemon (PR 9), measured separately:

1. **Steady state** — the same commit-interleaved hot-target workload
   the shard bench uses, run against today's in-memory daemon and
   against an identical daemon with a durable commit journal
   (``sync_every=1``: every commit fsynced before it is acknowledged).
   The journal changes *when* durability happens, never *what* is
   selected, so both columns must answer byte-identically; the only
   delta is the WAL append+fsync on the commit path, amortised over a
   round of selections.

2. **Recovery** — ``Journal.recover()`` wall time as the chain grows.
   The WAL-only column replays every commit frame since genesis and
   scales linearly; the compacted column (periodic snapshots truncating
   the WAL) replays at most ``snapshot_every`` frames no matter how
   long the chain is — the boundedness claim the snapshot machinery
   exists for.

Claims asserted:

* journal-on and in-memory responses are byte-identical (modulo
  execution coordinates) through all the commits;
* journal-on steady-state overhead is <= REPRO_BENCH_RECOVERY_MAX_PCT
  percent (default 15; the smoke profile relaxes it — tiny workloads
  put an fsync in the noise floor of everything else);
* compacted recovery replays at most ``snapshot_every`` frames even at
  the longest chain length.

Writes ``benchmarks/results/BENCH_recovery.json`` (workload
fingerprint, per-column rows, recovery table, headline) and leaves the
journaled column's journal directory at
``benchmarks/results/recovery_journal/`` so ``make recover-smoke`` can
run ``tools/journal_fsck.py --check`` over a journal produced by a
real daemon rather than a synthetic fixture.  The smoke profile
(``REPRO_BENCH_RECOVERY_SMOKE=1``) shrinks the grid with its own
fingerprint so trend checks skip it.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time

from repro.core.ring import Ring, TokenUniverse
from repro.service import (
    Journal,
    SelectionService,
    SelectRequest,
    ServiceConfig,
)

from bench_common import RESULTS_DIR, save_json, save_text

SMOKE = os.environ.get("REPRO_BENCH_RECOVERY_SMOKE") == "1"

BATCHES = 4 if SMOKE else 8
TOKENS_PER_BATCH = 12 if SMOKE else 16
HT_COUNT = 5
RINGS_PER_BATCH = 6 if SMOKE else 8
HOT_PER_BATCH = 2
ROUNDS = BATCHES  # ROUNDS - 1 commits, one per distinct batch
SEED = 17
C, ELL = 2.0, 2
SNAPSHOT_EVERY = 4
CHAIN_LENGTHS = (32, 128) if SMOKE else (128, 512, 2048)
REPLAY_SNAPSHOT_EVERY = 64

MAX_OVERHEAD_PCT = float(
    os.environ.get("REPRO_BENCH_RECOVERY_MAX_PCT", "75.0" if SMOKE else "15.0")
)

#: Where the journaled column leaves its journal for the fsck CI step.
JOURNAL_DIR = RESULTS_DIR / "recovery_journal"

WORKLOAD = {
    "batches": BATCHES,
    "tokens_per_batch": TOKENS_PER_BATCH,
    "hts": HT_COUNT,
    "rings_per_batch": RINGS_PER_BATCH,
    "hot_per_batch": HOT_PER_BATCH,
    "rounds": ROUNDS,
    "snapshot_every": SNAPSHOT_EVERY,
    "chain_lengths": list(CHAIN_LENGTHS),
    "replay_snapshot_every": REPLAY_SNAPSHOT_EVERY,
    "seed": SEED,
    "c": C,
    "ell": ELL,
    "smoke": SMOKE,
}


def build_workload():
    """Universe, batch-local histories, hot targets and commit stream."""
    rng = random.Random(SEED)
    count = BATCHES * TOKENS_PER_BATCH
    universe = TokenUniverse(
        {f"t{i:03d}": f"h{rng.randrange(HT_COUNT)}" for i in range(count)}
    )
    tokens = sorted(universe.tokens)
    slices = [
        tokens[b * TOKENS_PER_BATCH : (b + 1) * TOKENS_PER_BATCH]
        for b in range(BATCHES)
    ]
    rings, seq = [], 0
    for b, members in enumerate(slices):
        for k in range(RINGS_PER_BATCH):
            rings.append(
                Ring(
                    f"h{b}:{k}",
                    frozenset(members[k : k + 4]),
                    c=C,
                    ell=ELL,
                    seq=seq,
                )
            )
            seq += 1
    hot = [members[-h - 1] for members in slices for h in range(HOT_PER_BATCH)]
    commits = [tuple(slices[r % BATCHES][0:3]) for r in range(ROUNDS - 1)]
    return universe, rings, hot, commits


def canon(response) -> dict:
    """A response minus execution coordinates (see tests/test_service_shard)."""
    payload = response.to_dict()
    for key in ("elapsed", "batch_id", "batch_size", "warm_cache"):
        payload.pop(key, None)
    attrs = payload.get("attrs")
    if attrs is not None:
        attrs.pop("memo", None)
        if not attrs:
            payload.pop("attrs")
    return payload


def run_column(service, hot, commits):
    """ROUNDS of (commit, re-ask every hot target) against one backend."""
    responses = []
    started = time.perf_counter()
    for round_no in range(ROUNDS):
        if round_no > 0:
            service.commit_ring(
                tokens=commits[round_no - 1],
                c=C,
                ell=ELL,
                rid=f"bench:{round_no - 1}",
            )
        slots = [
            service.submit(
                SelectRequest(
                    request_id=f"r{round_no}-{i}",
                    target=target,
                    c=C,
                    ell=ELL,
                    mode="exact",
                )
            )
            for i, target in enumerate(hot)
        ]
        responses.extend(slot.wait(300.0) for slot in slots)
    elapsed = time.perf_counter() - started
    stats = service.stats()
    return responses, elapsed, stats


def steady_state_columns():
    """In-memory vs journaled daemon on the same workload; assert parity."""
    universe, rings, hot, commits = build_workload()
    shutil.rmtree(JOURNAL_DIR, ignore_errors=True)
    columns, baselines = [], {}
    for name in ("memory", "journal"):
        journal = None
        if name == "journal":
            journal = Journal(
                JOURNAL_DIR, sync_every=1, snapshot_every=SNAPSHOT_EVERY
            )
            journal.append_genesis(universe, rings, BATCHES)
        service = SelectionService(
            universe,
            rings,
            ServiceConfig(
                partition=BATCHES,
                max_batch=64,
                linger_s=0.01,
                journal=journal,
            ),
        )
        with service:
            responses, elapsed, stats = run_column(service, hot, commits)
        if journal is not None:
            journal.close()
        assert all(r.status == "ok" for r in responses), [
            r.to_dict() for r in responses if r.status != "ok"
        ][:3]
        baselines[name] = [canon(r) for r in responses]
        journal_stats = stats.get("journal") or {}
        columns.append(
            {
                "column": name,
                "requests": len(responses),
                "commits": ROUNDS - 1,
                "elapsed_s": round(elapsed, 6),
                "throughput_rps": round(len(responses) / elapsed, 3),
                "journal_appends": journal_stats.get("appends"),
                "journal_fsyncs": journal_stats.get("fsyncs"),
                "journal_snapshots": journal_stats.get("snapshots"),
            }
        )
        print(
            f"{name:>8}: {columns[-1]['throughput_rps']:8.1f} req/s  "
            f"fsyncs={columns[-1]['journal_fsyncs']}"
        )
    assert baselines["journal"] == baselines["memory"], (
        "journaled responses diverged from the in-memory daemon"
    )
    return columns


def replay_table():
    """Journal.recover() wall time vs chain length, WAL-only vs compacted."""
    universe = TokenUniverse(
        {f"t{i:03d}": f"h{i % HT_COUNT}" for i in range(128)}
    )
    tokens = sorted(universe.tokens)
    rows = []
    for length in CHAIN_LENGTHS:
        rings = [
            Ring(
                f"bench:{i}",
                frozenset(tokens[(4 * i) % 120 : (4 * i) % 120 + 4]),
                c=C,
                ell=ELL,
                seq=i,
            )
            for i in range(length)
        ]
        row = {"rings": length}
        for mode, snapshot_every in (
            ("wal", 0),
            ("compacted", REPLAY_SNAPSHOT_EVERY),
        ):
            with tempfile.TemporaryDirectory() as tmp:
                with Journal(
                    tmp, sync_every=0, snapshot_every=snapshot_every
                ) as journal:
                    journal.append_genesis(universe, [], None)
                    for i, ring in enumerate(rings):
                        journal.append_commit(i + 1, ring)
                        journal.maybe_snapshot(
                            i + 1, universe, rings[: i + 1], None
                        )
                started = time.perf_counter()
                recovered = Journal(tmp).recover(truncate=False)
                recover_s = time.perf_counter() - started
                assert recovered is not None and recovered.epoch == length
                assert len(recovered.rings) == length
                replayed = recovered.recovery["frames_replayed"]
                if mode == "compacted":
                    assert replayed <= REPLAY_SNAPSHOT_EVERY, (
                        f"compacted recovery replayed {replayed} frames at "
                        f"chain length {length} (snapshots are not bounding "
                        f"the tail)"
                    )
                row[f"{mode}_recover_s"] = round(recover_s, 6)
                row[f"{mode}_frames_replayed"] = replayed
        rows.append(row)
        print(
            f"rings={length:>5}: wal={row['wal_recover_s']:.4f}s "
            f"({row['wal_frames_replayed']} frames)  "
            f"compacted={row['compacted_recover_s']:.4f}s "
            f"({row['compacted_frames_replayed']} frames)"
        )
    return rows


def main() -> int:
    columns = steady_state_columns()
    rows = replay_table()

    by_name = {row["column"]: row for row in columns}
    memory_rps = by_name["memory"]["throughput_rps"]
    journal_rps = by_name["journal"]["throughput_rps"]
    overhead_pct = round((memory_rps / journal_rps - 1.0) * 100.0, 3)
    longest = rows[-1]
    replay_rings_per_s = round(
        longest["rings"] / longest["wal_recover_s"], 3
    )

    table = [
        "# BENCH_recovery",
        "",
        "column    req/s     overhead",
        f"memory   {memory_rps:>8.1f}  -",
        f"journal  {journal_rps:>8.1f}  {overhead_pct:+.1f}%",
        "",
        "rings   wal_recover_s  compacted_recover_s  compacted_frames",
    ]
    for row in rows:
        table.append(
            f"{row['rings']:>5}   {row['wal_recover_s']:>13.4f}  "
            f"{row['compacted_recover_s']:>19.4f}  "
            f"{row['compacted_frames_replayed']:>16}"
        )
    text = "\n".join(table)
    print(text)

    payload = {
        "workload": WORKLOAD,
        "columns": columns,
        "recovery": rows,
        "headline": {
            "overhead_pct": overhead_pct,
            "memory_rps": memory_rps,
            "journal_rps": journal_rps,
            "replay_rings_per_s": replay_rings_per_s,
            "longest_chain": longest["rings"],
            "compacted_recover_s": longest["compacted_recover_s"],
        },
    }
    save_json("BENCH_recovery.json", payload)
    save_text("BENCH_recovery.txt", text)

    assert overhead_pct <= MAX_OVERHEAD_PCT, (
        f"journal-on steady state is {overhead_pct}% slower than in-memory "
        f"(allowed <= {MAX_OVERHEAD_PCT}%)"
    )
    print(
        f"headline: journal overhead {overhead_pct:+.1f}% "
        f"(allowed <= {MAX_OVERHEAD_PCT:g}%), replay "
        f"{replay_rings_per_s} rings/s at chain {longest['rings']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
