"""Figure 9: effect of the super RS size range |s_i| (synthetic).

Sweep |s_i| over [1,10], [5,15], [10,20], [15,25], [20,30] with Table 3
defaults otherwise.

Paper claims reproduced as assertions:
* because configuration 1 forbids partial picks, bigger super RSs force
  bigger rings — sizes grow with |s_i| for every approach,
* running time grows with |s_i| (the universe |T| grows with it).
"""

from repro.experiments.figures import fig9_vary_super_size
from repro.experiments.tables import settings_banner

from bench_common import INSTANCES_PER_POINT, mean, trend, write_figure


def test_fig9_effect_of_super_size(benchmark):
    sweep = benchmark.pedantic(
        fig9_vary_super_size,
        kwargs=dict(instances_per_point=INSTANCES_PER_POINT, seed=0),
        iterations=1,
        rounds=1,
    )
    note = settings_banner(
        "Figure 9: vary |s_i| (synthetic)", s_i="[1,10]..[20,30]"
    )
    print("\n" + write_figure("fig09", sweep, note))

    for name in ("smallest", "random", "progressive", "game"):
        sizes = sweep.series(name, "mean_size")
        assert trend(sizes) > 0, f"{name} sizes did not grow with |s_i|"

    # The informed selectors stay below the random baseline throughout.
    assert mean(sweep.series("game", "mean_size")) <= mean(
        sweep.series("random", "mean_size")
    )
