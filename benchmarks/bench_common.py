"""Shared plumbing for the figure benchmarks (not a test module).

Each bench regenerates one figure of the paper's Section 7: it runs the
sweep, prints the paper-style table, writes it under
``benchmarks/results/`` so the artifact survives pytest's output
capture, and asserts the *shape* claims the paper makes (who wins,
which way the trend bends) — absolute numbers are substrate-dependent.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.harness import SweepResult, format_table
from repro.obs import metrics as obs_metrics

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Instances per sweep point.  The paper samples 1000; benches default
#: lower to stay laptop-friendly.  Override via REPRO_BENCH_INSTANCES.
INSTANCES_PER_POINT = int(os.environ.get("REPRO_BENCH_INSTANCES", "25"))


def write_figure(name: str, sweep: SweepResult, note: str = "") -> str:
    """Render size+time tables for a sweep, save and return them."""
    parts = [f"# {name}"]
    if note:
        parts.append(note)
    parts.append("")
    parts.append("Mean ring size:")
    parts.append(format_table(sweep, "mean_size"))
    parts.append("")
    parts.append("Mean selection time (s):")
    parts.append(format_table(sweep, "mean_time"))
    text = "\n".join(parts)
    save_text(f"{name}.txt", text)
    return text


def save_text(filename: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(text + "\n")
    return path


def save_json(
    filename: str, payload: dict, recorder: obs_metrics.MemoryRecorder | None = None
) -> Path:
    """Machine-readable artifact (perf tracking across PRs).

    When a recorder is given — or one is actively installed via
    ``repro.obs.metrics`` — its snapshot is attached under a
    ``"metrics"`` key so the artifact carries cache hit rates and
    candidate counts alongside the timings.
    """
    if recorder is None:
        candidate = obs_metrics.active()
        if isinstance(candidate, obs_metrics.MemoryRecorder):
            recorder = candidate
    if recorder is not None and "metrics" not in payload:
        payload = {**payload, "metrics": recorder.snapshot()}
    if recorder is not None and "resilience" not in payload:
        payload = {**payload, "resilience": resilience_summary(recorder)}
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def resilience_summary(recorder: obs_metrics.MemoryRecorder) -> dict:
    """The resilience story of a run, as a small stable dict.

    Degradation/retry/fault counters (see ``repro.obs.events``) land in
    every bench artifact so a PR that starts degrading rings or
    retrying chunks shows up in the perf history, not just in prose.
    """
    counters = recorder.counters
    return {
        "degradations": counters.get("resilience.degradations", 0),
        "retries": counters.get("resilience.retries", 0),
        "worker_lost": counters.get("resilience.worker_lost", 0),
        "faults_injected": counters.get("resilience.faults", 0),
        "checkpoints": counters.get("resilience.checkpoints", 0),
        "resumes": counters.get("resilience.resumes", 0),
        "fail_closed": counters.get("resilience.fail_closed", 0),
    }


def trend(values: list[float]) -> float:
    """Signed end-to-end slope of a series (ignores NaN-free interiors)."""
    return values[-1] - values[0]


def mean(values: list[float]) -> float:
    return sum(values) / len(values)
