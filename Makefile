PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint chaos bench-smoke bench docs verify

test:
	$(PYTHON) -m pytest -x -q

lint:
	ruff check src tests benchmarks

# Fault-injection suite: worker death, budget trips, corrupted
# checkpoints, clock skew — run with a 2-worker pool so the
# supervision paths actually fan out.
chaos:
	REPRO_CHAOS_WORKERS=2 $(PYTHON) -m pytest tests/test_failure_injection.py tests/test_resilience.py -q

# Sub-minute perf guard: the before/after BFS ladder (writes
# benchmarks/results/BENCH_bfs.json) with tight, env-overridable caps.
bench-smoke:
	REPRO_BENCH_REF_TOTAL=30 $(PYTHON) -m pytest benchmarks/test_bench_bfs_perf.py -q -s

bench:
	$(PYTHON) -m pytest benchmarks/ -q -s

# Documentation gate: every markdown link/anchor resolves and every
# public-API docstring example still runs.
docs:
	$(PYTHON) tools/check_docs.py
	$(PYTHON) -m pytest tests/test_doctests.py -q

verify: test chaos bench-smoke docs
