PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-nonumpy lint chaos bench-smoke bench docs telemetry-smoke shard-smoke recover-smoke epoch-smoke verify

test:
	$(PYTHON) -m pytest -x -q

lint:
	ruff check src tests benchmarks

# Fault-injection suite: worker death, budget trips, corrupted
# checkpoints, clock skew — run with a 2-worker pool so the
# supervision paths actually fan out.
chaos:
	REPRO_CHAOS_WORKERS=2 $(PYTHON) -m pytest tests/test_failure_injection.py tests/test_resilience.py -q

# Sub-minute perf guard: the before/after BFS ladder (writes
# benchmarks/results/BENCH_bfs.json) with tight caps — the seed
# budget-trips the deepest rung here; the full `bench` target lets it
# finish (~70 s) and claims the deeper rung.
bench-smoke:
	REPRO_BENCH_REF_BUDGET=15 REPRO_BENCH_REF_TOTAL=30 $(PYTHON) -m pytest benchmarks/test_bench_bfs_perf.py -q -s

# bench_shard.py is a plain script (no test_ prefix, so the pytest
# glob skips it): the full shard grid runs after the pytest benches.
bench:
	$(PYTHON) -m pytest benchmarks/ -q -s
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_shard.py
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_recovery.py
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_epoch_delta.py

# Sharded-service gate: the router/partition test suite plus a capped
# run of the shard benchmark (1 and 4 shard columns, its own workload
# fingerprint so the trend check skips it) proving byte-identical
# responses and that retention still beats the single daemon.
shard-smoke:
	$(PYTHON) -m pytest tests/test_service_shard.py -q
	REPRO_BENCH_SHARD_SMOKE=1 PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_shard.py

# Tier-1 with the numpy-free kernel backend: proves the optional perf
# extra never becomes load-bearing (CI runs the same split).
test-nonumpy:
	REPRO_KERNEL_BACKEND=python $(PYTHON) -m pytest -x -q

# Documentation gate: every markdown link/anchor resolves and every
# public-API docstring example still runs.
docs:
	$(PYTHON) tools/check_docs.py
	$(PYTHON) -m pytest tests/test_doctests.py -q

# Telemetry gate: the telemetry test suites, one live stdio round trip
# through `serve` asserting the metrics op and the drain summary, and
# the bench-trend regression check against the committed artifacts.
telemetry-smoke:
	$(PYTHON) -m pytest tests/test_obs_telemetry.py tests/test_service_telemetry.py tests/test_bench_trend.py -q
	printf '%s\n%s\n%s\n' \
		'{"op":"select","id":"r1","target":"t03","c":2.0,"ell":2,"mode":"exact"}' \
		'{"op":"metrics","id":"m1"}' \
		'{"op":"shutdown","id":"x1"}' \
		| $(PYTHON) -m repro.cli serve 2>/dev/null \
		| grep -q 'repro_service_requests_total 1'
	$(PYTHON) tools/bench_trend.py --check

# Crash-safety gate: the journal/recovery suite (framing, replay,
# torn tails, pidfile, retrying client, the SIGKILL-during-commit
# soak), a capped run of the recovery benchmark (journal-on overhead +
# replay cost, its own workload fingerprint so the trend check skips
# it), then a strict fsck over the journal that bench run left behind
# — a clean daemon must produce a byte-perfect journal.
recover-smoke:
	$(PYTHON) -m pytest tests/test_service_recovery.py -q
	REPRO_BENCH_RECOVERY_SMOKE=1 PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_recovery.py
	$(PYTHON) tools/journal_fsck.py --check benchmarks/results/recovery_journal

# Epoch-delta gate: the delta-vs-replace equivalence/retention suite
# plus a capped run of the epoch benchmark (its own workload
# fingerprint so the trend check skips it) proving delta mode answers
# byte-identically while strictly improving warm-hit rate and p99.
epoch-smoke:
	$(PYTHON) -m pytest tests/test_epoch_delta.py -q
	REPRO_BENCH_EPOCH_SMOKE=1 PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_epoch_delta.py

verify: test test-nonumpy chaos bench-smoke shard-smoke recover-smoke epoch-smoke telemetry-smoke docs
