PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench-smoke bench verify

test:
	$(PYTHON) -m pytest -x -q

lint:
	ruff check src tests benchmarks

# Sub-minute perf guard: the before/after BFS ladder (writes
# benchmarks/results/BENCH_bfs.json) with tight, env-overridable caps.
bench-smoke:
	REPRO_BENCH_REF_TOTAL=30 $(PYTHON) -m pytest benchmarks/test_bench_bfs_perf.py -q -s

bench:
	$(PYTHON) -m pytest benchmarks/ -q -s

verify: test bench-smoke
