"""Exception hierarchy for the UTXO blockchain substrate."""

from __future__ import annotations

__all__ = [
    "ChainError",
    "ValidationError",
    "DoubleSpendError",
    "UnknownTokenError",
    "ConfigurationViolation",
]


class ChainError(Exception):
    """Base class for all blockchain substrate errors."""


class ValidationError(ChainError):
    """A transaction or block failed verification (Step 3 rejects it)."""


class DoubleSpendError(ValidationError):
    """A key image was seen before: the token is already consumed."""


class UnknownTokenError(ValidationError):
    """A ring references a token that does not exist on chain."""


class ConfigurationViolation(ValidationError):
    """A ring violates one of the practical configurations (Section 6.1)."""
