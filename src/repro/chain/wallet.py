"""A wallet: key management, signing, and diversity-aware spending.

The wallet ties the layers together on the sending side: it owns
one-time key pairs, knows which on-chain tokens it controls, asks a
mixin *selector* (any of the paper's algorithms) for a ring around the
token it wants to spend, and produces a fully signed transaction the
ledger will accept.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.modules import ModuleUniverse
from ..core.selector import SelectionResult, Selector, get_selector
from ..crypto.keys import KeyPair, keypair_from_seed
from .blockchain import Blockchain
from .errors import ValidationError
from .token import TokenOutput
from .transaction import RingInput, Transaction

__all__ = ["Wallet", "SpendPlan"]


@dataclass(frozen=True, slots=True)
class SpendPlan:
    """A selected-but-unsigned spend: the ring plus bookkeeping."""

    token_id: str
    selection: SelectionResult
    claimed_c: float
    claimed_ell: int


@dataclass(slots=True)
class Wallet:
    """Keys and tokens of one user.

    Attributes:
        name: human label; also the key-derivation namespace.
        keys: token id -> controlling key pair.
    """

    name: str
    keys: dict[str, KeyPair] = field(default_factory=dict)
    _counter: int = 0

    def derive_keypair(self) -> KeyPair:
        """Derive the wallet's next deterministic one-time key pair."""
        self._counter += 1
        return keypair_from_seed(f"{self.name}/{self._counter}")

    def claim_output(self, output: TokenOutput, keypair: KeyPair) -> None:
        """Record that ``output`` is controlled by ``keypair``."""
        if output.owner is not None and output.owner.encode() != keypair.public.encode():
            raise ValidationError(
                f"output {output.token_id!r} is not owned by this key pair"
            )
        self.keys[output.token_id] = keypair

    def owned_tokens(self) -> list[str]:
        return sorted(self.keys)

    # -- spending ----------------------------------------------------------

    def plan_spend(
        self,
        chain: Blockchain,
        token_id: str,
        c: float,
        ell: int,
        algorithm: str | Selector = "progressive",
        rng: random.Random | None = None,
    ) -> SpendPlan:
        """Choose mixins for ``token_id`` with the given selector.

        The module universe is derived from the full chain state; for
        batched selection use :class:`repro.tokenmagic.TokenMagic`
        instead, which restricts the universe to the token's batch.
        """
        if token_id not in self.keys:
            raise ValidationError(f"wallet {self.name!r} does not own {token_id!r}")
        selector = get_selector(algorithm) if isinstance(algorithm, str) else algorithm
        modules = ModuleUniverse(chain.universe, list(chain.rings))
        selection = selector(modules, token_id, c, ell, rng=rng)
        return SpendPlan(token_id=token_id, selection=selection, claimed_c=c, claimed_ell=ell)

    def sign_spend(
        self,
        chain: Blockchain,
        plan: SpendPlan,
        output_count: int = 1,
        nonce: int = 0,
    ) -> Transaction:
        """Turn a spend plan into a fully signed transaction.

        Requires every ring member to carry an owner key on chain (so
        verifiers can check the proof).
        """
        from ..crypto.lsag import sign

        keypair = self.keys[plan.token_id]
        ring_tokens = tuple(sorted(plan.selection.tokens))
        ring_keys = []
        for member in ring_tokens:
            owner = chain.token(member).owner
            if owner is None:
                raise ValidationError(
                    f"ring member {member!r} has no owner key on chain"
                )
            ring_keys.append(owner)

        unsigned = Transaction(
            inputs=(
                RingInput(
                    ring_tokens=ring_tokens,
                    key_image=keypair.key_image(),
                    proof=None,
                    claimed_c=plan.claimed_c,
                    claimed_ell=plan.claimed_ell,
                ),
            ),
            output_count=output_count,
            nonce=nonce,
        )
        message = Blockchain._message_for(unsigned)
        proof = sign(message, ring_keys, keypair)
        return Transaction(
            inputs=(
                RingInput(
                    ring_tokens=ring_tokens,
                    key_image=keypair.key_image(),
                    proof=proof,
                    claimed_c=plan.claimed_c,
                    claimed_ell=plan.claimed_ell,
                ),
            ),
            output_count=output_count,
            nonce=nonce,
        )

    def sign_multi_spend(
        self,
        chain: Blockchain,
        plans: list[SpendPlan],
        output_count: int = 1,
        nonce: int = 0,
    ) -> Transaction:
        """Spend several tokens in one transaction (Figure 1's shape).

        Each plan becomes one ring input with its own bLSAG proof; all
        proofs commit to the same transaction message, so the inputs
        cannot be re-bundled by an attacker.
        """
        from ..crypto.lsag import sign

        if not plans:
            raise ValidationError("a multi-spend needs at least one plan")
        images = [self.keys[plan.token_id].key_image() for plan in plans]
        if len({image.encode() for image in images}) != len(images):
            raise ValidationError("plans spend the same token twice")

        def inputs_with(proofs: list | None) -> tuple[RingInput, ...]:
            built = []
            for index, plan in enumerate(plans):
                built.append(
                    RingInput(
                        ring_tokens=tuple(sorted(plan.selection.tokens)),
                        key_image=images[index],
                        proof=proofs[index] if proofs else None,
                        claimed_c=plan.claimed_c,
                        claimed_ell=plan.claimed_ell,
                    )
                )
            return tuple(built)

        unsigned = Transaction(
            inputs=inputs_with(None), output_count=output_count, nonce=nonce
        )
        message = Blockchain._message_for(unsigned)
        proofs = []
        for plan in plans:
            keypair = self.keys[plan.token_id]
            ring_keys = []
            for member in sorted(plan.selection.tokens):
                owner = chain.token(member).owner
                if owner is None:
                    raise ValidationError(
                        f"ring member {member!r} has no owner key on chain"
                    )
                ring_keys.append(owner)
            proofs.append(sign(message, ring_keys, keypair))
        return Transaction(
            inputs=inputs_with(proofs), output_count=output_count, nonce=nonce
        )
