"""On-chain token outputs.

A token is a UTXO: an output of some historical transaction (HT),
controlled by a one-time public key, optionally carrying a Pedersen
amount commitment.  The token's id doubles as the identifier the
selection algorithms operate on; its ``origin_tx`` is the HT label used
by the recursive-diversity semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.commitment import Commitment
from ..crypto.keys import PublicKey

__all__ = ["TokenOutput"]


@dataclass(frozen=True, slots=True)
class TokenOutput:
    """One unspent transaction output.

    Attributes:
        token_id: globally unique id (``<tx_id>:<index>``).
        origin_tx: id of the transaction that output it (the HT label).
        index: output position inside the origin transaction.
        owner: one-time public key controlling the token.
        commitment: optional hidden-amount commitment.
    """

    token_id: str
    origin_tx: str
    index: int
    owner: PublicKey | None = None
    commitment: Commitment | None = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("output index must be non-negative")
        if not self.token_id:
            raise ValueError("token id must be non-empty")

    @staticmethod
    def make_id(tx_id: str, index: int) -> str:
        return f"{tx_id}:{index}"
