"""JSON serialization of chain objects.

Full nodes persist and serve blocks; light nodes fetch batches.  This
module provides stable, versioned JSON encodings for every on-chain
object and lossless round trips, which the persistence and node tests
exercise.

Key images, public keys and proofs are hex-encoded compressed points;
proofs carry their scalars in hex too.
"""

from __future__ import annotations

import json
from typing import Any

from ..crypto.ed25519 import Point, compress, decompress
from ..crypto.keys import PublicKey
from ..crypto.lsag import RingSignatureProof
from .block import Block
from .blockchain import Blockchain
from .transaction import RingInput, Transaction

__all__ = [
    "FORMAT_VERSION",
    "transaction_to_dict",
    "transaction_from_dict",
    "block_to_dict",
    "block_from_dict",
    "chain_to_json",
    "chain_from_json",
]

FORMAT_VERSION = 1


def _point_to_hex(point: Point) -> str:
    return compress(point).hex()


def _point_from_hex(data: str) -> Point:
    return decompress(bytes.fromhex(data))


def _proof_to_dict(proof: RingSignatureProof) -> dict[str, Any]:
    return {
        "ring": [pk.encode().hex() for pk in proof.ring],
        "c0": hex(proof.c0),
        "responses": [hex(r) for r in proof.responses],
        "key_image": _point_to_hex(proof.key_image),
    }


def _proof_from_dict(payload: dict[str, Any]) -> RingSignatureProof:
    return RingSignatureProof(
        ring=tuple(PublicKey(_point_from_hex(pk)) for pk in payload["ring"]),
        c0=int(payload["c0"], 16),
        responses=tuple(int(r, 16) for r in payload["responses"]),
        key_image=_point_from_hex(payload["key_image"]),
    )


def _ring_input_to_dict(ring_input: RingInput) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "ring_tokens": list(ring_input.ring_tokens),
        "claimed_c": ring_input.claimed_c,
        "claimed_ell": ring_input.claimed_ell,
    }
    if ring_input.key_image is not None:
        payload["key_image"] = _point_to_hex(ring_input.key_image)
    if ring_input.proof is not None:
        payload["proof"] = _proof_to_dict(ring_input.proof)
    return payload


def _ring_input_from_dict(payload: dict[str, Any]) -> RingInput:
    return RingInput(
        ring_tokens=tuple(payload["ring_tokens"]),
        key_image=(
            _point_from_hex(payload["key_image"])
            if "key_image" in payload
            else None
        ),
        proof=_proof_from_dict(payload["proof"]) if "proof" in payload else None,
        claimed_c=payload["claimed_c"],
        claimed_ell=payload["claimed_ell"],
    )


def transaction_to_dict(tx: Transaction) -> dict[str, Any]:
    """Encode a transaction (the tx id is recomputed on decode)."""
    return {
        "inputs": [_ring_input_to_dict(ri) for ri in tx.inputs],
        "output_count": tx.output_count,
        "nonce": tx.nonce,
    }


def transaction_from_dict(payload: dict[str, Any]) -> Transaction:
    return Transaction(
        inputs=tuple(_ring_input_from_dict(ri) for ri in payload["inputs"]),
        output_count=payload["output_count"],
        nonce=payload["nonce"],
    )


def block_to_dict(block: Block) -> dict[str, Any]:
    return {
        "height": block.height,
        "prev_hash": block.prev_hash,
        "timestamp": block.timestamp,
        "transactions": [transaction_to_dict(tx) for tx in block.transactions],
    }


def block_from_dict(payload: dict[str, Any]) -> Block:
    return Block(
        height=payload["height"],
        prev_hash=payload["prev_hash"],
        timestamp=payload["timestamp"],
        transactions=tuple(
            transaction_from_dict(tx) for tx in payload["transactions"]
        ),
    )


def chain_to_json(chain: Blockchain, indent: int | None = None) -> str:
    """Serialize a whole chain to a JSON document.

    Output owner keys (the on-chain one-time keys) are persisted in a
    side table so that a restored chain can re-verify ring-signature
    proofs on later blocks.
    """
    owners = {}
    for block in chain.blocks:
        for tx in block.transactions:
            for output in tx.make_outputs():
                stored = chain.token(output.token_id)
                if stored.owner is not None:
                    owners[output.token_id] = stored.owner.encode().hex()
    document = {
        "version": FORMAT_VERSION,
        "blocks": [block_to_dict(block) for block in chain.blocks],
        "owners": owners,
    }
    return json.dumps(document, indent=indent)


def chain_from_json(
    document: str,
    verify_signatures: bool = False,
) -> Blockchain:
    """Rebuild (and fully re-validate) a chain from its JSON document.

    Every block is re-applied through :meth:`Blockchain.append_block`,
    so a tampered document fails exactly where a tampered peer would.
    Owner keys are re-registered block by block so proof verification
    on later blocks sees the same state the original chain had.
    """
    payload = json.loads(document)
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported chain format version: {version!r}")
    owners = payload.get("owners", {})
    chain = Blockchain(verify_signatures=verify_signatures)
    from .token import TokenOutput

    for block_payload in payload["blocks"]:
        block = block_from_dict(block_payload)
        chain.append_block(block)
        owned = []
        for tx in block.transactions:
            for output in tx.make_outputs():
                owner_hex = owners.get(output.token_id)
                if owner_hex is not None:
                    owned.append(
                        TokenOutput(
                            token_id=output.token_id,
                            origin_tx=output.origin_tx,
                            index=output.index,
                            owner=PublicKey(_point_from_hex(owner_hex)),
                        )
                    )
        if owned:
            chain.register_owned_outputs(owned)
    return chain
