"""Blocks: ordered batches of transactions chained by hash.

The block structure is deliberately minimal — height, previous hash,
timestamp, transactions, and a Merkle-style content digest — because
the paper's algorithms only consume the ordering of transactions and
the per-block token counts (TokenMagic's batch construction walks
blocks in ascending order and counts tokens per block).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import digest_hex
from .transaction import Transaction

__all__ = ["Block", "GENESIS_HASH"]

#: Previous-hash value of the genesis block.
GENESIS_HASH = "0" * 64


@dataclass(frozen=True, slots=True)
class Block:
    """One block of the chain.

    Attributes:
        height: position in the chain (genesis = 0).
        prev_hash: hash of the preceding block (GENESIS_HASH for height 0).
        timestamp: block production time (seconds; logical clocks fine).
        transactions: ordered transactions in the block.
        block_hash: content digest, computed on construction.
    """

    height: int
    prev_hash: str
    timestamp: float
    transactions: tuple[Transaction, ...]
    block_hash: str = field(init=False)

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError("height must be non-negative")
        object.__setattr__(self, "block_hash", self._compute_hash())

    def _compute_hash(self) -> str:
        root = _merkle_root([tx.tx_id for tx in self.transactions])
        return digest_hex(
            "repro/block",
            self.height.to_bytes(8, "little"),
            self.prev_hash.encode(),
            int(self.timestamp * 1000).to_bytes(12, "little", signed=True),
            root.encode(),
        )

    @property
    def token_count(self) -> int:
        """Number of token outputs in the block (t(b) in Section 4)."""
        return sum(tx.output_count for tx in self.transactions)


def _merkle_root(leaves: list[str]) -> str:
    """Binary Merkle root over transaction ids (duplicating odd tails)."""
    if not leaves:
        return digest_hex("repro/merkle-empty")
    level = [digest_hex("repro/merkle-leaf", leaf.encode()) for leaf in leaves]
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [
            digest_hex("repro/merkle-node", left.encode(), right.encode())
            for left, right in zip(level[::2], level[1::2])
        ]
    return level[0]
