"""A mempool: pending transactions awaiting block inclusion.

Miners pick transactions by fee (the fee is proportional to the mixin
count — the paper's economic model), reject key-image conflicts on
arrival, and evict entries invalidated by newly applied blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .blockchain import Blockchain
from .errors import DoubleSpendError, UnknownTokenError, ValidationError
from .transaction import Transaction

__all__ = ["Mempool"]


@dataclass(slots=True)
class Mempool:
    """Pending-transaction pool attached to one chain.

    Attributes:
        chain: the chain pending transactions are validated against.
        max_size: maximum pending transactions; the lowest-fee entry is
            evicted first when full.
    """

    chain: Blockchain
    max_size: int = 10_000
    _pending: dict[str, Transaction] = field(default_factory=dict)
    _key_images: dict[bytes, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pending

    def submit(self, tx: Transaction) -> None:
        """Validate and enqueue ``tx``.

        Raises:
            DoubleSpendError: a key image conflicts with the chain or a
                pending transaction.
            UnknownTokenError: a ring member does not exist on chain.
            ValidationError: the pool is full of higher-fee entries.
        """
        if tx.tx_id in self._pending:
            return  # idempotent resubmission
        for ring_input in tx.inputs:
            for token in ring_input.ring_tokens:
                if not self.chain.has_token(token):
                    raise UnknownTokenError(
                        f"pending tx references unknown token {token!r}"
                    )
            if ring_input.key_image is not None:
                image = ring_input.key_image.encode()
                if self.chain.key_image_seen(image):
                    raise DoubleSpendError("key image already spent on chain")
                holder = self._key_images.get(image)
                if holder is not None:
                    raise DoubleSpendError(
                        f"key image conflicts with pending tx {holder[:12]}"
                    )
        if len(self._pending) >= self.max_size:
            cheapest = min(self._pending.values(), key=lambda t: t.fee)
            if cheapest.fee >= tx.fee:
                raise ValidationError("mempool full of higher-fee transactions")
            self._evict(cheapest.tx_id)
        self._pending[tx.tx_id] = tx
        for ring_input in tx.inputs:
            if ring_input.key_image is not None:
                self._key_images[ring_input.key_image.encode()] = tx.tx_id

    def _evict(self, tx_id: str) -> None:
        tx = self._pending.pop(tx_id)
        for ring_input in tx.inputs:
            if ring_input.key_image is not None:
                self._key_images.pop(ring_input.key_image.encode(), None)

    def select_for_block(self, limit: int) -> list[Transaction]:
        """Highest-fee pending transactions, ties broken by tx id."""
        ordered = sorted(
            self._pending.values(), key=lambda tx: (-tx.fee, tx.tx_id)
        )
        return ordered[:limit]

    def mine_block(self, limit: int = 100, timestamp: float | None = None):
        """Assemble, append and prune a block from the pool.

        Returns the appended block (possibly empty of transactions).
        Included transactions are always evicted — key image or not —
        and the pool is then pruned of entries the new block
        invalidated.
        """
        chosen = self.select_for_block(limit)
        block = self.chain.make_block(chosen, timestamp=timestamp)
        self.chain.append_block(block)
        for tx in chosen:
            self._evict(tx.tx_id)
        self.prune()
        return block

    def prune(self) -> int:
        """Drop entries invalidated by the current chain state.

        Returns the number of evicted transactions.
        """
        stale = []
        for tx in self._pending.values():
            for ring_input in tx.inputs:
                if ring_input.key_image is not None and self.chain.key_image_seen(
                    ring_input.key_image.encode()
                ):
                    stale.append(tx.tx_id)
                    break
        for tx_id in stale:
            self._evict(tx_id)
        return len(stale)
