"""Full-node and light-node views over the chain (Section 4).

Full-node users store all blockchain data and can build the TokenMagic
batch list themselves; light-node users query batch data from a full
node.  Because the batch parameter lambda is a public system parameter
and everyone agrees on the block list, every node derives the *same*
batch list — which is what lets mixin universes be a consensus object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.ring import Ring, TokenUniverse
from .blockchain import Blockchain
from .errors import ChainError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..tokenmagic.batch import Batch

__all__ = ["FullNode", "LightNode"]


class FullNode:
    """A node holding the full chain; serves batch data to light nodes."""

    def __init__(self, chain: Blockchain, batch_lambda: int) -> None:
        if batch_lambda < 1:
            raise ValueError("batch lambda must be >= 1")
        self.chain = chain
        self.batch_lambda = batch_lambda

    def batch_list(self) -> list["Batch"]:
        """The consensus batch list derived from the chain (Section 4)."""
        from ..tokenmagic.batch import build_batches

        return build_batches(self.chain, self.batch_lambda)

    def batch_of_token(self, token_id: str) -> "Batch":
        for batch in self.batch_list():
            if token_id in batch.universe:
                return batch
        raise ChainError(f"token {token_id!r} is in no batch")

    def batch_universe(self, batch_index: int) -> TokenUniverse:
        batches = self.batch_list()
        if not 0 <= batch_index < len(batches):
            raise ChainError(f"no batch {batch_index}; chain has {len(batches)}")
        return batches[batch_index].universe

    def rings_over(self, universe: TokenUniverse) -> list[Ring]:
        """Rings whose tokens fall inside ``universe`` (a batch's R_pi^T)."""
        return [
            ring
            for ring in self.chain.rings
            if any(token in universe for token in ring.tokens)
        ]


@dataclass(slots=True)
class LightNode:
    """A node that stores no chain data and queries a full node."""

    peer: FullNode

    def batch_for(self, token_id: str) -> "Batch":
        """Fetch the batch containing ``token_id`` from the peer."""
        return self.peer.batch_of_token(token_id)

    def mixin_universe(self, token_id: str) -> TokenUniverse:
        return self.batch_for(token_id).universe
