"""Transactions: ring-signature inputs consuming tokens, new token outputs.

A transaction carries one or more :class:`RingInput` objects (each the
on-chain form of a ring signature: the sorted token-id ring, a key
image, the bLSAG proof and the ring's claimed diversity requirement)
plus the fresh outputs it creates.  The fee model follows the paper:
the fee is proportional to the total number of mixins, which is the
economic pressure motivating minimum-size rings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.ed25519 import Point
from ..crypto.hashing import digest_hex
from ..crypto.lsag import RingSignatureProof
from .token import TokenOutput

__all__ = ["RingInput", "Transaction", "FEE_PER_MIXIN"]

#: Fee units charged per mixin (paper: fee proportional to ring size).
FEE_PER_MIXIN = 1


@dataclass(frozen=True, slots=True)
class RingInput:
    """One ring-signature input of a transaction.

    Attributes:
        ring_tokens: sorted tuple of token ids forming the ring
            (consumed token + mixins; which is which is hidden).
        key_image: the consumed token's key image (double-spend guard).
        proof: the bLSAG proof, or None for abstract/simulated inputs
            where only selection semantics are studied.
        claimed_c: the (c, l)-diversity requirement the ring claims.
        claimed_ell: see ``claimed_c``.
    """

    ring_tokens: tuple[str, ...]
    key_image: Point | None = None
    proof: RingSignatureProof | None = None
    claimed_c: float = 1.0
    claimed_ell: int = 1

    def __post_init__(self) -> None:
        if not self.ring_tokens:
            raise ValueError("ring must contain at least one token")
        if tuple(sorted(self.ring_tokens)) != self.ring_tokens:
            raise ValueError("ring tokens must be sorted (canonical form)")
        if len(set(self.ring_tokens)) != len(self.ring_tokens):
            raise ValueError("ring contains duplicate tokens")

    @property
    def mixin_count(self) -> int:
        return len(self.ring_tokens) - 1

    def token_set(self) -> frozenset[str]:
        return frozenset(self.ring_tokens)


@dataclass(frozen=True, slots=True)
class Transaction:
    """A transaction: ring inputs plus new outputs.

    The transaction id is a digest of its canonical content; outputs'
    token ids are derived from it, making every output's HT label the
    transaction id itself.
    """

    inputs: tuple[RingInput, ...]
    output_count: int
    nonce: int = 0
    tx_id: str = field(init=False)

    def __post_init__(self) -> None:
        if self.output_count < 0:
            raise ValueError("output count must be non-negative")
        if not self.inputs and self.output_count == 0:
            raise ValueError("transaction must have inputs or outputs")
        object.__setattr__(self, "tx_id", self._compute_id())

    def _compute_id(self) -> str:
        parts = [self.nonce.to_bytes(8, "little"), self.output_count.to_bytes(4, "little")]
        for ring_input in self.inputs:
            parts.append(",".join(ring_input.ring_tokens).encode())
            if ring_input.key_image is not None:
                parts.append(ring_input.key_image.encode())
        return digest_hex("repro/tx-id", *parts)

    @property
    def fee(self) -> int:
        """Fee proportional to the number of mixins across all inputs."""
        return FEE_PER_MIXIN * sum(ring.mixin_count for ring in self.inputs)

    def make_outputs(self, owners=None, commitments=None) -> tuple[TokenOutput, ...]:
        """Materialize this transaction's token outputs.

        Args:
            owners: optional list of one public key per output.
            commitments: optional list of one commitment per output.
        """
        outputs = []
        for index in range(self.output_count):
            outputs.append(
                TokenOutput(
                    token_id=TokenOutput.make_id(self.tx_id, index),
                    origin_tx=self.tx_id,
                    index=index,
                    owner=owners[index] if owners else None,
                    commitment=commitments[index] if commitments else None,
                )
            )
        return tuple(outputs)
