"""UTXO blockchain substrate with ring-signature inputs.

Blocks carry transactions; transactions consume tokens through ring
signatures and output fresh tokens; the ledger enforces key-image
uniqueness (no double spends), verifies bLSAG proofs and runs pluggable
Step-3 policy checks.  The selection algorithms in :mod:`repro.core`
see the chain through its :class:`~repro.core.ring.TokenUniverse` and
:class:`~repro.core.ring.RingSet` views.
"""

from .block import GENESIS_HASH, Block
from .blockchain import Blockchain, PolicyVerifier
from .errors import (
    ChainError,
    ConfigurationViolation,
    DoubleSpendError,
    UnknownTokenError,
    ValidationError,
)
from .mempool import Mempool
from .node import FullNode, LightNode
from .serialization import (
    block_from_dict,
    block_to_dict,
    chain_from_json,
    chain_to_json,
    transaction_from_dict,
    transaction_to_dict,
)
from .token import TokenOutput
from .transaction import FEE_PER_MIXIN, RingInput, Transaction
from .wallet import SpendPlan, Wallet

__all__ = [
    "Block",
    "GENESIS_HASH",
    "Blockchain",
    "PolicyVerifier",
    "ChainError",
    "ValidationError",
    "DoubleSpendError",
    "UnknownTokenError",
    "ConfigurationViolation",
    "FullNode",
    "LightNode",
    "TokenOutput",
    "Transaction",
    "RingInput",
    "FEE_PER_MIXIN",
    "SpendPlan",
    "Wallet",
    "Mempool",
    "chain_to_json",
    "chain_from_json",
    "block_to_dict",
    "block_from_dict",
    "transaction_to_dict",
    "transaction_from_dict",
]
