"""The ledger: block validation, UTXO tracking and key-image registry.

Implements "Step 3" of the ring-signature scheme (Section 2.1): when a
block arrives, every ring input is checked —

* all ring members must be existing on-chain tokens,
* the key image must be unseen (double-spend guard),
* if a bLSAG proof is attached, it must verify against the ring
  members' owner keys,
* pluggable *policy verifiers* enforce extra configurations (the
  paper's example: Monero's recent-blocks rule; ours: the two practical
  configurations and the eta reserve rule, supplied by
  :mod:`repro.tokenmagic`).

The chain also exposes the views the rest of the system needs: the
token universe (token -> HT) and the ring set proposed so far.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core.ring import Ring, RingSet, TokenUniverse
from ..obs.clock import Clock, wall_clock
from ..resilience import faults
from ..crypto.hashing import sha512
from ..crypto.lsag import verify as lsag_verify
from .block import GENESIS_HASH, Block
from .errors import DoubleSpendError, UnknownTokenError, ValidationError
from .token import TokenOutput
from .transaction import RingInput, Transaction

__all__ = ["Blockchain", "PolicyVerifier"]

#: A policy verifier inspects a candidate ring input against the current
#: chain state and raises ValidationError (or a subclass) to reject it.
PolicyVerifier = Callable[["Blockchain", RingInput], None]


class Blockchain:
    """An append-only chain of validated blocks.

    Args:
        verify_signatures: verify bLSAG proofs on inputs that carry one
            (pure-python crypto; disable for large simulations).
        policy_verifiers: extra Step-3 checks applied to every ring input.
        clock: timestamp source for :meth:`make_block` (defaults to
            wall time; pass a :class:`~repro.obs.clock.ManualClock` for
            deterministic simulations and traces).
    """

    def __init__(
        self,
        verify_signatures: bool = True,
        policy_verifiers: Iterable[PolicyVerifier] = (),
        clock: Clock | None = None,
    ) -> None:
        self.blocks: list[Block] = []
        self.clock: Clock = wall_clock if clock is None else clock
        self.verify_signatures = verify_signatures
        self.policy_verifiers: list[PolicyVerifier] = list(policy_verifiers)
        self._tokens: dict[str, TokenOutput] = {}
        self._key_images: set[bytes] = set()
        self._rings = RingSet()
        self._universe = TokenUniverse()
        self._ring_seq = 0

    # -- chain views -----------------------------------------------------

    @property
    def height(self) -> int:
        return len(self.blocks)

    @property
    def tip_hash(self) -> str:
        return self.blocks[-1].block_hash if self.blocks else GENESIS_HASH

    @property
    def universe(self) -> TokenUniverse:
        """Token -> HT view over every token ever output."""
        return self._universe

    @property
    def rings(self) -> RingSet:
        """Every ring proposed so far, in proposal order."""
        return self._rings

    def token(self, token_id: str) -> TokenOutput:
        try:
            return self._tokens[token_id]
        except KeyError:
            raise UnknownTokenError(f"token {token_id!r} does not exist") from None

    def has_token(self, token_id: str) -> bool:
        return token_id in self._tokens

    def key_image_seen(self, image_bytes: bytes) -> bool:
        return image_bytes in self._key_images

    # -- validation & append ----------------------------------------------

    def append_block(self, block: Block) -> None:
        """Validate ``block`` against the tip and apply it.

        Raises:
            ValidationError: (or subclass) on any structural, crypto,
                double-spend or policy failure.  The chain state is
                unchanged on failure.
        """
        if block.height != self.height:
            raise ValidationError(
                f"expected height {self.height}, block claims {block.height}"
            )
        if block.prev_hash != self.tip_hash:
            raise ValidationError("previous-hash mismatch")

        # Validate all transactions before mutating any state.
        new_images: set[bytes] = set()
        for tx in block.transactions:
            self._validate_transaction(tx, new_images)

        self.blocks.append(block)
        for tx in block.transactions:
            self._apply_transaction(tx)

    def _validate_transaction(self, tx: Transaction, new_images: set[bytes]) -> None:
        for ring_input in tx.inputs:
            for token_id in ring_input.ring_tokens:
                if token_id not in self._tokens:
                    raise UnknownTokenError(
                        f"tx {tx.tx_id[:12]} references unknown token {token_id!r}"
                    )
            if ring_input.key_image is not None:
                image = ring_input.key_image.encode()
                if image in self._key_images or image in new_images:
                    raise DoubleSpendError(
                        f"tx {tx.tx_id[:12]}: key image already used"
                    )
                new_images.add(image)
            if self.verify_signatures and ring_input.proof is not None:
                self._verify_proof(tx, ring_input)
            for policy in self.policy_verifiers:
                policy(self, ring_input)

    def _verify_proof(self, tx: Transaction, ring_input: RingInput) -> None:
        proof = ring_input.proof
        assert proof is not None
        owners = []
        for token_id in ring_input.ring_tokens:
            owner = self._tokens[token_id].owner
            if owner is None:
                raise ValidationError(
                    f"token {token_id!r} has no owner key; cannot verify proof"
                )
            owners.append(owner)
        if [pk.encode() for pk in proof.ring] != [pk.encode() for pk in owners]:
            raise ValidationError("proof ring does not match declared token ring")
        if proof.key_image != ring_input.key_image:
            raise ValidationError("proof key image does not match declared image")
        if not lsag_verify(self._message_for(tx), proof):
            raise ValidationError(f"invalid ring signature in tx {tx.tx_id[:12]}")

    @staticmethod
    def _message_for(tx: Transaction) -> bytes:
        """The message a transaction's ring signatures commit to."""
        return sha512(
            "repro/tx-message",
            tx.output_count.to_bytes(4, "little"),
            tx.nonce.to_bytes(8, "little"),
            *(",".join(ri.ring_tokens).encode() for ri in tx.inputs),
        )[:32]

    signing_message = _message_for

    def _apply_transaction(self, tx: Transaction) -> None:
        for ring_input in tx.inputs:
            if ring_input.key_image is not None:
                self._key_images.add(ring_input.key_image.encode())
            ring = Ring(
                rid=f"{tx.tx_id}:{self._ring_seq}",
                tokens=ring_input.token_set(),
                c=ring_input.claimed_c,
                ell=ring_input.claimed_ell,
                seq=self._ring_seq,
            )
            self._ring_seq += 1
            self._rings.add(ring)
        for output in tx.make_outputs():
            self._tokens[output.token_id] = output
            self._universe.add(output.token_id, output.origin_tx)

    # -- convenience ------------------------------------------------------

    def register_owned_outputs(self, outputs: Iterable[TokenOutput]) -> None:
        """Attach owner keys / commitments to already-applied outputs.

        ``Transaction.make_outputs`` is deterministic, so wallets that
        know the owner keys re-materialize outputs and register them
        here to enable signature verification on later spends.
        """
        for output in outputs:
            existing = self._tokens.get(output.token_id)
            if existing is None:
                raise UnknownTokenError(f"token {output.token_id!r} does not exist")
            self._tokens[output.token_id] = output

    def make_block(self, transactions: Iterable[Transaction], timestamp: float | None = None) -> Block:
        """Assemble (but do not append) the next block.

        Fault site ``chain.clock``: an active
        :class:`~repro.resilience.faults.FaultPlan` with a ``skew``
        action shifts the timestamp read by the spec's payload seconds
        (clock-skew chaos; explicit ``timestamp`` arguments bypass it).
        """
        if timestamp is None:
            timestamp = self.clock()
            plan = faults.active()
            if plan is not None:
                timestamp += plan.skew("chain.clock")
        return Block(
            height=self.height,
            prev_hash=self.tip_hash,
            timestamp=timestamp,
            transactions=tuple(transactions),
        )
