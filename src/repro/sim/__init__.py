"""Longitudinal economy simulation over the full stack.

Mints, spends through TokenMagic, mempool mining, and anonymity
measurement over time — the deployment-shaped harness the examples and
policy ablations drive.
"""

from .economy import Economy, EconomyConfig, TickReport

__all__ = ["Economy", "EconomyConfig", "TickReport"]
