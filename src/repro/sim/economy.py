"""A discrete-time economy simulation over the full stack.

Drives the whole system the way a deployment would: every tick, new
coinbase-style transactions mint tokens, users spend existing tokens
through the TokenMagic framework with a configurable selection policy,
blocks are mined from a mempool, and an observer measures anonymity
over the accumulating ring population.

Used by the longitudinal example and the policy-comparison ablation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.chain_reaction import exact_analysis
from ..analysis.metrics import PopulationMetrics, population_metrics
from ..chain.blockchain import Blockchain
from ..chain.mempool import Mempool
from ..chain.transaction import RingInput, Transaction
from ..core.problem import InfeasibleError
from ..core.relaxation import select_with_relaxation
from ..tokenmagic.framework import TokenMagic, TokenMagicConfig

__all__ = ["EconomyConfig", "TickReport", "Economy"]


@dataclass(frozen=True, slots=True)
class EconomyConfig:
    """Simulation parameters.

    Attributes:
        mints_per_tick: new minting transactions per tick.
        outputs_per_mint: token outputs per minting transaction.
        spends_per_tick: spend attempts per tick.
        c: diversity requirement c for every spender.
        ell: diversity requirement l for every spender.
        algorithm: selector name for spenders.
        batch_lambda: TokenMagic batch parameter.
        relax_on_failure: walk the Section 4 relaxation ladder when a
            spend is infeasible instead of dropping it.
        seed: master RNG seed.
    """

    mints_per_tick: int = 2
    outputs_per_mint: int = 3
    spends_per_tick: int = 2
    c: float = 1.0
    ell: int = 3
    algorithm: str = "progressive"
    batch_lambda: int = 60
    relax_on_failure: bool = True
    seed: int = 0


@dataclass(frozen=True, slots=True)
class TickReport:
    """What happened in one tick."""

    tick: int
    minted_tokens: int
    attempted_spends: int
    successful_spends: int
    relaxed_spends: int
    infeasible_spends: int
    mean_ring_size: float


class Economy:
    """The running simulation."""

    def __init__(self, config: EconomyConfig | None = None) -> None:
        self.config = config or EconomyConfig()
        self.rng = random.Random(self.config.seed)
        self.chain = Blockchain(verify_signatures=False)
        self.magic = TokenMagic(
            self.chain,
            TokenMagicConfig(batch_lambda=self.config.batch_lambda),
        )
        self.mempool = Mempool(chain=self.chain)
        self.reports: list[TickReport] = []
        self._spent_targets: set[str] = set()
        self._clock = 0.0
        self._nonce = 0

    # -- one tick ---------------------------------------------------------

    def tick(self) -> TickReport:
        """Advance the economy by one tick and return its report."""
        config = self.config
        tick_index = len(self.reports)

        minted = self._mint()
        attempted = successes = relaxed = infeasible = 0
        ring_sizes: list[int] = []

        spendable = sorted(self.chain.universe.tokens - self._spent_targets)
        for _ in range(config.spends_per_tick):
            if not spendable:
                break
            attempted += 1
            target = spendable.pop(self.rng.randrange(len(spendable)))
            outcome = self._spend(target)
            if outcome is None:
                infeasible += 1
                continue
            size, was_relaxed = outcome
            successes += 1
            relaxed += int(was_relaxed)
            ring_sizes.append(size)

        self.mempool.mine_block(timestamp=self._next_time())

        report = TickReport(
            tick=tick_index,
            minted_tokens=minted,
            attempted_spends=attempted,
            successful_spends=successes,
            relaxed_spends=relaxed,
            infeasible_spends=infeasible,
            mean_ring_size=(
                sum(ring_sizes) / len(ring_sizes) if ring_sizes else 0.0
            ),
        )
        self.reports.append(report)
        return report

    def run(self, ticks: int) -> list[TickReport]:
        """Run ``ticks`` ticks and return their reports."""
        return [self.tick() for _ in range(ticks)]

    # -- measurements -----------------------------------------------------

    def anonymity(self) -> PopulationMetrics | None:
        """Attack the current ring population (None when empty)."""
        rings = list(self.chain.rings)
        if not rings:
            return None
        return population_metrics(rings, self.chain.universe)

    def deanonymization_rate(self) -> float:
        rings = list(self.chain.rings)
        if not rings:
            return 0.0
        return exact_analysis(rings).deanonymization_rate

    # -- internals ----------------------------------------------------------

    def _next_time(self) -> float:
        self._clock += 1.0
        return self._clock

    def _next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce

    def _mint(self) -> int:
        config = self.config
        txs = [
            Transaction(
                inputs=(),
                output_count=config.outputs_per_mint,
                nonce=self._next_nonce(),
            )
            for _ in range(config.mints_per_tick)
        ]
        block = self.chain.make_block(txs, timestamp=self._next_time())
        self.chain.append_block(block)
        # Batches may have shifted: reset cached registries.
        self.magic = TokenMagic(
            self.chain,
            TokenMagicConfig(batch_lambda=config.batch_lambda),
        )
        return sum(tx.output_count for tx in txs)

    def _spend(self, target: str) -> tuple[int, bool] | None:
        config = self.config
        try:
            result = self.magic.generate_ring(
                target, config.c, config.ell, algorithm=config.algorithm,
                rng=self.rng,
            )
            was_relaxed = False
        except InfeasibleError:
            if not config.relax_on_failure:
                return None
            from ..core.modules import ModuleUniverse
            from ..tokenmagic.batch import batch_of_token

            try:
                batch = batch_of_token(self.magic.batches(), target)
            except KeyError:
                return None
            registry = self.magic.registry_for(batch)
            modules = ModuleUniverse(batch.universe, registry.rings)
            try:
                result, step = select_with_relaxation(
                    modules, target, config.c, config.ell,
                    algorithm=config.algorithm, rng=self.rng,
                )
            except InfeasibleError:
                return None
            was_relaxed = not step.is_original

        from ..crypto.keys import keypair_from_seed

        self.magic.commit_ring(result, config.c, config.ell)
        # Each simulated token is controlled by a deterministic key so
        # the ledger's key-image double-spend guard stays live.
        keypair = keypair_from_seed(f"sim-owner/{target}")
        tx = Transaction(
            inputs=(
                RingInput(
                    ring_tokens=tuple(sorted(result.tokens)),
                    key_image=keypair.key_image(),
                    claimed_c=config.c,
                    claimed_ell=config.ell,
                ),
            ),
            output_count=1,
            nonce=self._next_nonce(),
        )
        self.mempool.submit(tx)
        self._spent_targets.add(target)
        return result.size, was_relaxed
