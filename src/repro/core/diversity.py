"""Recursive (c, l)-diversity over historical-transaction labels.

Section 2.5 of the paper: a multiset of sensitive values with descending
frequencies q_1 >= q_2 >= ... >= q_theta satisfies *recursive
(c, l)-diversity* iff

    q_1 < c * (q_l + q_{l+1} + ... + q_theta).

In the ring-signature setting the sensitive value of a token is the
historical transaction (HT) that output it.  A ring is a *recursive
(c, l)-diversity RS* (Definition 4) when both its own HT multiset and
the HT multiset of each of its DTRSs satisfy the test.

This module implements the test itself plus the derived quantities the
Progressive algorithm uses (the violation "deficit" delta of Algorithm 4).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

__all__ = [
    "sorted_frequencies",
    "satisfies_recursive_diversity",
    "diversity_deficit",
    "ht_counts_satisfy",
    "ht_counts_deficit",
    "most_frequent_count",
]


def sorted_frequencies(counts: Counter[str] | Iterable[int]) -> list[int]:
    """Return the frequency vector q_1 >= q_2 >= ... >= q_theta.

    Accepts either a Counter over labels or an iterable of raw counts.
    """
    if isinstance(counts, Counter):
        values = list(counts.values())
    else:
        values = list(counts)
    if any(value <= 0 for value in values):
        raise ValueError("frequencies must be positive")
    return sorted(values, reverse=True)


def satisfies_recursive_diversity(frequencies: list[int], c: float, ell: int) -> bool:
    """Evaluate q_1 < c * (q_l + ... + q_theta) on a descending vector.

    When l exceeds the number of distinct labels theta, the right-hand
    sum is empty and the test fails (matching the paper's "2 >= 3*0"
    example).  An empty vector trivially fails: a ring always has at
    least one token, so there is nothing to protect.
    """
    if ell < 1:
        raise ValueError("l must be >= 1")
    if not frequencies:
        return False
    tail = sum(frequencies[ell - 1 :])
    return frequencies[0] < c * tail


def diversity_deficit(frequencies: list[int], c: float, ell: int) -> float:
    """The violation measure delta = q_1 - c * (q_l + ... + q_theta).

    Negative values mean the recursive (c, l)-diversity test passes;
    the Progressive algorithm's second phase greedily drives this below
    zero (Algorithm 4, beta scores).
    """
    if ell < 1:
        raise ValueError("l must be >= 1")
    if not frequencies:
        return float("inf")
    tail = sum(frequencies[ell - 1 :])
    return frequencies[0] - c * tail


def ht_counts_satisfy(counts: Counter[str], c: float, ell: int) -> bool:
    """Recursive (c, l)-diversity of an HT multiset given as a Counter."""
    if not counts:
        return False
    return satisfies_recursive_diversity(sorted_frequencies(counts), c, ell)


def ht_counts_deficit(counts: Counter[str], c: float, ell: int) -> float:
    """Deficit delta of an HT multiset given as a Counter."""
    if not counts:
        return float("inf")
    return diversity_deficit(sorted_frequencies(counts), c, ell)


def most_frequent_count(counts: Counter[str]) -> int:
    """q_M: multiplicity of the most frequent HT (Theorems 6.2/6.5/6.7)."""
    if not counts:
        return 0
    return max(counts.values())
