"""Solver performance layer: shared-work caching and parallel fan-out.

The exact pipeline (Algorithm 2's BFS over mixin sets, Algorithm 3's
DTRS enumeration, and the matching-based chain-reaction analysis) is
exponential by Theorem 3.1 — but the *seed* implementation also paid
for the same sub-results thousands of times over.  This package holds
the machinery that removes the redundancy without changing a single
answer:

* :class:`WorldSet` (:mod:`~repro.core.perf.worlds`) — token-RS
  combinations of a ring set in an interned, bitmask-indexed form.
  Enumerated once, extended per candidate, and queried for DTRSs via
  big-integer mask intersections instead of repeated world scans.
* :class:`SolverCache` (:mod:`~repro.core.perf.cache`) — per-instance
  memoization keyed by ring-set fingerprints: connected components of
  the token-overlap graph give O(tokens) related-ring closures, and the
  base worlds / base matchings of each distinct related set are shared
  by every BFS candidate that touches it.
* :class:`IncrementalMatcher` (:mod:`~repro.core.perf.matching`) — one
  maximum bipartite matching per ring set; every "can ring r consume
  token t?" query is answered with a single augmenting-path repair
  instead of a full Kuhn run.
* :mod:`~repro.core.perf.parallel` — opt-in multiprocessing fan-out for
  the BFS candidate stream and the per-ring chain-reaction sweep, with
  a deterministic first-feasible-in-lexicographic-order winner so the
  parallel results are identical to serial.
* :mod:`~repro.core.perf.kernels` — columnar batch kernels: whole
  strata of candidates are resolved against one cached base world set
  via factorized slice masks (bulk extension, batched HT filtering, a
  size-0/1/2 DTRS pre-sweep), with interchangeable pure-python and
  numpy mask backends selected by ``REPRO_KERNEL_BACKEND``.
* :mod:`~repro.core.perf.reference` — the seed (pre-optimization)
  algorithms, kept verbatim so equivalence tests and the
  ``BENCH_bfs.json`` benchmark can prove the fast path returns the same
  output and measure how much faster it is.
"""

from .cache import SolverCache
from .kernels import (
    KernelBackend,
    KernelState,
    active_backend,
    active_backend_name,
    available_backends,
    prefilter_chunk,
    use_backend,
)
from .matching import IncrementalMatcher
from .parallel import parallel_map_rings, resolve_workers
from .worlds import WorldSet

__all__ = [
    "SolverCache",
    "IncrementalMatcher",
    "WorldSet",
    "KernelBackend",
    "KernelState",
    "active_backend",
    "active_backend_name",
    "available_backends",
    "prefilter_chunk",
    "use_backend",
    "parallel_map_rings",
    "resolve_workers",
]
