"""Opt-in multiprocessing fan-out for the exact pipeline.

Two fan-outs live here:

* the BFS candidate stream — :func:`scan_candidates` chunks the
  lexicographic size-k mixin stream across a process pool and returns
  the *first feasible candidate in enumeration order*, so the parallel
  winner (and therefore the reported optimum, mixin set and
  ``candidates_checked``) is byte-identical to the serial solver's;
* the chain-reaction per-ring sweep — :func:`parallel_map_rings` splits
  the possible-consumed-token queries of an attack across workers, each
  holding its own :class:`~repro.core.perf.matching.IncrementalMatcher`.

Workers are plain forked processes (no shared state); each builds its
own :class:`~repro.core.perf.cache.SolverCache` once per pool and keeps
it across chunks.  Determinism does not depend on scheduling: results
are consumed in submission order and the first hit wins.

Observability: when the controller has a metrics recorder installed,
each BFS worker wraps every candidate check in a private
:class:`~repro.obs.metrics.MemoryRecorder` and ships the per-candidate
snapshots back with the chunk outcome (the pool's result queue is the
event queue).  The controller folds them in submission order up to the
winning candidate, so merged counter totals equal a serial run's — see
:mod:`repro.obs.events` for the protocol and the one documented
exception (per-process cache counters).  Workers never trace; any
tracer inherited across the fork is uninstalled at pool init.

Everything defaults off (``workers <= 1`` means serial) — on small
instances process startup dwarfs the work, and the caching layer alone
usually clears the budget.
"""

from __future__ import annotations

import multiprocessing
import time
from itertools import islice
from typing import Iterable, Iterator, Mapping, Sequence

from ...obs import metrics, trace
from ...resilience import faults
from ..ring import Ring

__all__ = [
    "resolve_workers",
    "chunked",
    "scan_candidates",
    "parallel_map_rings",
    "WorkerLost",
]


class WorkerLost(RuntimeError):
    """A pool worker died or hung and its chunk could not be recovered.

    The seed behaviour was worse than an error: a crashed child left
    ``Pool.imap`` blocked on a result that would never arrive, hanging
    the controller until pool teardown.  The windowed engine in
    :mod:`repro.resilience.supervisor` detects the loss (sentinel
    timeout, tightened on observed child death) and raises this typed
    error — or, under a :class:`~repro.resilience.supervisor.RetryPolicy`
    with retries, requeues the chunk instead.

    Attributes:
        chunk_index: global index of the unrecoverable chunk.
        attempts: how many times the chunk was attempted.
    """

    def __init__(
        self, message: str, chunk_index: int | None = None, attempts: int = 1
    ) -> None:
        super().__init__(message)
        self.chunk_index = chunk_index
        self.attempts = attempts

#: Candidates per task sent to a BFS worker.  Large enough to amortize
#: pickling, small enough that the controller can stop soon after a hit.
BFS_CHUNK_SIZE = 64

#: Rings per task in the chain-reaction sweep.
ANALYSIS_CHUNK_SIZE = 8

# Per-process worker state, installed by the pool initializer (plain
# module globals — each forked worker has its own copy).
_STATE: dict = {}


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count flag: <= 1 (or None) means serial."""
    if workers is None or workers <= 1:
        return 0
    return int(workers)


def chunked(iterable: Iterable, size: int) -> Iterator[list]:
    """Split an iterable into lists of at most ``size`` items."""
    iterator = iter(iterable)
    while chunk := list(islice(iterator, size)):
        yield chunk


def _pool(workers: int, initializer, initargs) -> multiprocessing.pool.Pool:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return context.Pool(workers, initializer=initializer, initargs=initargs)


# -- BFS candidate fan-out ------------------------------------------------


def _init_bfs_worker(instance, deadline, record: bool) -> None:
    from .cache import SolverCache

    # Forked workers inherit the controller's recorder/tracer globals;
    # uninstall both — worker counts travel back as explicit snapshots,
    # never through an orphaned in-process sink.
    metrics.set_recorder(None)
    trace.set_tracer(None)
    _STATE["instance"] = instance
    _STATE["cache"] = SolverCache(instance.universe, instance.rings)
    _STATE["deadline"] = deadline
    _STATE["record"] = record


def _scan_chunk(
    task: tuple[list[tuple[str, ...]], int, int],
) -> tuple[str, int, tuple[str, ...] | None, list[dict] | None]:
    """Scan one chunk: (outcome, index, mixins-or-None, snapshots-or-None).

    ``task`` is ``(chunk, chunk_index, attempt)`` — the global chunk
    index and retry attempt exist so the ``parallel.worker_chunk``
    fault site can target one chunk's first attempt deterministically
    (worker-death chaos) while its requeued retry survives.

    Outcomes: ("found", i, mixins, snaps) | ("none", n, None, snaps) |
    ("budget", i, None, snaps).  ``snaps`` holds one metrics snapshot
    per candidate whose check started (None when recording is off); on
    "budget" the last snapshot is the tripping candidate's partial
    counts, mirroring what a serial run would have accumulated.
    """
    from ..bfs import SearchBudgetExceeded, _replay_candidate
    from .kernels import prefilter_chunk

    chunk, chunk_index, attempt = task
    plan = faults.active()
    if plan is not None:
        plan.check("parallel.worker_chunk", index=chunk_index, attempt=attempt)
    instance = _STATE["instance"]
    cache = _STATE["cache"]
    deadline = _STATE["deadline"]
    record = _STATE["record"]
    snaps: list[dict] | None = [] if record else None
    # The same kernel pre-filter the serial solver runs — verdicts are
    # functions of (instance, candidate), so per-candidate work (and the
    # counters the replay emits below) is identical to a serial scan of
    # the same prefix no matter how candidates landed on workers.  The
    # pre-filter runs outside the per-candidate recorders: kernel/cache
    # counters are per-process (scheduling-dependent) by design.
    verdicts = prefilter_chunk(instance, cache, chunk, deadline=deadline)
    for local_index, mixin_tuple in enumerate(chunk):
        # Resolved verdicts apply in O(1) and never consult the clock
        # internally, so the replay keeps the serial loop's explicit
        # per-candidate deadline pre-check.
        if deadline is not None and time.perf_counter() > deadline:
            return ("budget", local_index, None, snaps)
        candidate = instance.make_ring(mixin_tuple)
        verdict = None if verdicts is None else verdicts[local_index]
        if record:
            with metrics.recording() as rec:
                try:
                    feasible = _replay_candidate(
                        instance, candidate, verdict,
                        cache=cache, deadline=deadline,
                    )
                except SearchBudgetExceeded:
                    snaps.append(rec.snapshot())
                    return ("budget", local_index, None, snaps)
            snaps.append(rec.snapshot())
        else:
            try:
                feasible = _replay_candidate(
                    instance, candidate, verdict,
                    cache=cache, deadline=deadline,
                )
            except SearchBudgetExceeded:
                return ("budget", local_index, None, None)
        if feasible:
            return ("found", local_index, mixin_tuple, snaps)
    return ("none", len(chunk), None, snaps)


def scan_candidates(
    instance,
    candidate_stream: Iterable[tuple[str, ...]],
    workers: int,
    deadline: float | None = None,
    chunk_size: int = BFS_CHUNK_SIZE,
    hang_timeout: float | None = None,
) -> tuple[str, int, tuple[str, ...] | None]:
    """Find the first feasible candidate of a (lexicographic) stream.

    Returns:
        ("found", global_index, mixins): a feasible candidate exists;
            its 0-based position in the stream and its mixin tuple — by
            construction the same candidate the serial scan returns.
        ("none", total, None): the stream was exhausted; ``total``
            candidates were scanned.
        ("budget", global_index, None): a worker hit the deadline while
            checking the candidate at ``global_index``.

    Worker metrics snapshots are folded into the controller's recorder
    in submission order, truncated at the winning (or tripping)
    candidate — the merged totals match a serial scan of the same
    prefix (see :mod:`repro.obs.events`).

    A chunk whose worker dies or answers nothing within ``hang_timeout``
    seconds (default :data:`~repro.resilience.supervisor.DEFAULT_HANG_TIMEOUT`)
    raises :class:`WorkerLost` instead of blocking forever; use
    :func:`repro.resilience.supervisor.supervised_scan` to requeue the
    chunk and keep scanning instead.

    Raises:
        WorkerLost: a worker died or hung and took its chunk with it.
    """
    from ...resilience.supervisor import (
        DEFAULT_HANG_TIMEOUT,
        RetryPolicy,
        windowed_scan,
    )

    policy = RetryPolicy(
        max_retries=0,
        hang_timeout=DEFAULT_HANG_TIMEOUT if hang_timeout is None else hang_timeout,
    )
    return windowed_scan(
        instance,
        candidate_stream,
        workers,
        deadline=deadline,
        chunk_size=chunk_size,
        policy=policy,
    )


# -- chain-reaction fan-out ------------------------------------------------


def _init_analysis_worker(rings, forced) -> None:
    from .matching import IncrementalMatcher

    metrics.set_recorder(None)
    trace.set_tracer(None)
    _STATE["matcher"] = IncrementalMatcher(rings, forced)


def _analysis_chunk(rids: list[str]) -> dict[str, frozenset[str]]:
    matcher = _STATE["matcher"]
    return {rid: matcher.possible_tokens(rid) for rid in rids}


def parallel_map_rings(
    rings: Sequence[Ring],
    forced: Mapping[str, str] | None,
    workers: int,
    chunk_size: int = ANALYSIS_CHUNK_SIZE,
) -> dict[str, frozenset[str]]:
    """Possible-consumed-token sets for every ring, fanned across workers."""
    rids = [ring.rid for ring in rings]
    possible: dict[str, frozenset[str]] = {}
    with _pool(workers, _init_analysis_worker, (list(rings), dict(forced or {}))) as pool:
        for chunk_result in pool.imap(_analysis_chunk, chunked(rids, chunk_size)):
            possible.update(chunk_result)
    return possible
