"""Interned, columnar, bitmask-indexed token-RS combinations of a ring set.

The seed ``get_dtrss`` materialized ``list(enumerate_combinations(...))``
as a list of ``{rid: token}`` dicts for *every* (target, closure) call,
then re-scanned the whole list once per candidate pair set.  A
:class:`WorldSet` enumerates the combinations of a ring set once,
storing them **columnar**: one ``array`` of interned token indices per
ring position (a column-per-ring token-index table) instead of a
row-major ``list[tuple[int, ...]]``.  Rows (`.worlds`) are materialized
lazily only when something actually needs them (``as_dicts``, the
per-candidate ``extend`` fallback, tests).  Two derived structures are
built from the columns:

* ``pair mask`` — for each (ring position, token) pair, a Python int
  whose bit ``w`` is set iff world ``w`` assigns that token to that
  ring.  The worlds consistent with a candidate pair set are then one
  big-integer AND per pair, and
* ``HT masks`` — per target ring, the worlds grouped by the HT of the
  target's assigned token; a candidate determines an HT iff its world
  mask is non-zero and fits inside exactly one HT mask.

Together these replace the seed's memoization-free ``_determined_ht``
world scans with O(|pairs| + |HTs|) big-integer operations, and DTRS
enumeration walks the realizable pair sets directly (pruning any branch
whose partial mask is already zero) instead of re-deriving them from
every world.

The columnar layout is also what the batch kernels
(:mod:`~repro.core.perf.kernels`) consume: ``columns`` /
``token_index`` / ``full_mask`` expose the table so a whole stratum of
candidate rings can be evaluated against one base world set in bulk.

A WorldSet is immutable once built; :meth:`extend` derives the world
set of ``closure = base + [candidate]`` from the base worlds without
re-running the backtracking enumeration — the shared-prefix trick the
BFS solver leans on, since thousands of candidates of a given size
share the same related-ring base.
"""

from __future__ import annotations

import time
from array import array
from itertools import combinations as subset_combinations
from typing import Sequence

from ...obs import events
from ..ring import Ring, TokenUniverse

__all__ = ["WorldSet", "DeadlineExceeded"]

#: How many enumeration steps between deadline checks.
_DEADLINE_STRIDE = 2048

#: array typecode for token-index columns (token universes are small).
_COLUMN_TYPE = "i"


class DeadlineExceeded(RuntimeError):
    """Raised when a deadline passed mid-enumeration (budget threading)."""


class WorldSet:
    """All token-RS combinations of a fixed ring sequence.

    Attributes:
        rings: the ring sequence (positional order is the world layout).
        columns: the columnar table — one ``array`` of token indices per
            ring position; ``columns[p][w]`` is the token ring ``p``
            consumes in world ``w``.
    """

    __slots__ = (
        "rings",
        "columns",
        "_count",
        "_rows",
        "_position_of",
        "_token_names",
        "_token_index",
        "_pair_masks",
        "_tokens_by_position",
        "_full_mask",
        "_dtrs_cache",
    )

    def __init__(
        self,
        rings: Sequence[Ring],
        deadline: float | None = None,
        _columns: tuple[array, ...] | None = None,
        _count: int | None = None,
        _token_names: list[str] | None = None,
    ) -> None:
        self.rings: list[Ring] = list(rings)
        self._position_of = {ring.rid: pos for pos, ring in enumerate(self.rings)}
        if len(self._position_of) != len(self.rings):
            raise ValueError("ring ids must be unique within a world set")
        if _token_names is None:
            names = sorted({token for ring in self.rings for token in ring.tokens})
        else:
            names = _token_names
        self._token_names = names
        self._token_index = {name: idx for idx, name in enumerate(names)}
        if _columns is None:
            self.columns, self._count = self._enumerate(deadline)
            if events.enabled():
                events.emit(
                    events.WorldsBuilt(
                        rings=len(self.rings), worlds=self._count
                    )
                )
        else:
            self.columns = _columns
            self._count = (
                _count if _count is not None
                else (len(_columns[0]) if _columns else 0)
            )
        self._rows: list[tuple[int, ...]] | None = None
        self._pair_masks: dict[tuple[int, int], int] | None = None
        self._tokens_by_position: list[list[int]] | None = None
        self._full_mask = (1 << self._count) - 1
        self._dtrs_cache: dict[tuple[str, int | None], list] = {}

    # -- construction -----------------------------------------------------

    def _enumerate(self, deadline: float | None) -> tuple[tuple[array, ...], int]:
        """Backtracking SDR enumeration, most-constrained rings first."""
        count = len(self.rings)
        candidates = [
            sorted(self._token_index[token] for token in ring.tokens)
            for ring in self.rings
        ]
        order = sorted(range(count), key=lambda i: len(candidates[i]))
        columns = tuple(array(_COLUMN_TYPE) for _ in range(count))
        assignment = [0] * count
        used: set[int] = set()
        steps = 0
        worlds = 0

        def backtrack(depth: int) -> None:
            nonlocal steps, worlds
            steps += 1
            if deadline is not None and steps % _DEADLINE_STRIDE == 0:
                if time.perf_counter() > deadline:
                    raise DeadlineExceeded("world enumeration passed its deadline")
            if depth == count:
                for position in range(count):
                    columns[position].append(assignment[position])
                worlds += 1
                return
            position = order[depth]
            for token in candidates[position]:
                if token in used:
                    continue
                used.add(token)
                assignment[position] = token
                backtrack(depth + 1)
                used.discard(token)

        backtrack(0)
        return columns, (worlds if count else 1)

    def extend(self, candidate: Ring, deadline: float | None = None) -> "WorldSet":
        """The world set of ``self.rings + [candidate]``.

        Every world of the closure is a base world plus one candidate
        token unused in that world, so the closure worlds come straight
        from the base table — no backtracking re-run.  This is exact:
        the candidate occupies the final ring position.
        """
        names = list(self._token_names)
        index = dict(self._token_index)
        for token in sorted(candidate.tokens):
            if token not in index:
                index[token] = len(names)
                names.append(token)
        cand_indices = sorted(index[token] for token in candidate.tokens)

        extended = tuple(array(_COLUMN_TYPE) for _ in range(len(self.rings) + 1))
        emitted = 0
        if not self.rings:
            for idx in cand_indices:
                extended[0].append(idx)
            emitted = len(cand_indices)
        else:
            cand_column = extended[-1]
            base_columns = self.columns
            positions = range(len(base_columns))
            for world in self.worlds:
                used = set(world)
                for idx in cand_indices:
                    if idx in used:
                        continue
                    # The stride counts *emitted* worlds, not base
                    # worlds: a base set with many open candidate
                    # tokens multiplies the output, and the deadline
                    # must track the work actually done.
                    emitted += 1
                    if deadline is not None and emitted % _DEADLINE_STRIDE == 0:
                        if time.perf_counter() > deadline:
                            raise DeadlineExceeded(
                                "world extension passed its deadline"
                            )
                    for position in positions:
                        extended[position].append(world[position])
                    cand_column.append(idx)
        if events.enabled():
            events.emit(events.WorldsExtended(worlds=emitted))
        return WorldSet(
            self.rings + [candidate],
            _columns=extended,
            _count=emitted,
            _token_names=names,
        )

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def worlds(self) -> list[tuple[int, ...]]:
        """Row view of the table (lazy; columns are the primary storage)."""
        if self._rows is None:
            if not self.columns:
                self._rows = [() for _ in range(self._count)]
            else:
                self._rows = list(zip(*self.columns))
        return self._rows

    @property
    def full_mask(self) -> int:
        """Bitmask with one set bit per world."""
        return self._full_mask

    @property
    def token_index(self) -> dict[str, int]:
        """Interning table: token name -> column value (read-only)."""
        return self._token_index

    def token_name(self, index: int) -> str:
        return self._token_names[index]

    def as_dicts(self) -> list[dict[str, str]]:
        """Worlds in the seed's {rid: token} form (tests, debugging)."""
        rids = [ring.rid for ring in self.rings]
        return [
            {rid: self._token_names[idx] for rid, idx in zip(rids, world)}
            for world in self.worlds
        ]

    def pair_masks(self) -> dict[tuple[int, int], int]:
        """(ring position, token index) -> bitmask of consistent worlds."""
        if self._pair_masks is None:
            masks: dict[tuple[int, int], int] = {}
            for position, column in enumerate(self.columns):
                for w, token in enumerate(column):
                    key = (position, token)
                    masks[key] = masks.get(key, 0) | (1 << w)
            self._pair_masks = masks
            by_position: list[list[int]] = [[] for _ in self.rings]
            for position, token in masks:
                by_position[position].append(token)
            for tokens in by_position:
                tokens.sort()
            self._tokens_by_position = by_position
        return self._pair_masks

    def tokens_by_position(self) -> list[list[int]]:
        """Per ring position: the sorted token indices it takes in any world.

        Built alongside :meth:`pair_masks` — the per-position index the
        seed lacked (it linearly scanned every pair-mask entry per
        ``possible_tokens_of`` call).
        """
        if self._tokens_by_position is None:
            self.pair_masks()
        return self._tokens_by_position

    def possible_tokens_of(self, rid: str) -> frozenset[str]:
        """Tokens the ring takes in at least one world (indexed lookup)."""
        position = self._position_of[rid]
        return frozenset(
            self._token_names[token]
            for token in self.tokens_by_position()[position]
        )

    # -- DTRS enumeration (Algorithm 3 on masks) ---------------------------

    def dtrss_of(
        self,
        target_rid: str,
        universe: TokenUniverse,
        max_size: int | None = None,
        deadline: float | None = None,
    ):
        """Minimal DTRSs of ``target_rid`` within this ring set.

        Returns the same set of :class:`~repro.core.dtrs.Dtrs` objects
        as the seed ``get_dtrss`` (order canonicalized: by size, then by
        sorted pairs).  Results are memoized per (target, max_size).
        """
        from ..dtrs import Dtrs

        key = (target_rid, max_size)
        cached = self._dtrs_cache.get(key)
        if cached is not None:
            if events.enabled():
                events.emit(events.DtrsSweep(memo_hit=True, found=len(cached)))
            return list(cached)

        if target_rid not in self._position_of:
            raise ValueError("target ring must be a member of the ring set")
        if not self._count:
            self._dtrs_cache[key] = []
            if events.enabled():
                events.emit(events.DtrsSweep(memo_hit=False, found=0))
            return []

        target_pos = self._position_of[target_rid]
        masks = self.pair_masks()

        # HT masks of the target: worlds grouped by the HT of the
        # target's assigned token.
        ht_masks: dict[str, int] = {}
        for token in self.tokens_by_position()[target_pos]:
            ht = universe.ht_of(self._token_names[token])
            ht_masks[ht] = ht_masks.get(ht, 0) | masks[(target_pos, token)]
        full = self._full_mask

        def determined_ht(mask: int) -> str | None:
            # Memoization lives in the precomputed masks: the check is a
            # couple of big-int ANDs instead of a world scan.
            for ht, ht_mask in ht_masks.items():
                if mask & ~ht_mask == 0:
                    return ht
            return None

        # Per non-target ring: the tokens it takes across worlds, with
        # their masks — the realizable pair universe.
        positions = [pos for pos in range(len(self.rings)) if pos != target_pos]
        pairs_by_position: dict[int, list[tuple[int, int]]] = {
            pos: [
                (token, masks[(pos, token)])
                for token in self.tokens_by_position()[pos]
            ]
            for pos in positions
        }

        cap = len(positions) if max_size is None else min(max_size, len(positions))
        index = _DominanceIndex()
        found: list[tuple[frozenset[tuple[int, int]], str]] = []
        steps = 0

        def check_deadline() -> None:
            nonlocal steps
            steps += 1
            if deadline is not None and steps % _DEADLINE_STRIDE == 0:
                if time.perf_counter() > deadline:
                    raise DeadlineExceeded("DTRS enumeration passed its deadline")

        # Size 0: the empty pair set. If it determines (single HT over
        # all worlds), it dominates everything else — done immediately.
        ht = determined_ht(full)
        if ht is not None:
            result = [Dtrs(pairs=frozenset(), determined_ht=ht)]
            self._dtrs_cache[key] = result
            if events.enabled():
                events.emit(events.DtrsSweep(memo_hit=False, found=1))
            return list(result)

        for size in range(1, cap + 1):
            for chosen_positions in subset_combinations(positions, size):

                def descend(
                    depth: int, mask: int, pairs: tuple[tuple[int, int], ...]
                ) -> None:
                    check_deadline()
                    if mask == 0:
                        return  # unrealizable — no world holds these pairs
                    if depth == size:
                        pair_set = frozenset(pairs)
                        if index.dominated(pair_set):
                            return
                        ht = determined_ht(mask)
                        if ht is not None:
                            index.add(pair_set)
                            found.append((pair_set, ht))
                        return
                    pos = chosen_positions[depth]
                    for token, pair_mask in pairs_by_position[pos]:
                        descend(
                            depth + 1, mask & pair_mask, pairs + ((pos, token),)
                        )

                descend(0, full, ())

        result = [
            Dtrs(
                pairs=frozenset(
                    (self._token_names[token], self.rings[pos].rid)
                    for pos, token in pair_set
                ),
                determined_ht=ht,
            )
            for pair_set, ht in found
        ]
        result.sort(key=lambda d: (len(d.pairs), sorted(d.pairs)))
        self._dtrs_cache[key] = result
        if events.enabled():
            events.emit(events.DtrsSweep(memo_hit=False, found=len(result)))
        return list(result)


class _DominanceIndex:
    """Sublinear ``dominated()`` for minimal-set enumeration.

    Found sets are bucketed by their minimum element; a set ``f`` can
    only dominate ``candidate`` if ``min(f)`` is one of candidate's own
    elements, so the check scans |candidate| small buckets instead of
    the full found list.
    """

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        self._buckets: dict[tuple[int, int], list[frozenset[tuple[int, int]]]] = {}

    def add(self, pairs: frozenset[tuple[int, int]]) -> None:
        anchor = min(pairs)
        self._buckets.setdefault(anchor, []).append(pairs)

    def dominated(self, candidate: frozenset[tuple[int, int]]) -> bool:
        for element in candidate:
            for existing in self._buckets.get(element, ()):
                if existing <= candidate:
                    return True
        return False
