"""The seed implementations of the exact pipeline, frozen.

These are the pre-optimization algorithms exactly as the repository
shipped them: eager world enumeration per ``get_dtrss`` call, a linear
``dominated()`` scan, one full Kuhn matching per possible-token query,
and a BFS whose time budget is only consulted *between* candidates.

They exist for two reasons:

* the equivalence tests assert the optimized solvers return identical
  results (same optimum, same mixins, same ``candidates_checked``);
* the ``BENCH_bfs.json`` benchmark times them as the "before" column so
  the speedup of the perf layer is tracked across PRs.

Do not "fix" or speed these up — their value is being the seed.
"""

from __future__ import annotations

import time
from itertools import combinations as subset_combinations
from typing import Iterable, Mapping, Sequence

from ..combinations import _candidate_lists, enumerate_combinations
from ..diversity import ht_counts_satisfy
from ..dtrs import Dtrs
from ..ring import Ring, TokenUniverse

__all__ = [
    "get_dtrss_reference",
    "has_complete_assignment_reference",
    "possible_consumed_tokens_reference",
    "check_non_eliminated_reference",
    "bfs_select_reference",
]


def get_dtrss_reference(
    target: Ring,
    rings: Sequence[Ring],
    universe: TokenUniverse,
    max_size: int | None = None,
) -> list[Dtrs]:
    """Seed Algorithm 3: eager worlds list + linear dominance scan."""
    if all(ring.rid != target.rid for ring in rings):
        raise ValueError("target ring must be a member of the ring set")

    worlds = list(enumerate_combinations(rings))
    if not worlds:
        return []

    others = [ring for ring in rings if ring.rid != target.rid]
    cap = max_size if max_size is not None else len(others)

    found: list[Dtrs] = []

    def dominated(candidate: frozenset[tuple[str, str]]) -> bool:
        return any(existing.pairs <= candidate for existing in found)

    for size in range(0, cap + 1):
        seen: set[frozenset[tuple[str, str]]] = set()
        for world in worlds:
            other_pairs = [(world[ring.rid], ring.rid) for ring in others]
            for chosen in subset_combinations(other_pairs, size):
                candidate = frozenset(chosen)
                if candidate in seen or dominated(candidate):
                    continue
                seen.add(candidate)
                determined = _determined_ht_reference(
                    candidate, target, worlds, universe
                )
                if determined is not None:
                    found.append(Dtrs(pairs=candidate, determined_ht=determined))
    return found


def _determined_ht_reference(
    candidate: frozenset[tuple[str, str]],
    target: Ring,
    worlds: Iterable[dict[str, str]],
    universe: TokenUniverse,
) -> str | None:
    determined: str | None = None
    matched = False
    for world in worlds:
        if any(world.get(rid) != token for token, rid in candidate):
            continue
        matched = True
        ht = universe.ht_of(world[target.rid])
        if determined is None:
            determined = ht
        elif determined != ht:
            return None
    return determined if matched else None


def has_complete_assignment_reference(
    rings: Sequence[Ring],
    forced: Mapping[str, str] | None = None,
    excluded_tokens: Iterable[str] = (),
) -> bool:
    """Seed polynomial check: fresh Kuhn matching per call."""
    candidates = _candidate_lists(rings, forced, excluded_tokens)
    if candidates is None:
        return False
    match_of_token: dict[str, int] = {}
    order = sorted(range(len(rings)), key=lambda i: len(candidates[i]))

    def try_assign(ring_index: int, visited: set[str]) -> bool:
        for token in candidates[ring_index]:
            if token in visited:
                continue
            visited.add(token)
            holder = match_of_token.get(token)
            if holder is None or try_assign(holder, visited):
                match_of_token[token] = ring_index
                return True
        return False

    for ring_index in order:
        if not try_assign(ring_index, set()):
            return False
    return True


def possible_consumed_tokens_reference(
    target: Ring,
    rings: Sequence[Ring],
    forced: Mapping[str, str] | None = None,
    excluded_tokens: Iterable[str] = (),
) -> frozenset[str]:
    """Seed query: |target| independent full matchings."""
    if all(ring.rid != target.rid for ring in rings):
        raise ValueError("target ring must be a member of the ring set")
    base_forced = dict(forced or {})
    if target.rid in base_forced:
        known = base_forced[target.rid]
        if has_complete_assignment_reference(rings, base_forced, excluded_tokens):
            return frozenset({known})
        return frozenset()
    survivors = set()
    for token in target.tokens:
        base_forced[target.rid] = token
        if has_complete_assignment_reference(rings, base_forced, excluded_tokens):
            survivors.add(token)
    return frozenset(survivors)


def check_non_eliminated_reference(closure: Sequence[Ring]) -> bool:
    """Seed non-eliminated constraint: full sweep per ring."""
    for ring in closure:
        if possible_consumed_tokens_reference(ring, closure) != ring.tokens:
            return False
    return True


def bfs_select_reference(
    instance,
    time_budget: float | None = None,
    max_mixins: int | None = None,
):
    """Seed Algorithm 2: the serial, cache-free BFS.

    Note the seed's budget semantics, preserved deliberately: the clock
    is only consulted between candidates, so one candidate's DTRS sweep
    can overshoot the budget unboundedly (the bug the optimized solver
    fixes by threading a deadline into the per-candidate check).
    """
    from ..bfs import BfsResult, SearchBudgetExceeded
    from ..problem import InfeasibleError

    start = time.perf_counter()
    sigma = sorted(instance.candidate_mixins())
    upper = len(sigma) if max_mixins is None else min(max_mixins, len(sigma))
    lower = max(0, instance.ell - 1)
    checked = 0

    for size in range(lower, upper + 1):
        for mixin_tuple in subset_combinations(sigma, size):
            if time_budget is not None and time.perf_counter() - start > time_budget:
                raise SearchBudgetExceeded(
                    f"exact BFS exceeded {time_budget:.1f}s after {checked} candidates"
                )
            checked += 1
            candidate = instance.make_ring(mixin_tuple)
            if _candidate_feasible_reference(instance, candidate):
                return BfsResult(
                    ring=candidate,
                    mixins=frozenset(mixin_tuple),
                    candidates_checked=checked,
                    elapsed=time.perf_counter() - start,
                )
    raise InfeasibleError(
        f"no feasible ring for token {instance.target_token!r} under "
        f"({instance.c}, {instance.ell})-diversity"
    )


def _candidate_feasible_reference(instance, candidate: Ring) -> bool:
    universe = instance.universe
    if not ht_counts_satisfy(
        universe.ht_counts(candidate.tokens), candidate.c, candidate.ell
    ):
        return False

    related = instance.related_rings(candidate)
    closure = related + [candidate]

    if not check_non_eliminated_reference(closure):
        return False

    for ring in closure:
        for dtrs in get_dtrss_reference(ring, closure, universe):
            if not ht_counts_satisfy(universe.ht_counts(dtrs.tokens), ring.c, ring.ell):
                return False
    return True
