"""Columnar batch kernels for the world-extension / DTRS hot path.

The per-candidate inner loop of Algorithm 2 spends its time in two
places: extending the cached base :class:`~repro.core.perf.worlds.WorldSet`
with the candidate's row (``worlds.extended_worlds`` dominates bench
counters) and sweeping the closure's DTRSs.  But a stratum of the BFS
evaluates *many* candidates against the *same* base world set, and the
extended worlds of candidate τ factorize exactly:

    worlds(base + τ)  =  ⨆_{t ∈ τ}  { (w, t) : w ∈ F_t },
    F_t               =  full & ~presence[t],

where ``presence[t]`` is the bitmask of base worlds already consuming
token ``t``.  Every question the feasibility check asks of the extended
world set is answerable from these per-token *slices* without ever
materializing a single extended world:

* **non-eliminated** — a base ring's (position, token) pair survives the
  extension iff its pair mask intersects ``U = ⋃ F_t``; a candidate
  token ``t`` itself survives iff ``F_t ≠ 0`` (this is exactly the
  closure-SDR-existence semantics of the incremental matcher);
* **HT determination** — for a base-ring target, a pair set with
  combined base mask ``m`` determines HT ``h`` iff ``m & U`` is nonzero
  and fits inside the target's HT mask ``H_h``; adding a candidate-row
  pair ``(τ, t0)`` restricts to the single slice ``m & F_t0``; for the
  candidate-row target the determined HT is the unique ``ht(t)`` among
  the slices the mask touches;
* **DTRS sweep** — minimal determining pair sets enumerated per closure
  target in ascending size directly on the slice masks (the same
  dominance-pruned backtracking as ``WorldSet.dtrss_of``, with a pair
  set represented as a base mask plus at most one candidate slice), and
  *early-exited* at the first violating minimal DTRS.  Infeasible
  candidates — the bulk of every stratum — therefore resolve without
  materializing a single extended world or enumerating past the first
  violation; the rare clean candidate pays the full sweep and earns an
  exact "feasible" verdict.

Verdicts are pure functions of (instance, candidate) — never of chunk
composition or worker placement — so the batched solver emits byte-for-
byte the counters and results of the per-candidate one (pinned by the
equivalence suites).

Two interchangeable backends implement the mask algebra behind one
interface, mirroring the :mod:`~repro.core.perf.reference` equivalence
pattern:

* ``python`` — big-integer bitmasks built from the WorldSet's interned
  pair masks; always available;
* ``numpy`` — boolean arrays built vectorized from the columnar world
  table (install the ``perf`` extra).

Selection happens at import from the ``REPRO_KERNEL_BACKEND`` env var
(``auto`` | ``python`` | ``numpy`` | ``off``); ``off`` disables
batching entirely and the solver runs its original per-candidate loop.
``auto`` picks ``python``: CPython's big-integer ``&``/``|`` on the
few-dozen-world masks the exact pipeline actually reaches beats numpy's
per-operation dispatch overhead by ~5x on the bench ladder — numpy is
the opt-in backend for world sets large enough to amortize it (and the
proof, via the equivalence suite, that the mask algebra is
representation-independent).  Tests switch backends with the
:func:`use_backend` context manager.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import combinations as subset_combinations
from typing import Iterable, Sequence

from ...obs import events
from ..diversity import ht_counts_satisfy
from ..ring import Ring, TokenUniverse
from .worlds import _DEADLINE_STRIDE, DeadlineExceeded, WorldSet

__all__ = [
    "KERNEL_BATCH_SIZE",
    "ENV_BACKEND",
    "KernelBackend",
    "KernelState",
    "Extension",
    "active_backend",
    "active_backend_name",
    "available_backends",
    "resolve_backend",
    "use_backend",
    "prefilter_chunk",
]

#: Candidates per batched pre-filter call.  Matches the parallel
#: fan-out's BFS_CHUNK_SIZE so one worker chunk is one kernel batch.
KERNEL_BATCH_SIZE = 64

#: Environment override for the backend choice, read at import.
ENV_BACKEND = "REPRO_KERNEL_BACKEND"


def _import_numpy():
    try:
        import numpy
    except Exception:  # pragma: no cover - exercised via monkeypatch
        return None
    return numpy


@dataclass(frozen=True, slots=True)
class Extension:
    """One candidate's extended world set, factorized by candidate token.

    ``slices[t]`` masks the base worlds where token ``t`` is free (the
    worlds extended by assigning ``t`` to the candidate row); ``union``
    is their union; ``count`` is the number of extended worlds — equal
    to ``len(base.extend(candidate))`` without materializing any of
    them.
    """

    slices: dict
    union: object
    count: int


class _Row:
    """Per base-ring-position mask bundle of a kernel state."""

    __slots__ = ("ring", "token_masks", "ht_masks", "pairs")

    def __init__(self, ring: Ring, token_masks: dict, ht_masks: dict) -> None:
        self.ring = ring
        self.token_masks = token_masks
        self.ht_masks = ht_masks
        self.pairs = sorted(token_masks.items())


class KernelState:
    """Backend-built columnar masks of one cached base world set.

    Holds, per base ring position, the (token -> world mask) and
    (HT -> world mask) tables, plus the global token-presence masks —
    everything :meth:`verdict_of` needs to resolve a candidate with a
    handful of mask operations.  Mask algebra (``&``, ``|``, ``~``) is
    shared between backends; only ``any_`` (mask non-emptiness),
    ``popcount`` and the builders differ.
    """

    __slots__ = (
        "backend_name",
        "rows",
        "presence",
        "full",
        "zero",
        "worlds_count",
        "any_",
        "popcount",
    )

    def __init__(
        self, backend_name, rows, presence, full, zero, worlds_count, any_, popcount
    ) -> None:
        self.backend_name = backend_name
        self.rows = rows
        self.presence = presence
        self.full = full
        self.zero = zero
        self.worlds_count = worlds_count
        self.any_ = any_
        self.popcount = popcount

    # -- bulk world extension ---------------------------------------------

    def extend_one(self, tokens: Iterable[str]) -> Extension:
        """Factorized extension of the base table by one candidate row."""
        any_ = self.any_
        slices: dict = {}
        union = self.zero
        count = 0
        for name in sorted(tokens):
            held = self.presence.get(name)
            free = self.full if held is None else self.full & ~held
            slices[name] = free
            union = union | free
            if any_(free):
                count += self.popcount(free)
        return Extension(slices=slices, union=union, count=count)

    def extend_batch(self, candidates: Sequence[Iterable[str]]) -> list[Extension]:
        """Extended world sets for many candidate rows in one pass."""
        return [self.extend_one(tokens) for tokens in candidates]

    # -- the batched feasibility pre-sweep --------------------------------

    def verdict_of(
        self,
        universe: TokenUniverse,
        tokens: frozenset[str],
        c: float,
        ell: int,
        deadline: float | None = None,
    ) -> str:
        """Resolve one candidate against the base table.

        Returns ``"eliminated"`` / ``"dtrs"`` (exact infeasibility; the
        gate name matches the per-candidate path's event) or
        ``"feasible"`` (exact; the complete DTRS sweep found no
        violating minimal DTRS for any closure ring).  The candidate's
        own HT gate is the caller's job (it needs no kernel state).

        The sweep enumerates minimal determining pair sets per closure
        target in ascending size on the factorized masks — the size-0/1
        pre-checks and the size-2+ backtracking share one dominance-
        pruned loop — and exits at the *first* violating minimal DTRS,
        which is what makes infeasible candidates (the bulk of a
        stratum) cheap: no extended world is ever materialized and no
        enumeration runs past the violation.

        Raises:
            DeadlineExceeded: the sweep passed ``deadline``.
        """
        any_ = self.any_
        extension = self.extend_one(tokens)
        union = extension.union
        if not any_(union):
            return "eliminated"

        # Non-eliminated over the closure: every base ring keeps every
        # token possible, and every candidate token has a free world.
        for row in self.rows:
            token_masks = row.token_masks
            for name in row.ring.tokens:
                mask = token_masks.get(name)
                if mask is None or not any_(mask & union):
                    return "eliminated"
        for name, free in extension.slices.items():
            if not any_(free):
                return "eliminated"

        # HT grouping of the candidate row's slices (tokens sharing an
        # HT merge — determination is about HTs, not tokens).
        slice_ht: dict[str, object] = {}
        for name, free in extension.slices.items():
            ht = universe.ht_of(name)
            held = slice_ht.get(ht)
            slice_ht[ht] = free if held is None else held | free

        def det_base(row: _Row, mask) -> str | None:
            # mask is already restricted to realizable extended worlds
            # (nonzero, intersected with union or a slice).
            for ht, ht_mask in row.ht_masks.items():
                if not any_(mask & ~ht_mask):
                    return ht
            return None

        def det_cand(mask) -> str | None:
            # Determined HT of the candidate row under a base mask: the
            # unique slice-HT the mask touches (None if zero or many).
            found = None
            for ht, ht_mask in slice_ht.items():
                if any_(mask & ht_mask):
                    if found is not None:
                        return None
                    found = ht
            return found

        def violates(pair_set, ring_c: float, ring_ell: int) -> bool:
            dtrs_tokens = frozenset(name for _, name in pair_set)
            return not ht_counts_satisfy(
                universe.ht_counts(dtrs_tokens), ring_c, ring_ell
            )

        rows = self.rows
        count = len(rows)
        cand_position = count  # pseudo-position id of the candidate row
        slices = extension.slices
        steps = 0

        def check_deadline() -> None:
            nonlocal steps
            steps += 1
            if deadline is not None and steps % _DEADLINE_STRIDE == 0:
                if time.perf_counter() > deadline:
                    raise DeadlineExceeded("kernel DTRS sweep passed its deadline")

        def sweep_target(target_index: int | None, ring_c, ring_ell) -> bool:
            """True iff the target has a violating minimal DTRS.

            ``target_index`` is a base position, or None for the
            candidate row.  Mirrors ``WorldSet.dtrss_of`` — ascending
            size, leaf-level dominance pruning — but on factorized
            masks: a pair-set state is a base mask plus at most one
            candidate-row slice, and it exits at the first violating
            minimal determining set instead of enumerating them all.
            """
            target_row = None if target_index is None else rows[target_index]
            # Size 0: the empty pair set over all extended worlds.  If
            # it determines, the empty DTRS (whose empty HT multiset
            # can never satisfy (c, l)-diversity) is the only one.
            if target_row is None:
                determined = det_cand(self.full)
            else:
                determined = det_base(target_row, union)
            if determined is not None:
                return True
            # Pair universe: the other base rows, plus the candidate
            # row itself when the target is a base ring.
            positions = [
                (index, rows[index].pairs)
                for index in range(count)
                if index != target_index
            ]
            if target_row is not None:
                positions.append((cand_position, sorted(slices.items())))
            buckets: dict[tuple[int, str], list[frozenset]] = {}

            def dominated(pair_set: frozenset) -> bool:
                for element in pair_set:
                    for existing in buckets.get(element, ()):
                        if existing <= pair_set:
                            return True
                return False

            def descend(depth, chosen, base_mask, slice_name, pairs) -> bool:
                check_deadline()
                if depth == len(chosen):
                    pair_set = frozenset(pairs)
                    if dominated(pair_set):
                        return False
                    if target_row is None:
                        determined = det_cand(base_mask)
                    else:
                        mask = base_mask & (
                            union if slice_name is None else slices[slice_name]
                        )
                        determined = det_base(target_row, mask)
                    if determined is None:
                        return False
                    if violates(pair_set, ring_c, ring_ell):
                        return True
                    buckets.setdefault(min(pair_set), []).append(pair_set)
                    return False
                position, position_pairs = chosen[depth]
                if position == cand_position:
                    # A candidate-row pair fixes the slice; the pair is
                    # realizable iff the accumulated base mask still
                    # intersects it.
                    for name, free in position_pairs:
                        restricted = base_mask & free
                        if not any_(restricted):
                            continue
                        if descend(
                            depth + 1, chosen, base_mask, name,
                            pairs + ((position, name),),
                        ):
                            return True
                    return False
                for name, pair_mask in position_pairs:
                    narrowed = base_mask & pair_mask
                    realizable = narrowed & (
                        union if slice_name is None else slices[slice_name]
                    )
                    if not any_(realizable):
                        continue
                    if descend(
                        depth + 1, chosen, narrowed, slice_name,
                        pairs + ((position, name),),
                    ):
                        return True
                return False

            for size in range(1, len(positions) + 1):
                for chosen in subset_combinations(positions, size):
                    if descend(0, chosen, self.full, None, ()):
                        return True
            return False

        if sweep_target(None, c, ell):
            return "dtrs"
        for index, row in enumerate(rows):
            if sweep_target(index, row.ring.c, row.ring.ell):
                return "dtrs"
        return "feasible"


class KernelBackend:
    """One mask-algebra implementation behind the kernel interface."""

    __slots__ = ("name", "_build")

    def __init__(self, name: str, build) -> None:
        self.name = name
        self._build = build

    def build_state(self, worlds: WorldSet, universe: TokenUniverse) -> KernelState:
        return self._build(worlds, universe)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"KernelBackend({self.name!r})"


# -- pure-python backend (big-integer bitmasks) -----------------------------


def _build_state_python(worlds: WorldSet, universe: TokenUniverse) -> KernelState:
    masks = worlds.pair_masks()
    presence: dict[str, int] = {}
    rows: list[_Row] = []
    for position, ring in enumerate(worlds.rings):
        token_masks: dict[str, int] = {}
        ht_masks: dict[str, int] = {}
        for token in worlds.tokens_by_position()[position]:
            mask = masks[(position, token)]
            name = worlds.token_name(token)
            token_masks[name] = mask
            presence[name] = presence.get(name, 0) | mask
            ht = universe.ht_of(name)
            ht_masks[ht] = ht_masks.get(ht, 0) | mask
        rows.append(_Row(ring, token_masks, ht_masks))
    return KernelState(
        backend_name="python",
        rows=rows,
        presence=presence,
        full=worlds.full_mask,
        zero=0,
        worlds_count=len(worlds),
        any_=lambda mask: mask != 0,
        popcount=lambda mask: mask.bit_count(),
    )


# -- numpy backend (vectorized boolean columns) -----------------------------


def _build_state_numpy(worlds: WorldSet, universe: TokenUniverse) -> KernelState:
    np = _import_numpy()
    assert np is not None, "numpy backend built without numpy importable"
    count = len(worlds)
    full = np.ones(count, dtype=bool)
    zero = np.zeros(count, dtype=bool)
    presence: dict[str, object] = {}
    rows: list[_Row] = []
    for position, ring in enumerate(worlds.rings):
        column = np.frombuffer(worlds.columns[position], dtype=np.intc)
        token_masks: dict[str, object] = {}
        ht_masks: dict[str, object] = {}
        for token in np.unique(column).tolist():
            mask = column == token
            name = worlds.token_name(token)
            token_masks[name] = mask
            held = presence.get(name)
            presence[name] = mask if held is None else held | mask
            ht = universe.ht_of(name)
            held = ht_masks.get(ht)
            ht_masks[ht] = mask if held is None else held | mask
        rows.append(_Row(ring, token_masks, ht_masks))
    return KernelState(
        backend_name="numpy",
        rows=rows,
        presence=presence,
        full=full,
        zero=zero,
        worlds_count=count,
        any_=lambda mask: bool(mask.any()),
        popcount=lambda mask: int(mask.sum()),
    )


PYTHON_BACKEND = KernelBackend("python", _build_state_python)
NUMPY_BACKEND = KernelBackend("numpy", _build_state_numpy)


def available_backends() -> list[str]:
    """Backend names importable in this interpreter."""
    names = ["python"]
    if _import_numpy() is not None:
        names.append("numpy")
    return names


def resolve_backend(name: str | None = None) -> KernelBackend | None:
    """Map a backend name (or the env override) to a backend, None = off.

    Raises:
        RuntimeError: ``numpy`` was requested explicitly but is not
            importable (install the ``perf`` extra).
        ValueError: unknown backend name.
    """
    if name is None:
        name = os.environ.get(ENV_BACKEND, "auto")
    name = name.strip().lower() or "auto"
    if name == "off":
        return None
    if name == "python":
        return PYTHON_BACKEND
    if name == "numpy":
        if _import_numpy() is None:
            raise RuntimeError(
                "REPRO_KERNEL_BACKEND=numpy but numpy is not importable; "
                "install the 'perf' extra (pip install .[perf]) or choose "
                "'python'/'auto'"
            )
        return NUMPY_BACKEND
    if name == "auto":
        # Measured on the bench ladder: big-int masks win at the world
        # counts the exact pipeline reaches; numpy stays explicit.
        return PYTHON_BACKEND
    raise ValueError(
        f"unknown kernel backend {name!r} (expected auto|python|numpy|off)"
    )


_ACTIVE: KernelBackend | None = resolve_backend()


def active_backend() -> KernelBackend | None:
    """The process-wide backend (None when batching is off)."""
    return _ACTIVE


def active_backend_name() -> str:
    return "off" if _ACTIVE is None else _ACTIVE.name


@contextmanager
def use_backend(name: str | None):
    """Temporarily select a backend by name (tests, benchmarks)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = resolve_backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def prefilter_chunk(
    instance,
    cache,
    chunk: Sequence[tuple[str, ...]],
    deadline: float | None = None,
    backend: KernelBackend | None = None,
) -> list[str] | None:
    """Batched verdicts for one stratum chunk of mixin tuples.

    Returns a verdict per chunk entry (``"ht"`` | ``"eliminated"`` |
    ``"dtrs"`` | ``"feasible"``), aligned with ``chunk`` — or ``None``
    when batching is off or the kernel tripped the deadline mid-chunk
    (the caller's per-candidate loop then re-raises the trip at the
    right candidate).

    Each verdict depends only on (instance, candidate): the serial
    solver and every parallel worker compute identical verdicts for a
    candidate no matter how the stream was chunked, which is what keeps
    counters and results byte-identical across worker counts.
    """
    if backend is None:
        backend = _ACTIVE
    if backend is None:
        return None
    universe = instance.universe
    target = instance.target_token
    c, ell = instance.c, instance.ell
    verdicts: list[str] = []
    try:
        for mixin_tuple in chunk:
            tokens = frozenset(mixin_tuple) | {target}
            if not ht_counts_satisfy(universe.ht_counts(tokens), c, ell):
                verdicts.append("ht")
                continue
            key = cache.related_key(tokens)
            state = cache.kernel_state(key, backend, deadline=deadline)
            verdicts.append(
                state.verdict_of(universe, tokens, c, ell, deadline=deadline)
            )
    except DeadlineExceeded:
        return None
    if events.enabled():
        events.emit(
            events.KernelBatchScanned(
                candidates=len(chunk), resolved=len(verdicts), backend=backend.name
            )
        )
    return verdicts
