"""Incremental bipartite matching for possible-consumed-token queries.

The seed answered "can ring r consume token t in some valid world?" by
running a *fresh* Kuhn maximum-matching from scratch for every (r, t)
pair — |r| full matchings per ring, for every ring of every closure.

The classic alternating-path fact makes that redundant: given one
complete matching M, the edge (r, t) belongs to *some* complete
matching iff t = M(r), or re-matching the current holder of t (with r
pinned to t and t banned) succeeds — a single augmenting-path repair.
So this class computes one matching per ring set and answers every
query with one repair, turning the per-closure cost from
O(rings² · edges) into O(edges) amortized per query.

A successful repair leaves a *different* complete matching, which is
just as good a base for the next query, so queries mutate the matching
opportunistically and never need to restore state (Kuhn's ``try_assign``
only commits assignments on success, so a failed repair is side-effect
free).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ...obs import metrics
from ..ring import Ring

__all__ = ["IncrementalMatcher"]


class IncrementalMatcher:
    """One maximum matching over a ring set, repaired per query.

    Args:
        rings: the ring set (order fixes nothing; rids must be unique).
        forced: known {rid: token} pairs — each shrinks its ring's
            candidate list to the single forced token.
        excluded_tokens: tokens consumed outside this ring set.
    """

    __slots__ = (
        "_rings",
        "_index_of",
        "_candidates",
        "_match_of_token",
        "_match_of_ring",
        "_complete",
        "_rec",
    )

    def __init__(
        self,
        rings: Sequence[Ring],
        forced: Mapping[str, str] | None = None,
        excluded_tokens: Iterable[str] = (),
    ) -> None:
        from ..combinations import _candidate_lists

        self._rings = list(rings)
        self._index_of = {ring.rid: i for i, ring in enumerate(self._rings)}
        candidates = _candidate_lists(self._rings, forced, excluded_tokens)
        self._candidates: list[list[str]] = candidates or []
        self._match_of_token: dict[str, int] = {}
        self._match_of_ring: dict[int, str] = {}
        # Queries are the hottest instrumented site in the repo, so the
        # recorder is captured once here (matchers are short-lived and
        # built after any recorder is installed) — per-query disabled
        # cost is one attribute load + None check.
        self._rec = metrics.active()
        self._complete = candidates is not None and self._build()
        if self._rec is not None:
            self._rec.count("matcher.built")

    # -- base matching ----------------------------------------------------

    def _build(self) -> bool:
        order = sorted(
            range(len(self._rings)), key=lambda i: len(self._candidates[i])
        )
        for ring_index in order:
            if not self._try_assign(ring_index, set()):
                return False
        return True

    def _try_assign(
        self, ring_index: int, visited: set[str], banned_ring: int | None = None
    ) -> bool:
        for token in self._candidates[ring_index]:
            if token in visited:
                continue
            visited.add(token)
            holder = self._match_of_token.get(token)
            if holder is not None and holder == banned_ring:
                continue
            if holder is None or self._try_assign(holder, visited, banned_ring):
                self._match_of_token[token] = ring_index
                self._match_of_ring[ring_index] = token
                return True
        return False

    @property
    def complete(self) -> bool:
        """True iff the ring set admits a complete token-RS combination."""
        return self._complete

    # -- queries ----------------------------------------------------------

    def can_consume(self, rid: str, token: str) -> bool:
        """Is ring ``rid`` -> ``token`` part of some complete combination?"""
        rec = self._rec
        if rec is not None:
            rec.count("matcher.queries")
        if not self._complete:
            return False
        ring_index = self._index_of[rid]
        if token not in self._candidates[ring_index]:
            return False
        if self._match_of_ring.get(ring_index) == token:
            return True
        holder = self._match_of_token.get(token)
        # Pin ring -> token; the displaced old token of the ring frees up.
        old_token = self._match_of_ring[ring_index]
        if holder is None:
            # The token was unmatched: take it, matching stays complete.
            del self._match_of_token[old_token]
            self._match_of_token[token] = ring_index
            self._match_of_ring[ring_index] = token
            return True
        # Re-match the holder with ``token`` banned and the pinned ring
        # excluded from repairs.  On success adopt the new matching; a
        # failed repair leaves everything untouched.
        if rec is not None:
            rec.count("matcher.repairs")
        self._match_of_token[token] = ring_index
        del self._match_of_token[old_token]
        if self._try_assign(holder, {token}, banned_ring=ring_index):
            self._match_of_ring[ring_index] = token
            return True
        self._match_of_token[token] = holder
        self._match_of_token[old_token] = ring_index
        if rec is not None:
            rec.count("matcher.repair_failures")
        return False

    def possible_tokens(self, rid: str) -> frozenset[str]:
        """All tokens the ring can consume in some complete combination.

        Matches the seed ``possible_consumed_tokens`` semantics: a
        forced ring's only possible token is its forced one (provided
        the system is satisfiable at all).
        """
        ring_index = self._index_of[rid]
        return frozenset(
            token
            for token in self._candidates[ring_index]
            if self.can_consume(rid, token)
        ) if self._complete else frozenset()

    def non_eliminated(self, rid: str) -> bool:
        """Does the ring keep *all* its tokens possible? (early exit)"""
        if not self._complete:
            return False
        ring = self._rings[self._index_of[rid]]
        candidates = self._candidates[self._index_of[rid]]
        if len(candidates) != len(ring.tokens):
            return False  # some token excluded/forced away entirely
        return all(self.can_consume(rid, token) for token in candidates)
