"""Per-instance memoization for the exact BFS pipeline.

Every candidate mixin set of a given size walks the same three steps:
find the related-ring closure, check non-elimination, sweep the DTRSs
of every closure ring.  Across the thousands of candidates the BFS
enumerates, almost all of that work is shared:

* the related set of a candidate is exactly the union of the connected
  components (token-overlap graph) its tokens touch — computed once
  per instance, the per-candidate lookup is O(|candidate|);
* the token-RS combinations of the *existing* related rings — the
  expensive backtracking enumeration — depend only on which components
  are touched, so each distinct component set's :class:`WorldSet` is
  built once and every candidate extends it with its own row
  (:meth:`WorldSet.extend`, linear in the output);
* likewise one complete base matching per component set seeds the
  :class:`IncrementalMatcher` of every candidate's closure.

Fingerprints are frozensets of component ids (equivalently: the frozen
rids + token sets of the related rings, which the components determine
uniquely within one instance).  Cache hits/misses are counted so tests
and benchmarks can assert the sharing actually happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ...obs import events
from ...resilience import faults
from ..ring import Ring, TokenUniverse
from .worlds import WorldSet

__all__ = ["SolverCache", "CacheStats", "CacheAdvance"]


@dataclass(slots=True)
class CacheStats:
    """Observable cache behavior (asserted by tests, reported by benches)."""

    related_queries: int = 0
    worlds_hits: int = 0
    worlds_misses: int = 0
    kernel_builds: int = 0

    @property
    def worlds_queries(self) -> int:
        return self.worlds_hits + self.worlds_misses


@dataclass(slots=True)
class CacheAdvance:
    """What one :meth:`SolverCache.advance` kept and dropped.

    Attributes:
        touched_components: component ids the new ring's tokens hit
            (empty when the ring opened a fresh component).
        worlds_retained / worlds_invalidated: cached :class:`WorldSet`
            entries carried into / dropped from the advanced cache.
        kernel_retained / kernel_invalidated: same for kernel states.
    """

    touched_components: frozenset[int] = frozenset()
    worlds_retained: int = 0
    worlds_invalidated: int = 0
    kernel_retained: int = 0
    kernel_invalidated: int = 0


@dataclass(slots=True)
class _Component:
    """One connected component of the token-overlap graph."""

    cid: int
    ring_indices: list[int] = field(default_factory=list)


class SolverCache:
    """Shared-work cache for one :class:`~repro.core.problem.DamsInstance`.

    Args:
        universe: the instance's token universe.
        rings: the previously proposed rings (the instance's history).
    """

    def __init__(self, universe: TokenUniverse, rings: Sequence[Ring]) -> None:
        self.universe = universe
        self.rings = list(rings)
        self.stats = CacheStats()
        self._component_of_token: dict[str, int] = {}
        self._components: list[_Component] = []
        self._build_components()
        self._worlds: dict[frozenset[int], WorldSet] = {}
        # (key, backend name) -> (source WorldSet, KernelState).  Keyed
        # by WorldSet identity so a chaos-dropped worlds entry also
        # invalidates the kernel state derived from it.
        self._kernel_states: dict[
            tuple[frozenset[int], str], tuple[WorldSet, object]
        ] = {}

    # -- component decomposition ------------------------------------------

    def _build_components(self) -> None:
        # Union-find over ring indices, linked through shared tokens.
        parent = list(range(len(self.rings)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri

        first_ring_of_token: dict[str, int] = {}
        for index, ring in enumerate(self.rings):
            for token in ring.tokens:
                owner = first_ring_of_token.setdefault(token, index)
                if owner != index:
                    union(owner, index)

        cid_of_root: dict[int, int] = {}
        for index in range(len(self.rings)):
            root = find(index)
            cid = cid_of_root.get(root)
            if cid is None:
                cid = len(self._components)
                cid_of_root[root] = cid
                self._components.append(_Component(cid=cid))
            self._components[cid].ring_indices.append(index)
        for token, owner in first_ring_of_token.items():
            self._component_of_token[token] = cid_of_root[find(owner)]

    # -- incremental advance ----------------------------------------------

    def advance(self, ring: Ring) -> tuple["SolverCache", CacheAdvance]:
        """A new cache for ``rings + [ring]`` keeping every untouched entry.

        The token-overlap components the new ring's tokens do *not*
        reach are left byte-for-byte alone by an append: their ring
        lists, related closures and hence their cached
        :class:`WorldSet`/kernel-state entries are still exact, so they
        are carried into the new cache (Thm 6.1's locality made
        operational).  Entries whose component-set key intersects a
        touched component are dropped — those closures gained a ring.

        ``self`` is not mutated: requests still in flight against the
        old snapshot keep solving against the old cache.  Shared
        :class:`WorldSet` objects are safe to alias — their content is
        a pure function of the ring list they were built from.

        Returns the advanced cache and a :class:`CacheAdvance` report.
        """
        new = SolverCache.__new__(SolverCache)
        new.universe = self.universe
        new.rings = self.rings + [ring]
        new.stats = CacheStats()
        new._component_of_token = dict(self._component_of_token)
        new._components = [
            _Component(cid=comp.cid, ring_indices=list(comp.ring_indices))
            for comp in self._components
        ]
        touched = frozenset(
            cid
            for token in ring.tokens
            if (cid := new._component_of_token.get(token)) is not None
        )
        index = len(self.rings)
        if not touched:
            cid = len(new._components)
            new._components.append(_Component(cid=cid, ring_indices=[index]))
            for token in ring.tokens:
                new._component_of_token[token] = cid
        else:
            target = min(touched)
            merged = new._components[target]
            for cid in sorted(touched - {target}):
                vacated = new._components[cid]
                merged.ring_indices.extend(vacated.ring_indices)
                vacated.ring_indices = []
            merged.ring_indices.append(index)
            if len(touched) > 1:
                for token, cid in new._component_of_token.items():
                    if cid in touched:
                        new._component_of_token[token] = target
            for token in ring.tokens:
                new._component_of_token[token] = target
        # Solver threads may still be filling this (old) cache while a
        # commit thread advances it: filter atomic snapshots (dict.copy
        # holds the GIL for the whole copy) rather than iterating the
        # live dicts, which would race those inserts/pops and raise
        # "dictionary changed size during iteration".  Entries landing
        # after the copy are merely cold misses in the new cache.
        worlds_snapshot = self._worlds.copy()
        kernel_snapshot = self._kernel_states.copy()
        new._worlds = {
            key: worlds
            for key, worlds in worlds_snapshot.items()
            if key.isdisjoint(touched)
        }
        new._kernel_states = {
            state_key: entry
            for state_key, entry in kernel_snapshot.items()
            if state_key[0].isdisjoint(touched)
        }
        report = CacheAdvance(
            touched_components=touched,
            worlds_retained=len(new._worlds),
            worlds_invalidated=len(worlds_snapshot) - len(new._worlds),
            kernel_retained=len(new._kernel_states),
            kernel_invalidated=len(kernel_snapshot) - len(new._kernel_states),
        )
        return new, report

    # -- related-ring closures --------------------------------------------

    def related_key(self, tokens: Iterable[str]) -> frozenset[int]:
        """The component-set fingerprint a candidate's tokens touch."""
        self.stats.related_queries += 1
        return frozenset(
            cid
            for token in tokens
            if (cid := self._component_of_token.get(token)) is not None
        )

    def related_rings(self, key: frozenset[int]) -> list[Ring]:
        """The related RS set (Definition 1) for a component-set key.

        Identical to :func:`~repro.core.ring.related_ring_set` — the
        fixpoint of token-overlap is exactly the union of the touched
        components — including the original ring order.
        """
        indices = sorted(
            index for cid in key for index in self._components[cid].ring_indices
        )
        return [self.rings[index] for index in indices]

    # -- shared world prefixes --------------------------------------------

    def worlds_keys(self) -> tuple[tuple[int, ...], ...]:
        """The cached world keys, canonically ordered (for checkpoints)."""
        return tuple(sorted(tuple(sorted(key)) for key in self._worlds))

    def base_worlds(self, key: frozenset[int], deadline: float | None = None) -> WorldSet:
        """The (cached) WorldSet of the related rings under ``key``."""
        plan = faults.active()
        if plan is not None and plan.check("cache.worlds") is not None:
            # Cooperative corruption: drop the cached entry so the world
            # set is rebuilt from the rings — correctness must not
            # depend on a cache hit.
            self._worlds.pop(key, None)
        worlds = self._worlds.get(key)
        if worlds is None:
            self.stats.worlds_misses += 1
            if events.enabled():
                events.emit(events.CacheWorldsLookup(hit=False))
            worlds = WorldSet(self.related_rings(key), deadline=deadline)
            self._worlds[key] = worlds
        else:
            self.stats.worlds_hits += 1
            if events.enabled():
                events.emit(events.CacheWorldsLookup(hit=True))
        return worlds

    def kernel_state(
        self, key: frozenset[int], backend, deadline: float | None = None
    ):
        """The (cached) batch-kernel state of the base worlds under ``key``.

        Routes through :meth:`base_worlds` every call — the state is
        derived data, so it must follow the worlds entry through cache
        chaos: a corrupted/dropped worlds entry yields a fresh
        :class:`WorldSet` and therefore a rebuilt state.
        """
        worlds = self.base_worlds(key, deadline=deadline)
        state_key = (key, backend.name)
        entry = self._kernel_states.get(state_key)
        if entry is not None and entry[0] is worlds:
            return entry[1]
        self.stats.kernel_builds += 1
        state = backend.build_state(worlds, self.universe)
        self._kernel_states[state_key] = (worlds, state)
        if events.enabled():
            events.emit(
                events.KernelStateBuilt(
                    rings=len(worlds.rings),
                    worlds=len(worlds),
                    backend=backend.name,
                )
            )
        return state

    def closure_worlds(
        self, candidate: Ring, deadline: float | None = None
    ) -> tuple[list[Ring], WorldSet]:
        """(related rings, WorldSet of related + candidate) for a candidate."""
        key = self.related_key(candidate.tokens)
        base = self.base_worlds(key, deadline=deadline)
        return base.rings, base.extend(candidate, deadline=deadline)
