"""Shared selector interface and result type for all DA-MS algorithms.

Every mixin-selection algorithm — exact BFS, Progressive, Game-theoretic
and the two baselines — is exposed behind one callable signature so the
TokenMagic framework and the experiment harness can swap them freely
(the paper's TM_B / TM_P / TM_G / TM_S / TM_R variants).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

from .modules import Module, ModuleUniverse
from .ring import TokenUniverse

__all__ = ["SelectionResult", "Selector", "SELECTORS", "register_selector", "get_selector"]


@dataclass(frozen=True, slots=True)
class SelectionResult:
    """Outcome of one mixin selection.

    Attributes:
        tokens: the full ring token set (target token included).
        target_token: the consumed token the ring was built for.
        modules: module ids combined into the ring (empty for BFS,
            which works token-by-token).
        elapsed: wall-clock seconds the selection took.
        algorithm: name of the selector that produced it.
    """

    tokens: frozenset[str]
    target_token: str
    modules: tuple[str, ...] = ()
    elapsed: float = 0.0
    algorithm: str = ""

    @property
    def size(self) -> int:
        return len(self.tokens)

    @property
    def mixins(self) -> frozenset[str]:
        return self.tokens - {self.target_token}


class Selector(Protocol):
    """A mixin-selection algorithm under the practical configurations."""

    def __call__(
        self,
        modules: ModuleUniverse,
        target_token: str,
        c: float,
        ell: int,
        rng: random.Random | None = None,
    ) -> SelectionResult:
        """Build a ring consuming ``target_token`` meeting (c, ell)-diversity."""
        ...  # pragma: no cover - protocol


#: Registry of named selectors, filled by the algorithm modules.
SELECTORS: dict[str, Selector] = {}


def register_selector(name: str) -> Callable[[Selector], Selector]:
    """Decorator registering a selector under ``name`` (e.g. "progressive")."""

    def wrap(function: Selector) -> Selector:
        SELECTORS[name] = function
        return function

    return wrap


def get_selector(name: str) -> Selector:
    """Look up a registered selector by name.

    Raises:
        KeyError: with the known names listed, if ``name`` is unknown.
    """
    try:
        return SELECTORS[name]
    except KeyError:
        known = ", ".join(sorted(SELECTORS))
        raise KeyError(f"unknown selector {name!r}; known: {known}") from None


@dataclass(slots=True)
class _Accumulator:
    """Mutable ring-under-construction state shared by the greedy phases."""

    universe: TokenUniverse
    tokens: set[str] = field(default_factory=set)
    module_ids: list[str] = field(default_factory=list)

    def add(self, module: Module) -> None:
        self.tokens |= module.tokens
        self.module_ids.append(module.mid)

    def remove(self, module: Module) -> None:
        self.tokens -= module.tokens
        self.module_ids.remove(module.mid)


def timed(fn: Callable[[], frozenset[str]]) -> tuple[frozenset[str], float]:
    """Run a selection body and measure elapsed wall-clock seconds."""
    start = time.perf_counter()
    tokens = fn()
    return tokens, time.perf_counter() - start
