"""The abstract ring-signature and token-universe data model.

Section 2.1 of the paper: "we simply consider a RS as a set of tokens
consisting of a consuming token and its mixins."  This module defines
that abstraction — :class:`Ring` — plus :class:`TokenUniverse`, the
(token -> historical transaction) map every diversity computation needs,
and the related-RS-set computation of Definition 1.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = ["Ring", "TokenUniverse", "related_ring_set", "RingSet"]


@dataclass(frozen=True, slots=True)
class Ring:
    """A ring signature viewed as a set of tokens (Section 2.1).

    Attributes:
        rid: unique ring identifier (assignment order on chain).
        tokens: the token ids in the ring (consumed token + mixins).
        c: the ``c`` of the claimed recursive (c, l)-diversity requirement.
        ell: the ``l`` of the claimed requirement.
        seq: proposal order; lower = proposed earlier (the paper's
            timestamp pi).  Used by the super-RS rule of Definition 7.
    """

    rid: str
    tokens: frozenset[str]
    c: float = 1.0
    ell: int = 1
    seq: int = 0

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError(f"ring {self.rid!r} is empty")
        if self.c <= 0:
            raise ValueError("diversity parameter c must be positive")
        if self.ell < 1:
            raise ValueError("diversity parameter l must be >= 1")

    def __len__(self) -> int:
        return len(self.tokens)

    def __contains__(self, token: str) -> bool:
        return token in self.tokens

    def intersects(self, other: "Ring") -> bool:
        return not self.tokens.isdisjoint(other.tokens)


class TokenUniverse:
    """Maps every token to the historical transaction (HT) that output it.

    This is the mixin universe ``T`` of the paper: the algorithms only
    ever need each token's HT label to evaluate recursive diversity.
    """

    def __init__(self, token_to_ht: Mapping[str, str] | None = None) -> None:
        self._token_to_ht: dict[str, str] = dict(token_to_ht or {})
        self._ht_to_tokens: dict[str, set[str]] = defaultdict(set)
        for token, ht in self._token_to_ht.items():
            self._ht_to_tokens[ht].add(token)

    # -- construction ---------------------------------------------------

    def add(self, token: str, ht: str) -> None:
        """Register a token output by historical transaction ``ht``."""
        existing = self._token_to_ht.get(token)
        if existing is not None and existing != ht:
            raise ValueError(f"token {token!r} already registered under HT {existing!r}")
        self._token_to_ht[token] = ht
        self._ht_to_tokens[ht].add(token)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._token_to_ht)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_ht

    def __iter__(self) -> Iterator[str]:
        return iter(self._token_to_ht)

    @property
    def tokens(self) -> frozenset[str]:
        return frozenset(self._token_to_ht)

    @property
    def hts(self) -> frozenset[str]:
        return frozenset(self._ht_to_tokens)

    def ht_of(self, token: str) -> str:
        """The historical transaction that output ``token``."""
        try:
            return self._token_to_ht[token]
        except KeyError:
            raise KeyError(f"unknown token {token!r}") from None

    def tokens_of_ht(self, ht: str) -> frozenset[str]:
        return frozenset(self._ht_to_tokens.get(ht, ()))

    def ht_counts(self, tokens: Iterable[str]) -> Counter[str]:
        """Multiset of HT labels for ``tokens`` (the paper's sensitive values)."""
        return Counter(self._token_to_ht[token] for token in tokens)

    def restricted_to(self, tokens: Iterable[str]) -> "TokenUniverse":
        """A sub-universe containing only ``tokens`` (a TokenMagic batch)."""
        subset = set(tokens)
        return TokenUniverse({t: ht for t, ht in self._token_to_ht.items() if t in subset})


@dataclass(slots=True)
class RingSet:
    """An ordered collection of rings over one universe, indexed by token.

    Keeps the token -> rings inverted index that Definition 1 (related RS
    sets) and the TokenMagic neighbor sets both need.
    """

    rings: list[Ring] = field(default_factory=list)
    _by_token: dict[str, list[Ring]] = field(default_factory=lambda: defaultdict(list))

    def __post_init__(self) -> None:
        rings = list(self.rings)
        self.rings = []
        self._by_token = defaultdict(list)
        for ring in rings:
            self.add(ring)

    def add(self, ring: Ring) -> None:
        self.rings.append(ring)
        for token in ring.tokens:
            self._by_token[token].append(ring)

    def __len__(self) -> int:
        return len(self.rings)

    def __iter__(self) -> Iterator[Ring]:
        return iter(self.rings)

    def rings_containing(self, token: str) -> list[Ring]:
        return list(self._by_token.get(token, ()))

    def tokens_in_rings(self) -> frozenset[str]:
        return frozenset(self._by_token)


def related_ring_set(target: Ring | frozenset[str], rings: Iterable[Ring]) -> list[Ring]:
    """The related RS set of Definition 1.

    Starting from the rings sharing a token with ``target``, repeatedly
    add rings sharing a token with anything already included, until a
    fixpoint.  Rings are returned in their original order.

    Args:
        target: the ring (or bare token set) whose related set is wanted.
        rings: the previously proposed rings to search.
    """
    tokens = target.tokens if isinstance(target, Ring) else frozenset(target)
    pool = list(rings)
    frontier_tokens = set(tokens)
    included: dict[str, Ring] = {}
    changed = True
    while changed:
        changed = False
        for ring in pool:
            if ring.rid in included:
                continue
            if not frontier_tokens.isdisjoint(ring.tokens):
                included[ring.rid] = ring
                frontier_tokens |= ring.tokens
                changed = True
    return [ring for ring in pool if ring.rid in included]
