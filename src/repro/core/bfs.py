"""The exact breadth-first-search solver for DA-MS — Algorithm 2.

Searches candidate mixin sets in ascending size order (sizes start at
l_tau - 1 since at least l_tau distinct HTs are needed), so the first
candidate passing all three constraints is a minimum-cardinality
optimum.  The per-candidate checks mirror the paper:

1. the candidate's own HT multiset must satisfy (c, l)-diversity
   (cheap; done first to prune),
2. the non-eliminated constraint over the closure,
3. every ring in the closure — existing rings under their own claimed
   (c_k, l_k), the candidate under (c_tau, l_tau) — must have all its
   DTRSs diversity-compliant.

The search space is O(2^n) candidates and the DTRS check is itself
exponential (Theorem 3.1 says no better exact method is expected);
Figure 4 of the paper measures exactly this blow-up and so does the
``bench_fig04_bfs_scaling`` benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import combinations as subset_combinations

from .diversity import ht_counts_satisfy
from .dtrs import get_dtrss
from .problem import (
    DamsInstance,
    InfeasibleError,
    check_non_eliminated_constraint,
)
from .ring import Ring

__all__ = ["BfsResult", "bfs_select", "SearchBudgetExceeded"]


class SearchBudgetExceeded(RuntimeError):
    """Raised when the exact search exceeds its time/node budget."""


@dataclass(frozen=True, slots=True)
class BfsResult:
    """Outcome of the exact search.

    Attributes:
        ring: the optimal ring (target token + minimal mixins).
        mixins: the chosen mixin set.
        candidates_checked: number of candidate rings examined.
        elapsed: wall-clock seconds spent.
    """

    ring: Ring
    mixins: frozenset[str]
    candidates_checked: int
    elapsed: float


def bfs_select(
    instance: DamsInstance,
    time_budget: float | None = None,
    max_mixins: int | None = None,
) -> BfsResult:
    """Run Algorithm 2 on ``instance`` and return the optimal ring.

    Args:
        instance: the DA-MS instance.
        time_budget: optional wall-clock cap in seconds; exceeding it
            raises :class:`SearchBudgetExceeded` (the paper's Figure 4
            run hit 2 hours for the 8th RS — callers need a guard).
        max_mixins: optional cap on the mixin-set size to search.

    Raises:
        InfeasibleError: the full search space holds no feasible ring.
        SearchBudgetExceeded: the time budget ran out first.
    """
    start = time.perf_counter()
    sigma = sorted(instance.candidate_mixins())
    upper = len(sigma) if max_mixins is None else min(max_mixins, len(sigma))
    lower = max(0, instance.ell - 1)
    checked = 0

    for size in range(lower, upper + 1):
        for mixin_tuple in subset_combinations(sigma, size):
            if time_budget is not None and time.perf_counter() - start > time_budget:
                raise SearchBudgetExceeded(
                    f"exact BFS exceeded {time_budget:.1f}s after {checked} candidates"
                )
            checked += 1
            candidate = instance.make_ring(mixin_tuple)
            if _candidate_feasible(instance, candidate):
                return BfsResult(
                    ring=candidate,
                    mixins=frozenset(mixin_tuple),
                    candidates_checked=checked,
                    elapsed=time.perf_counter() - start,
                )
    raise InfeasibleError(
        f"no feasible ring for token {instance.target_token!r} under "
        f"({instance.c}, {instance.ell})-diversity"
    )


def _candidate_feasible(instance: DamsInstance, candidate: Ring) -> bool:
    """Lines 5-22 of Algorithm 2 for a single candidate ring."""
    universe = instance.universe
    # Line 6-8: the candidate's own HT multiset first — cheapest filter.
    if not ht_counts_satisfy(
        universe.ht_counts(candidate.tokens), candidate.c, candidate.ell
    ):
        return False

    related = instance.related_rings(candidate)
    closure = related + [candidate]

    # Lines 9-16: non-eliminated over the closure.
    if not check_non_eliminated_constraint(closure):
        return False

    # Lines 17-22: every ring's DTRSs must satisfy that ring's own
    # claimed requirement (the candidate's is (c_tau, l_tau)).
    for ring in closure:
        for dtrs in get_dtrss(ring, closure, universe):
            if not ht_counts_satisfy(universe.ht_counts(dtrs.tokens), ring.c, ring.ell):
                return False
    return True
