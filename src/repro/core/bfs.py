"""The exact breadth-first-search solver for DA-MS — Algorithm 2.

Searches candidate mixin sets in ascending size order (sizes start at
l_tau - 1 since at least l_tau distinct HTs are needed), so the first
candidate passing all three constraints is a minimum-cardinality
optimum.  The per-candidate checks mirror the paper:

1. the candidate's own HT multiset must satisfy (c, l)-diversity
   (cheap; done first to prune),
2. the non-eliminated constraint over the closure,
3. every ring in the closure — existing rings under their own claimed
   (c_k, l_k), the candidate under (c_tau, l_tau) — must have all its
   DTRSs diversity-compliant.

The search space is O(2^n) candidates and the DTRS check is itself
exponential (Theorem 3.1 says no better exact method is expected);
Figure 4 of the paper measures exactly this blow-up and so does the
``bench_fig04_bfs_scaling`` benchmark.

What changed versus the seed solver (kept verbatim as
:func:`repro.core.perf.reference.bfs_select_reference`, with the
equivalence test suite proving identical output):

* a per-instance :class:`~repro.core.perf.SolverCache` shares the
  related-ring closures and the base token-RS world enumerations across
  all candidates of the search;
* the non-eliminated constraint runs on one incremental matching per
  closure instead of |ring| full Kuhn runs per ring;
* the ``time_budget`` is threaded *into* the per-candidate check as a
  deadline — the seed only looked at the clock between candidates, so a
  single candidate's DTRS sweep could overshoot the budget unboundedly;
* ``workers > 1`` fans the candidate stream of each size across
  processes.  The winner is the first feasible candidate in
  lexicographic enumeration order, so the parallel result — optimum,
  mixin set and ``candidates_checked`` — is identical to serial.
  ``candidates_checked`` always reports the *serial* semantics: the
  1-based enumeration position of the winner (workers may have
  speculatively checked candidates past it; those are not counted).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import combinations as subset_combinations

from ..obs import events, metrics, trace
from ..resilience import faults
from .diversity import ht_counts_satisfy
from .perf.cache import SolverCache
from .perf.kernels import KERNEL_BATCH_SIZE, prefilter_chunk
from .perf.matching import IncrementalMatcher
from .perf.parallel import chunked, resolve_workers, scan_candidates
from .perf.worlds import DeadlineExceeded
from .problem import DamsInstance, InfeasibleError
from .ring import Ring

__all__ = ["BfsResult", "bfs_select", "SearchBudgetExceeded"]


class SearchBudgetExceeded(RuntimeError):
    """Raised when the exact search exceeds its time/node budget.

    Carries a best-effort payload locating the trip inside the search
    (the seed only reported elapsed time, which made Figure-4 budget
    rows impossible to compare across runs):

    Attributes:
        size: the mixin-set size stratum being scanned at the trip.
        scanned_in_size: candidates of that size whose check had
            started when the budget ran out.
        margin_s: ``deadline - now`` at the trip (negative means the
            search overshot the budget by that much).
        checkpoint_path: where the last stratum-boundary checkpoint was
            written (None when checkpointing was off or no stratum had
            completed) — pass it back as ``resume_from`` to continue.
    """

    def __init__(
        self,
        message: str,
        size: int | None = None,
        scanned_in_size: int | None = None,
        margin_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.size = size
        self.scanned_in_size = scanned_in_size
        self.margin_s = margin_s
        self.checkpoint_path = None


@dataclass(frozen=True, slots=True)
class BfsResult:
    """Outcome of the exact search.

    Attributes:
        ring: the optimal ring (target token + minimal mixins).
        mixins: the chosen mixin set.
        candidates_checked: number of candidate rings examined (serial
            enumeration-order semantics, identical for all worker
            counts).
        elapsed: wall-clock seconds spent.
    """

    ring: Ring
    mixins: frozenset[str]
    candidates_checked: int
    elapsed: float


def bfs_select(
    instance: DamsInstance,
    time_budget: float | None = None,
    max_mixins: int | None = None,
    workers: int = 0,
    cache: SolverCache | None = None,
    supervision=None,
    checkpoint_path=None,
    resume_from=None,
) -> BfsResult:
    """Run Algorithm 2 on ``instance`` and return the optimal ring.

    Args:
        instance: the DA-MS instance.
        time_budget: optional wall-clock cap in seconds; exceeding it
            raises :class:`SearchBudgetExceeded` (the paper's Figure 4
            run hit 2 hours for the 8th RS — callers need a guard).
            The budget is enforced *inside* the per-candidate DTRS
            sweep too, so one pathological candidate cannot overshoot.
        max_mixins: optional cap on the mixin-set size to search.
        workers: fan the candidate stream across this many processes
            (<= 1 means serial).  Results are identical to serial.
        cache: reuse a :class:`SolverCache` across calls sharing the
            same universe + ring history (one is created if omitted).
        supervision: a :class:`~repro.resilience.supervisor.RetryPolicy`
            to requeue chunks lost to dead/hung workers (parallel runs
            only); ``None`` detects the loss but does not retry.
        checkpoint_path: write a stratum-boundary
            :class:`~repro.resilience.checkpoint.BfsCheckpoint` here
            after every exhausted stratum, so a later call can resume.
        resume_from: a checkpoint (path or
            :class:`~repro.resilience.checkpoint.BfsCheckpoint`) from a
            previous run on the *same* instance; the search restarts at
            the recorded stratum and reproduces the uninterrupted
            result exactly.

    Raises:
        InfeasibleError: the full search space holds no feasible ring.
        SearchBudgetExceeded: the time budget ran out first; carries
            ``checkpoint_path`` when a checkpoint was written.
        CheckpointError: ``resume_from`` is corrupted or belongs to a
            different instance.
        WorkerLost: a parallel worker died/hung unrecoverably.

    Example — the paper's Example 1 (two prior rings over {t1, t2};
    spending t3 at (2, 2)-diversity needs exactly one mixin):

        >>> from repro.core.problem import DamsInstance
        >>> from repro.core.ring import Ring, TokenUniverse
        >>> universe = TokenUniverse(
        ...     {"t1": "h1", "t2": "h2", "t3": "h1", "t4": "h3"})
        >>> history = [
        ...     Ring("r1", frozenset({"t1", "t2"}), c=2.0, ell=2, seq=0),
        ...     Ring("r2", frozenset({"t1", "t2"}), c=2.0, ell=2, seq=1)]
        >>> result = bfs_select(
        ...     DamsInstance(universe, history, "t3", c=2.0, ell=2))
        >>> sorted(result.ring.tokens)
        ['t3', 't4']
        >>> sorted(result.mixins)
        ['t4']
    """
    start = time.perf_counter()
    deadline = None if time_budget is None else start + time_budget
    sigma = sorted(instance.candidate_mixins())
    upper = len(sigma) if max_mixins is None else min(max_mixins, len(sigma))
    lower = max(0, instance.ell - 1)
    workers = resolve_workers(workers)
    if cache is None:
        cache = SolverCache(instance.universe, instance.rings)
    checked = 0

    fingerprint = None
    if checkpoint_path is not None or resume_from is not None:
        from ..resilience.checkpoint import instance_fingerprint

        fingerprint = instance_fingerprint(instance)
    if resume_from is not None:
        lower, checked = _resume(
            instance, resume_from, fingerprint, lower, cache, deadline
        )
    wrote_checkpoint = False

    def _checkpoint_boundary(next_size: int) -> None:
        """Persist progress after a fully scanned stratum."""
        nonlocal wrote_checkpoint
        if checkpoint_path is None:
            return
        from ..resilience.checkpoint import BfsCheckpoint, save_checkpoint

        save_checkpoint(
            checkpoint_path,
            BfsCheckpoint(
                fingerprint=fingerprint,
                next_size=next_size,
                candidates_checked=checked,
                elapsed=time.perf_counter() - start,
                cache_keys=cache.worlds_keys(),
            ),
        )
        wrote_checkpoint = True
        if events.enabled():
            events.emit(
                events.CheckpointSaved(size=next_size - 1, candidates=checked)
            )

    def _with_checkpoint(exc: SearchBudgetExceeded) -> SearchBudgetExceeded:
        if wrote_checkpoint:
            exc.checkpoint_path = checkpoint_path
        return exc

    with trace.span(
        "bfs.select",
        target=instance.target_token,
        mixin_pool=len(sigma),
        budget=time_budget,
        workers=workers,
    ) as select_span:
        for size in range(lower, upper + 1):
            with trace.span("bfs.stratum", size=size) as stratum_span:
                scanned_in_size = 0
                stream = subset_combinations(sigma, size)
                if workers:
                    if supervision is not None:
                        from ..resilience.supervisor import supervised_scan

                        outcome, index, winner = supervised_scan(
                            instance, stream, workers, deadline=deadline,
                            policy=supervision,
                        )
                    else:
                        outcome, index, winner = scan_candidates(
                            instance, stream, workers, deadline=deadline
                        )
                    if stratum_span is not None:
                        stratum_span.attrs["candidates"] = index + (
                            1 if outcome == "found" else 0
                        )
                    if outcome == "budget":
                        raise _with_checkpoint(_trip_budget(
                            time_budget, checked + index + 1, size, index + 1,
                            deadline,
                        ))
                    if outcome == "found":
                        checked += index + 1
                        return _finish(
                            select_span, instance.make_ring(winner),
                            frozenset(winner), checked, start,
                        )
                    checked += index
                    if events.enabled():
                        events.emit(
                            events.StratumExhausted(size=size, candidates=index)
                        )
                    _checkpoint_boundary(size + 1)
                    continue
                for batch in chunked(stream, KERNEL_BATCH_SIZE):
                    # One kernel pass resolves most of the stratum chunk
                    # (None = batching off or the state build tripped
                    # the deadline); the in-order replay below keeps the
                    # seed's deadline, fault-hook and event semantics.
                    verdicts = prefilter_chunk(
                        instance, cache, batch, deadline=deadline
                    )
                    for local_index, mixin_tuple in enumerate(batch):
                        if deadline is not None and time.perf_counter() > deadline:
                            raise _with_checkpoint(_trip_budget(
                                time_budget, checked, size, scanned_in_size,
                                deadline,
                            ))
                        checked += 1
                        scanned_in_size += 1
                        candidate = instance.make_ring(mixin_tuple)
                        verdict = (
                            None if verdicts is None else verdicts[local_index]
                        )
                        try:
                            feasible = _replay_candidate(
                                instance, candidate, verdict,
                                cache=cache, deadline=deadline,
                            )
                        except SearchBudgetExceeded as exc:
                            _annotate_trip(exc, size, scanned_in_size, deadline)
                            raise _with_checkpoint(exc)
                        if feasible:
                            if stratum_span is not None:
                                stratum_span.attrs["candidates"] = scanned_in_size
                            return _finish(
                                select_span, candidate, frozenset(mixin_tuple),
                                checked, start,
                            )
                if stratum_span is not None:
                    stratum_span.attrs["candidates"] = scanned_in_size
                if events.enabled():
                    events.emit(
                        events.StratumExhausted(
                            size=size, candidates=scanned_in_size
                        )
                    )
                _checkpoint_boundary(size + 1)
        raise InfeasibleError(
            f"no feasible ring for token {instance.target_token!r} under "
            f"({instance.c}, {instance.ell})-diversity"
        )


def _resume(
    instance: DamsInstance,
    resume_from,
    fingerprint: str,
    lower: int,
    cache: SolverCache,
    deadline: float | None,
) -> tuple[int, int]:
    """Validate a checkpoint and return the (start stratum, checked) pair."""
    from ..resilience.checkpoint import (
        BfsCheckpoint,
        CheckpointError,
        load_checkpoint,
    )

    checkpoint = (
        resume_from
        if isinstance(resume_from, BfsCheckpoint)
        else load_checkpoint(resume_from)
    )
    if checkpoint.fingerprint != fingerprint:
        raise CheckpointError(
            "checkpoint belongs to a different DA-MS instance "
            f"(fingerprint {checkpoint.fingerprint[:12]}… != "
            f"{fingerprint[:12]}…)"
        )
    # Pre-warm the shared-world cache with the entries the interrupted
    # run had built; the keys come from the checkpoint, the worlds are
    # recomputed (they are derived data, not trusted from disk).
    for key in checkpoint.cache_keys:
        cache.base_worlds(frozenset(key), deadline=deadline)
    if events.enabled():
        events.emit(events.CheckpointResumed(size=checkpoint.next_size))
    return max(lower, checkpoint.next_size), checkpoint.candidates_checked


def _finish(
    select_span, ring: Ring, mixins: frozenset[str], checked: int, start: float
) -> BfsResult:
    """Assemble the result and flush the per-call observability."""
    elapsed = time.perf_counter() - start
    rec = metrics.active()
    if rec is not None:
        rec.observe("bfs.select_s", elapsed)
        rec.count("bfs.selected")
    if select_span is not None:
        select_span.attrs["ring_size"] = len(ring.tokens)
        select_span.attrs["candidates_checked"] = checked
    return BfsResult(
        ring=ring, mixins=mixins, candidates_checked=checked, elapsed=elapsed
    )


def _trip_budget(
    time_budget: float | None,
    checked: int,
    size: int,
    scanned_in_size: int,
    deadline: float | None,
) -> SearchBudgetExceeded:
    """Build the enriched budget exception and emit its event."""
    margin = 0.0 if deadline is None else deadline - time.perf_counter()
    if events.enabled():
        events.emit(
            events.DeadlineTripped(
                size=size, scanned_in_size=scanned_in_size, margin_s=margin
            )
        )
    budget_text = "?" if time_budget is None else f"{time_budget:.1f}"
    return SearchBudgetExceeded(
        f"exact BFS exceeded {budget_text}s after {checked} candidates "
        f"({scanned_in_size} of size {size})",
        size=size,
        scanned_in_size=scanned_in_size,
        margin_s=margin,
    )


def _annotate_trip(
    exc: SearchBudgetExceeded,
    size: int,
    scanned_in_size: int,
    deadline: float | None,
) -> None:
    """Attach stratum context to a budget trip raised mid-candidate."""
    exc.size = size
    exc.scanned_in_size = scanned_in_size
    if exc.margin_s is None and deadline is not None:
        exc.margin_s = deadline - time.perf_counter()
    if events.enabled():
        events.emit(
            events.DeadlineTripped(
                size=size,
                scanned_in_size=scanned_in_size,
                margin_s=exc.margin_s if exc.margin_s is not None else 0.0,
            )
        )


def _candidate_feasible(
    instance: DamsInstance,
    candidate: Ring,
    cache: SolverCache | None = None,
    deadline: float | None = None,
) -> bool:
    """Lines 5-22 of Algorithm 2 for a single candidate ring.

    Raises:
        SearchBudgetExceeded: the deadline passed mid-check (the seed
            only noticed between candidates; see the module docstring).
    """
    return _replay_candidate(
        instance, candidate, None, cache=cache, deadline=deadline
    )


def _replay_candidate(
    instance: DamsInstance,
    candidate: Ring,
    verdict: str | None,
    cache: SolverCache | None = None,
    deadline: float | None = None,
) -> bool:
    """One candidate of the in-order replay after a kernel pre-filter.

    Fires the ``bfs.candidate`` fault hook (once per candidate, in
    enumeration order — exactly as the per-candidate path does), then
    applies the kernel ``verdict``: resolved verdicts emit the matching
    :class:`~repro.obs.events.CandidateScanned` event directly; ``None``
    (batching off, or the kernel hit the deadline mid-chunk) runs the
    exact per-candidate check.
    """
    plan = faults.active()
    if plan is not None:
        plan.check("bfs.candidate")
    if verdict is None:
        return _check_candidate(
            instance, candidate, cache=cache, deadline=deadline
        )
    size = len(candidate.tokens) - 1
    if verdict == "feasible":
        if events.enabled():
            events.emit(events.CandidateScanned(size=size, filtered_at=None))
        return True
    if events.enabled():
        events.emit(events.CandidateScanned(size=size, filtered_at=verdict))
    return False


def _check_candidate(
    instance: DamsInstance,
    candidate: Ring,
    cache: SolverCache | None = None,
    deadline: float | None = None,
) -> bool:
    """The exact per-candidate tail (ht gate, matcher, DTRS sweep)."""
    universe = instance.universe
    obs_on = events.enabled()
    size = len(candidate.tokens) - 1  # mixin count: the stratum this is in
    # Line 6-8: the candidate's own HT multiset first — cheapest filter.
    if not ht_counts_satisfy(
        universe.ht_counts(candidate.tokens), candidate.c, candidate.ell
    ):
        if obs_on:
            events.emit(events.CandidateScanned(size=size, filtered_at="ht"))
        return False

    if cache is None:
        cache = SolverCache(universe, instance.rings)
    key = cache.related_key(candidate.tokens)
    related = cache.related_rings(key)
    closure = related + [candidate]

    # Lines 9-16: non-eliminated over the closure — one matching, one
    # augmenting-path repair per (ring, token) query.
    matcher = IncrementalMatcher(closure)
    if not all(matcher.non_eliminated(ring.rid) for ring in closure):
        if obs_on:
            events.emit(
                events.CandidateScanned(size=size, filtered_at="eliminated")
            )
        return False

    # Lines 17-22: every ring's DTRSs must satisfy that ring's own
    # claimed requirement (the candidate's is (c_tau, l_tau)).  The
    # base worlds of the related prefix come from the cache; only the
    # candidate's own row is new work.
    try:
        worlds = cache.base_worlds(key, deadline=deadline).extend(
            candidate, deadline=deadline
        )
        for ring in closure:
            for dtrs in worlds.dtrss_of(ring.rid, universe, deadline=deadline):
                if not ht_counts_satisfy(
                    universe.ht_counts(dtrs.tokens), ring.c, ring.ell
                ):
                    if obs_on:
                        events.emit(
                            events.CandidateScanned(size=size, filtered_at="dtrs")
                        )
                    return False
    except DeadlineExceeded:
        raise SearchBudgetExceeded(
            "exact BFS deadline passed inside a candidate's DTRS sweep",
            size=size,
        ) from None
    if obs_on:
        events.emit(events.CandidateScanned(size=size, filtered_at=None))
    return True
