"""The Game-theoretic Algorithm — Algorithm 5 (Section 6.3).

Modules (super RSs and fresh tokens) are *players*; each picks a
strategy phi (be in the new ring) or phi-bar (stay out).  Given a
strategy profile, every player pays

    cost = |r~_tau| / |A|   if the resulting HT multiset satisfies
                            recursive (c, l)-diversity,
           infinity         otherwise,

which makes the game an *exact potential game* (the potential equals
the shared cost), so round-robin best response converges (Theorem 6.6,
O(n^3)).  At equilibrium the selected set is feasible and
1-removal-minimal: no single selected player can leave without breaking
feasibility.  PoS <= 1 and PoA <= q_M (1 + 1/(c l)) + z_M / l
(Theorem 6.7).

Best-response detail faithful to the pseudocode: a player defaults to
phi and only plays phi-bar when strictly cheaper — so while the profile
is infeasible both strategies cost infinity and players keep *joining*,
and once (and whenever) the profile is feasible, selected players peel
off while feasibility survives.

The pseudocode leaves two knobs open: the player iteration order and
the initial profile beyond the coverage warm start.  Different choices
converge to different Nash equilibria (the gap PoA - PoS is real), so
this implementation runs the dynamics from three cheap deterministic
starts and returns the smallest equilibrium found:

1. coverage warm start, players in descending module size — this is
   the paper's Example 3 trace (s1 moves first, s2 peels; result
   s1 ∪ s3 of size 8);
2. coverage warm start, players in ascending module size;
3. the Progressive solution as the initial profile (feasible), then
   pure peeling — which guarantees TM_G is never worse than TM_P.

Each run is a faithful execution of the dynamics; taking the best of
three equilibria preserves every theoretical property (the returned
profile is itself a Nash equilibrium) while matching the equilibrium
quality the paper's figures report.
"""

from __future__ import annotations

import random
import time

from .diversity import ht_counts_satisfy
from .modules import Module, ModuleUniverse
from .problem import InfeasibleError
from .progressive import coverage_phase, progressive_select
from .selector import SelectionResult, register_selector

__all__ = ["game_select"]


def _profile_feasible(
    modules: ModuleUniverse,
    selected_tokens: set[str],
    c: float,
    ell: int,
) -> bool:
    return ht_counts_satisfy(modules.universe.ht_counts(selected_tokens), c, ell)


def _best_response(
    modules: ModuleUniverse,
    anchor: Module,
    players: list[Module],
    initial_in: set[str],
    c: float,
    ell: int,
    max_rounds: int,
) -> tuple[set[str], list[str]] | None:
    """Run round-robin best response to a Nash equilibrium.

    Args:
        players: iteration order of the players.
        initial_in: module ids selected in the starting profile.

    Returns:
        (token set, selected module ids) at equilibrium, or None when
        the equilibrium profile is still diversity-infeasible.
    """
    in_ring: dict[str, bool] = {
        player.mid: player.mid in initial_in for player in players
    }

    def profile_tokens(exclude: str | None = None) -> set[str]:
        tokens = set(anchor.tokens)
        for player in players:
            if player.mid != exclude and in_ring[player.mid]:
                tokens |= player.tokens
        return tokens

    current_tokens = profile_tokens()

    def cost_of(tokens: set[str]) -> float:
        # The paper removes a_tau from the player set A, so the shared
        # cost is |r~_tau| / |A| with |A| = len(players).
        if _profile_feasible(modules, tokens, c, ell):
            return len(tokens) / max(len(players), 1)
        return float("inf")

    for _ in range(max_rounds):
        changed = False
        for player in players:
            if in_ring[player.mid]:
                tokens_with = current_tokens
                tokens_without = profile_tokens(exclude=player.mid)
            else:
                tokens_with = current_tokens | player.tokens
                tokens_without = current_tokens
            cost_in = cost_of(set(tokens_with))
            cost_out = cost_of(set(tokens_without))
            # Pseudocode lines 7-9: default phi, switch iff phi-bar is
            # strictly cheaper.
            wants_in = not (cost_out < cost_in)
            if wants_in != in_ring[player.mid]:
                in_ring[player.mid] = wants_in
                current_tokens = set(tokens_with if wants_in else tokens_without)
                changed = True
        if not changed:
            break

    if not _profile_feasible(modules, current_tokens, c, ell):
        return None
    chosen = [anchor.mid] + [p.mid for p in players if in_ring[p.mid]]
    return current_tokens, chosen


@register_selector("game")
def game_select(
    modules: ModuleUniverse,
    target_token: str,
    c: float,
    ell: int,
    rng: random.Random | None = None,
    max_rounds: int | None = None,
) -> SelectionResult:
    """Run Algorithm 5 for ``target_token`` under (c, ell)-diversity.

    Args:
        modules: module decomposition of the batch universe.
        target_token: the token t_tau to consume (its module a_tau is
            pinned to strategy phi).
        c: diversity parameter c_tau.
        ell: diversity parameter l_tau (callers wanting DTRS protection
            pass the second configuration's l+1).
        rng: unused; accepted for signature uniformity.
        max_rounds: safety cap on best-response rounds per start
            (defaults to |A| + 2, enough by the potential argument).

    Raises:
        InfeasibleError: when even selecting every module cannot meet
            the requirement.
    """
    del rng
    start = time.perf_counter()
    anchor = modules.module_of(target_token)
    base_players = modules.others(anchor)
    rounds = (len(base_players) + 2) if max_rounds is None else max_rounds

    # Fast infeasibility check: even the all-in profile must satisfy
    # the requirement, else best response would chase a ghost.
    all_tokens = set(anchor.tokens)
    for player in base_players:
        all_tokens |= player.tokens
    if not _profile_feasible(modules, all_tokens, c, ell):
        raise InfeasibleError(
            f"even the full universe violates ({c}, {ell})-diversity "
            f"for token {target_token!r}"
        )

    # Warm start (lines 2-4): the same HT-coverage greedy as Algorithm 4.
    warm_selected: list[Module] = [anchor]
    warm_available = list(base_players)
    coverage_phase(modules, warm_selected, warm_available, ell)
    warm_ids = {m.mid for m in warm_selected if m.mid != anchor.mid}

    descending = sorted(base_players, key=lambda m: (-len(m.tokens), m.mid))
    ascending = sorted(base_players, key=lambda m: (len(m.tokens), m.mid))

    starts: list[tuple[list[Module], set[str]]] = [
        (descending, set(warm_ids)),
        (ascending, set(warm_ids)),
    ]
    # Third start: the Progressive solution (feasible), peel-only.
    try:
        progressive = progressive_select(modules, target_token, c, ell)
        progressive_ids = {
            mid for mid in progressive.modules if mid != anchor.mid
        }
        starts.append((descending, progressive_ids))
    except InfeasibleError:
        pass

    best: tuple[set[str], list[str]] | None = None
    for order, initial in starts:
        outcome = _best_response(
            modules, anchor, order, initial, c, ell, rounds
        )
        if outcome is None:
            continue
        if best is None or len(outcome[0]) < len(best[0]):
            best = outcome

    if best is None:
        raise InfeasibleError(
            f"best-response dynamics found no feasible equilibrium for "
            f"token {target_token!r} under ({c}, {ell})-diversity"
        )

    tokens, chosen = best
    return SelectionResult(
        tokens=frozenset(tokens),
        target_token=target_token,
        modules=tuple(chosen),
        elapsed=time.perf_counter() - start,
        algorithm="game",
    )
