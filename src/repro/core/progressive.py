"""The Progressive Algorithm — Algorithm 4 (Section 6.2).

Greedy, two phases, operating on modules (super RSs + fresh tokens)
under the practical configurations:

* **Phase 1 — HT coverage.**  While the ring's tokens span fewer than
  l distinct HTs, add the module with minimal

      alpha_i = |x_i| / min(l - |H|, |H_i \\ H|)

  i.e. the cheapest per-token buyer of still-missing HTs.

* **Phase 2 — diversity repair.**  While the HT multiset violates
  recursive (c, l)-diversity, add the module with maximal

      beta_i = (delta - delta_i) / |x_i|

  where delta = q_1 - c * (q_l + ... + q_theta) is the current
  violation and delta_i the violation after adding x_i: the biggest
  violation reduction per token.

Approximation ratio (Theorem 6.5): H_l + q_M * z_M / 10^-gamma.

Ties are broken by (score, module size, module id) so runs are fully
deterministic; the randomness the threat model relies on comes from
TokenMagic's candidate-set sampling (Algorithm 1), not from here.
"""

from __future__ import annotations

import random
import time

from .diversity import ht_counts_deficit
from .modules import Module, ModuleUniverse
from .problem import InfeasibleError
from .selector import SelectionResult, register_selector

__all__ = ["progressive_select", "coverage_phase"]


def coverage_phase(
    modules: ModuleUniverse,
    selected: list[Module],
    available: list[Module],
    ell: int,
) -> None:
    """Shared phase 1: extend ``selected`` until >= ell distinct HTs.

    Mutates ``selected`` and ``available`` in place.  Used verbatim by
    both Algorithm 4 (alpha scores) and Algorithm 5 (gamma scores) —
    the two formulas are identical.

    Raises:
        InfeasibleError: if no module can contribute a new HT while
            coverage is still short.
    """
    universe = modules.universe
    covered: set[str] = set()
    for module in selected:
        covered |= set(universe.ht_counts(module.tokens))

    while len(covered) < ell:
        best: tuple[float, int, str] | None = None
        best_module: Module | None = None
        for module in available:
            new_hts = set(universe.ht_counts(module.tokens)) - covered
            if not new_hts:
                continue
            denominator = min(ell - len(covered), len(new_hts))
            alpha = len(module.tokens) / denominator
            key = (alpha, len(module.tokens), module.mid)
            if best is None or key < best:
                best = key
                best_module = module
        if best_module is None:
            raise InfeasibleError(
                f"cannot cover {ell} distinct HTs: only {len(covered)} reachable"
            )
        selected.append(best_module)
        available.remove(best_module)
        covered |= set(universe.ht_counts(best_module.tokens))


def _tokens_of(selected: list[Module]) -> frozenset[str]:
    tokens: set[str] = set()
    for module in selected:
        tokens |= module.tokens
    return frozenset(tokens)


@register_selector("progressive")
def progressive_select(
    modules: ModuleUniverse,
    target_token: str,
    c: float,
    ell: int,
    rng: random.Random | None = None,
) -> SelectionResult:
    """Run Algorithm 4 for ``target_token`` under (c, ell)-diversity.

    Args:
        modules: module decomposition of the batch universe.
        target_token: the token t_tau to consume.
        c: diversity parameter c_tau.
        ell: diversity parameter l_tau (pass the second practical
            configuration's l+1 if DTRS protection is wanted — see
            :func:`repro.core.modules.second_config_ell`).
        rng: unused (the algorithm is deterministic); accepted for
            signature uniformity.

    Raises:
        InfeasibleError: when the universe cannot satisfy the requirement.
    """
    del rng
    start = time.perf_counter()
    universe = modules.universe
    anchor = modules.module_of(target_token)
    selected: list[Module] = [anchor]
    available: list[Module] = modules.others(anchor)

    # Phase 1 (lines 2-4): reach l distinct HTs.
    coverage_phase(modules, selected, available, ell)

    # Phase 2 (lines 5-7): repair recursive (c, l)-diversity.
    current_tokens = set(_tokens_of(selected))
    delta = ht_counts_deficit(universe.ht_counts(current_tokens), c, ell)
    while delta >= 0:
        best: tuple[float, int, str] | None = None
        best_module: Module | None = None
        best_delta = delta
        for module in available:
            trial_counts = universe.ht_counts(current_tokens | module.tokens)
            delta_i = ht_counts_deficit(trial_counts, c, ell)
            beta = (delta - delta_i) / len(module.tokens)
            # Max beta wins; ties prefer smaller modules then stable ids.
            key = (-beta, len(module.tokens), module.mid)
            if best is None or key < best:
                best = key
                best_module = module
                best_delta = delta_i
        if best_module is None or best_delta >= delta:
            raise InfeasibleError(
                f"diversity deficit stuck at {delta:.3f} for token {target_token!r} "
                f"under ({c}, {ell})-diversity"
            )
        selected.append(best_module)
        available.remove(best_module)
        current_tokens |= best_module.tokens
        delta = best_delta

    return SelectionResult(
        tokens=frozenset(current_tokens),
        target_token=target_token,
        modules=tuple(module.mid for module in selected),
        elapsed=time.perf_counter() - start,
        algorithm="progressive",
    )
