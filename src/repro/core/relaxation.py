"""Requirement relaxation (Section 4).

"If users think the returned RS is not desirable (e.g., the size is too
large) or the framework cannot return an eligible RS, they can relax
the diversity requirement by increasing c or decreasing l."

This module turns that remark into a deterministic policy: a relaxation
*schedule* enumerates progressively weaker (c, l) requirements, and
:func:`select_with_relaxation` walks the schedule until a selector
succeeds (optionally also until the ring is small enough).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .modules import ModuleUniverse
from .problem import InfeasibleError
from .selector import SelectionResult, Selector, get_selector

__all__ = ["RelaxationStep", "relaxation_schedule", "select_with_relaxation"]


@dataclass(frozen=True, slots=True)
class RelaxationStep:
    """One rung of the relaxation ladder."""

    c: float
    ell: int
    level: int

    @property
    def is_original(self) -> bool:
        return self.level == 0


def relaxation_schedule(
    c: float,
    ell: int,
    c_factor: float = 1.5,
    ell_step: int = 1,
    max_level: int = 8,
) -> Iterator[RelaxationStep]:
    """Yield progressively weaker requirements.

    Level 0 is the original requirement; each later level alternates
    increasing c (multiplied by ``c_factor``) and decreasing l (by
    ``ell_step``, floored at 1) — both moves the paper sanctions.
    """
    if c <= 0 or ell < 1:
        raise ValueError("invalid starting requirement")
    if c_factor <= 1 or ell_step < 1:
        raise ValueError("relaxation must actually relax")
    current_c, current_ell = c, ell
    yield RelaxationStep(c=current_c, ell=current_ell, level=0)
    for level in range(1, max_level + 1):
        if level % 2 == 1:
            current_c *= c_factor
        else:
            current_ell = max(1, current_ell - ell_step)
        yield RelaxationStep(c=current_c, ell=current_ell, level=level)


def select_with_relaxation(
    modules: ModuleUniverse,
    target_token: str,
    c: float,
    ell: int,
    algorithm: str | Selector = "progressive",
    max_size: int | None = None,
    rng: random.Random | None = None,
    **schedule_options,
) -> tuple[SelectionResult, RelaxationStep]:
    """Select mixins, relaxing the requirement until something works.

    Args:
        max_size: optionally also treat rings larger than this as
            "not desirable" and keep relaxing (the paper's other
            trigger for relaxation).
        **schedule_options: forwarded to :func:`relaxation_schedule`.

    Returns:
        The selection and the step that produced it (``step.level`` is
        0 when no relaxation was needed).

    Raises:
        InfeasibleError: if even the weakest scheduled requirement
            fails.
    """
    selector = get_selector(algorithm) if isinstance(algorithm, str) else algorithm
    last_error: InfeasibleError | None = None
    oversized: tuple[SelectionResult, RelaxationStep] | None = None
    for step in relaxation_schedule(c, ell, **schedule_options):
        try:
            result = selector(modules, target_token, step.c, step.ell, rng=rng)
        except InfeasibleError as error:
            last_error = error
            continue
        if max_size is None or result.size <= max_size:
            return result, step
        if oversized is None or result.size < oversized[0].size:
            oversized = (result, step)
    if oversized is not None:
        # Nothing met the size wish; return the best oversized ring.
        return oversized
    raise InfeasibleError(
        f"no requirement on the relaxation schedule of ({c}, {ell}) is "
        f"satisfiable for token {target_token!r}"
    ) from last_error
