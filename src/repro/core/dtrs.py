"""Definite token-RS pair sets (DTRSs) — Definition 2 and Algorithm 3.

A DTRS of a ring r_k at time pi is a *minimal* set of token-RS pairs
d = {<t_1, r_1>, ...} whose revelation pins down the historical
transaction (HT) of r_k's consumed token: in every valid token-RS
combination consistent with d, r_k's consumed token comes from the same
HT.

The exact computation (:func:`get_dtrss`, the paper's GetDTRSs
procedure) enumerates all token-RS combinations and is exponential —
this is intentional, the whole point of Section 6 is replacing it with
the polynomial Theorem 6.1 check under the practical configurations
(see :mod:`repro.core.modules`).

The enumeration is executed on the bitmask world index of
:class:`~repro.core.perf.worlds.WorldSet` (worlds enumerated once per
call, candidate pair sets walked with mask pruning and a sublinear
dominance index); the seed's eager per-call world list lives on as
:func:`repro.core.perf.reference.get_dtrss_reference` and the
equivalence tests assert both return the same DTRSs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..obs import trace
from .ring import Ring, TokenUniverse

__all__ = ["Dtrs", "get_dtrss", "ring_is_recursive_diverse_exact"]


@dataclass(frozen=True, slots=True)
class Dtrs:
    """A definite token-RS pair set for some target ring.

    Attributes:
        pairs: frozenset of (token, rid) pairs whose joint revelation
            determines the target's consumed-token HT.
        determined_ht: the HT that becomes certain once ``pairs`` leak.
    """

    pairs: frozenset[tuple[str, str]]
    determined_ht: str

    @property
    def tokens(self) -> frozenset[str]:
        """The token set of the DTRS (what Theorem 6.1's psi denotes)."""
        return frozenset(token for token, _ in self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)


def get_dtrss(
    target: Ring,
    rings: Sequence[Ring],
    universe: TokenUniverse,
    max_size: int | None = None,
    deadline: float | None = None,
) -> list[Dtrs]:
    """Enumerate all (minimal) DTRSs of ``target`` — Algorithm 3.

    Args:
        target: the ring r_k whose DTRSs are wanted.
        rings: the full ring set (must include ``target``); the paper's
            ``R_pi^rs ∪ {rs}``.
        universe: token -> HT mapping.
        max_size: optionally cap the candidate pair-set size (the
            paper's loop runs sizes 1..n; small caps make the BFS bench
            tractable while preserving minimality of what is returned).
        deadline: optional ``time.perf_counter()`` deadline; passing it
            lets callers with a time budget (the BFS solver) abort an
            exponential enumeration mid-flight with
            :class:`~repro.core.perf.worlds.DeadlineExceeded`.

    Returns:
        Minimal DTRSs, canonically ordered (by size, then pairs).
        Empty list means no leak of other rings' pairs can ever pin
        down the target's HT (the best possible privacy).
    """
    from .perf.worlds import WorldSet

    if all(ring.rid != target.rid for ring in rings):
        raise ValueError("target ring must be a member of the ring set")

    with trace.span("dtrs.get_dtrss", target=target.rid, rings=len(rings)) as sp:
        worlds = WorldSet(rings, deadline=deadline)
        result = worlds.dtrss_of(
            target.rid, universe, max_size=max_size, deadline=deadline
        )
        if sp is not None:
            sp.attrs["worlds"] = len(worlds)
            sp.attrs["found"] = len(result)
        return result


def ring_is_recursive_diverse_exact(
    target: Ring,
    rings: Sequence[Ring],
    universe: TokenUniverse,
    c: float | None = None,
    ell: int | None = None,
) -> bool:
    """Definition 4 verified exactly (exponential).

    Condition (1): the HT multiset of ``target``'s tokens satisfies
    recursive (c, l)-diversity.  Condition (2): the HT multiset of the
    tokens of *every* DTRS of ``target`` satisfies it too.

    ``c``/``ell`` default to the ring's own claimed requirement.
    """
    from .diversity import ht_counts_satisfy

    c = target.c if c is None else c
    ell = target.ell if ell is None else ell
    if not ht_counts_satisfy(universe.ht_counts(target.tokens), c, ell):
        return False
    for dtrs in get_dtrss(target, rings, universe):
        if not ht_counts_satisfy(universe.ht_counts(dtrs.tokens), c, ell):
            return False
    return True
