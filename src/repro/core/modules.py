"""Practical configurations — super RSs, fresh tokens and modules (Sec 6.1).

The first practical configuration requires every new ring to be a
superset of some existing rings and disjoint from all the others.  The
building blocks a selector may combine are then:

* **super RSs** (Definition 7): rings with no later-proposed strict
  superset inside the related ring set, and
* **fresh tokens** (Definition 8): tokens not yet in any ring.

Both are wrapped in a uniform :class:`Module` (the "modules"/"players"
of Algorithms 4 and 5).  Under this configuration, Theorem 6.1 turns
DTRS enumeration into a polynomial check: the only DTRS token sets of a
ring r_i are psi_{i,j} = r_i \\ T~_{i,j} for HTs h_j frequent enough
that v_{i*} >= |r_i| - |T~_{i,j}| + 1.

The second practical configuration (Theorem 6.4) says: target
(c, l+1)-diversity for the new ring, and every DTRS of it is guaranteed
to satisfy (c, l).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from .diversity import ht_counts_satisfy
from .ring import Ring, TokenUniverse

__all__ = [
    "Module",
    "ModuleUniverse",
    "find_super_rings",
    "find_fresh_tokens",
    "subset_count",
    "decompose",
    "is_superset_or_disjoint",
    "theorem61_dtrs_token_sets",
    "ring_is_recursive_diverse_config",
    "second_config_ell",
]


@dataclass(frozen=True, slots=True)
class Module:
    """A selectable unit: one super RS or one fresh token.

    Attributes:
        mid: module id ("s:<rid>" or "f:<token>").
        tokens: tokens the module contributes to a new ring.
        is_super: True for super RSs, False for fresh tokens.
        source_rid: the super RS's ring id (None for fresh tokens).
    """

    mid: str
    tokens: frozenset[str]
    is_super: bool
    source_rid: str | None = None

    def __len__(self) -> int:
        return len(self.tokens)

    def ht_counts(self, universe: TokenUniverse) -> Counter[str]:
        return universe.ht_counts(self.tokens)


def find_super_rings(rings: Sequence[Ring]) -> list[Ring]:
    """Super RSs of Definition 7.

    A ring r_i is a super RS iff no ring proposed after it (higher seq)
    is a strict superset of it.

    One sweep in descending seq order maintains the token sets of all
    later-proposed rings, bucketed (and deduplicated) by size; a ring
    only needs comparing against strictly larger later sets, so
    module-universe construction stays fast when histories grow — the
    seed compared all O(n²) ring pairs.
    """
    order = sorted(range(len(rings)), key=lambda i: rings[i].seq, reverse=True)
    later_by_size: dict[int, set[frozenset[str]]] = {}
    super_indices: set[int] = set()

    position = 0
    while position < len(order):
        # Rings sharing a seq are mutually "not later": batch them.
        group_end = position
        seq = rings[order[position]].seq
        while group_end < len(order) and rings[order[group_end]].seq == seq:
            group_end += 1
        group = order[position:group_end]
        for index in group:
            tokens = rings[index].tokens
            if not any(
                size > len(tokens) and any(tokens < other for other in sets)
                for size, sets in later_by_size.items()
            ):
                super_indices.add(index)
        for index in group:
            tokens = rings[index].tokens
            later_by_size.setdefault(len(tokens), set()).add(tokens)
        position = group_end

    return [ring for index, ring in enumerate(rings) if index in super_indices]


def subset_count(ring: Ring, rings: Sequence[Ring]) -> int:
    """v_i: how many rings of the set are subsets of ``ring`` (itself included)."""
    return sum(1 for other in rings if other.tokens <= ring.tokens)


def find_fresh_tokens(universe_tokens: Iterable[str], rings: Sequence[Ring]) -> list[str]:
    """Fresh tokens of Definition 8: in T but in no ring."""
    covered: set[str] = set()
    for ring in rings:
        covered |= ring.tokens
    return sorted(set(universe_tokens) - covered)


class ModuleUniverse:
    """The decomposition of a mixin universe into selectable modules.

    Built from the related ring set over a batch universe; provides the
    module containing a given token (x_tau / a_tau of Algorithms 4/5)
    and the subset counts v_i needed by Theorem 6.1.
    """

    def __init__(
        self,
        universe: TokenUniverse,
        rings: Sequence[Ring],
    ) -> None:
        self.universe = universe
        self.rings = list(rings)
        self.super_rings = find_super_rings(self.rings)
        self.fresh_tokens = find_fresh_tokens(universe.tokens, self.rings)
        self.modules: list[Module] = [
            Module(
                mid=f"s:{ring.rid}",
                tokens=ring.tokens,
                is_super=True,
                source_rid=ring.rid,
            )
            for ring in self.super_rings
        ] + [
            Module(mid=f"f:{token}", tokens=frozenset({token}), is_super=False)
            for token in self.fresh_tokens
        ]
        self._module_of_token: dict[str, Module] = {}
        for module in self.modules:
            for token in module.tokens:
                # Under configuration 1 super RSs are pairwise disjoint or
                # nested; prefer the largest (outermost) module per token.
                current = self._module_of_token.get(token)
                if current is None or len(module.tokens) > len(current.tokens):
                    self._module_of_token[token] = module
        self._subset_counts = {
            ring.rid: subset_count(ring, self.rings) for ring in self.rings
        }

    def extended(self, ring: Ring) -> tuple["ModuleUniverse", bool]:
        """This decomposition after appending ``ring`` to the history.

        Returns ``(universe, incremental)``.  The result is exactly
        ``ModuleUniverse(self.universe, self.rings + [ring])`` — the
        second element only reports *how* it was built.

        The incremental path applies when ``ring`` is strictly newer
        than everything here and obeys the first practical
        configuration (superset-or-disjoint, Thm 6.1): then the
        decomposition changes only locally —

        * ``ring`` becomes a super RS (nothing later exists), and the
          only rings that *lose* super status are its strict subsets;
        * the only tokens that stop being fresh are ``ring``'s;
        * token→module assignments move only for ``ring``'s tokens;
        * subset counts v_i grow only where ``ring.tokens <= r.tokens``.

        Everything else — surviving :class:`Module` objects included —
        is shared with ``self``.  Any other ring (stale seq, a reused
        rid, or a configuration-1 violation) falls back to a full
        rebuild.  The rid guard matters: the incremental path keys
        super-RS modules by ``s:{rid}``, so a duplicate rid would
        silently alias the old super ring's module slot to the new
        ring's tokens, while the rebuild keeps both rings distinct.
        """
        max_seq = max((r.seq for r in self.rings), default=None)
        if (
            (max_seq is not None and ring.seq <= max_seq)
            or any(r.rid == ring.rid for r in self.rings)
            or not is_superset_or_disjoint(ring.tokens, self.rings)
        ):
            return ModuleUniverse(self.universe, self.rings + [ring]), False

        new = ModuleUniverse.__new__(ModuleUniverse)
        new.universe = self.universe
        new.rings = self.rings + [ring]
        # Def 7 sweep, localized: the new ring is later than everything,
        # so exactly its strict subsets stop being super RSs; rebuild
        # order (original index order, new ring last) is preserved.
        new.super_rings = [
            s for s in self.super_rings if not s.tokens < ring.tokens
        ] + [ring]
        new.fresh_tokens = [t for t in self.fresh_tokens if t not in ring.tokens]
        reused = {
            module.mid: module for module in self.modules if module.is_super
        }
        ring_module = Module(
            mid=f"s:{ring.rid}", tokens=ring.tokens, is_super=True,
            source_rid=ring.rid,
        )
        reused[ring_module.mid] = ring_module
        fresh_modules = {
            module.mid: module for module in self.modules if not module.is_super
        }
        new.modules = [reused[f"s:{s.rid}"] for s in new.super_rings] + [
            fresh_modules[f"f:{t}"] for t in new.fresh_tokens
        ]
        new._module_of_token = dict(self._module_of_token)
        for token in ring.tokens:
            current = new._module_of_token.get(token)
            # Under configuration 1 any surviving module overlapping the
            # ring has tokens ⊆ ring.tokens; only an equal-size (hence
            # equal-set) earlier super RS keeps the token (the rebuild's
            # strictly-larger-wins rule prefers the first of equals).
            if (
                current is None
                or not current.is_super
                or len(current.tokens) < len(ring.tokens)
            ):
                new._module_of_token[token] = ring_module
        new._subset_counts = {
            r.rid: self._subset_counts[r.rid]
            + (1 if ring.tokens <= r.tokens else 0)
            for r in self.rings
        }
        new._subset_counts[ring.rid] = subset_count(ring, new.rings)
        return new, True

    def module_of(self, token: str) -> Module:
        """The module containing ``token`` (Algorithm 4 line 1)."""
        try:
            return self._module_of_token[token]
        except KeyError:
            raise KeyError(f"token {token!r} is in no module of this universe") from None

    def others(self, module: Module) -> list[Module]:
        """All modules except ``module``, in deterministic order."""
        return [m for m in self.modules if m.mid != module.mid]

    def subset_count_of(self, rid: str) -> int:
        return self._subset_counts[rid]

    def super_of(self, ring: Ring) -> Ring:
        """The super RS covering ``ring``.

        For rings already in the universe this is the largest known
        super RS containing them.  A *candidate* ring (about to be
        proposed, so strictly newer than everything here) is its own
        covering super RS under configuration 1.
        """
        best: Ring | None = None
        for candidate in self.super_rings:
            if ring.tokens <= candidate.tokens:
                if best is None or len(candidate.tokens) > len(best.tokens):
                    best = candidate
        if best is None:
            return ring
        return best

    def subset_count_for(self, covering: Ring) -> int:
        """v_{i*} for a covering super RS, known or candidate."""
        if covering.rid in self._subset_counts:
            return self._subset_counts[covering.rid]
        return subset_count(covering, self.rings + [covering])


def is_superset_or_disjoint(tokens: frozenset[str], rings: Sequence[Ring]) -> bool:
    """First practical configuration check for a new ring's token set."""
    for ring in rings:
        if not (ring.tokens <= tokens or ring.tokens.isdisjoint(tokens)):
            return False
    return True


def theorem61_dtrs_token_sets(
    ring: Ring,
    modules: ModuleUniverse,
) -> list[tuple[str, frozenset[str]]]:
    """DTRS token sets of ``ring`` under configuration 1 (Theorem 6.1).

    Returns (h_j, psi_{i,j}) pairs: for each HT h_j of ``ring``'s
    tokens, if the covering super RS's subset count v_{i*} satisfies
    v_{i*} >= |r_i| - |T~_{i,j}| + 1, then psi_{i,j} = r_i \\ T~_{i,j}
    is the token set of a DTRS determining h_j.  HTs below the
    threshold contribute nothing (no DTRS can determine them).
    """
    universe = modules.universe
    covering = modules.super_of(ring)
    v_star = modules.subset_count_for(covering)
    results: list[tuple[str, frozenset[str]]] = []
    counts = universe.ht_counts(ring.tokens)
    for ht, multiplicity in counts.items():
        threshold = len(ring.tokens) - multiplicity + 1
        if v_star >= threshold:
            tokens_of_ht = frozenset(
                token for token in ring.tokens if universe.ht_of(token) == ht
            )
            psi = ring.tokens - tokens_of_ht
            if psi:
                results.append((ht, psi))
    return results


def ring_is_recursive_diverse_config(
    ring: Ring,
    modules: ModuleUniverse,
    c: float | None = None,
    ell: int | None = None,
) -> bool:
    """Definition 4 verified polynomially via Theorem 6.1.

    Checks the ring's own HT multiset and each psi_{i,j} token set's HT
    multiset against recursive (c, l)-diversity.
    """
    universe = modules.universe
    c = ring.c if c is None else c
    ell = ring.ell if ell is None else ell
    if not ht_counts_satisfy(universe.ht_counts(ring.tokens), c, ell):
        return False
    for _, psi in theorem61_dtrs_token_sets(ring, modules):
        if not ht_counts_satisfy(universe.ht_counts(psi), c, ell):
            return False
    return True


def second_config_ell(ell: int) -> int:
    """Second practical configuration: target (c, l+1) so DTRSs keep (c, l)."""
    return ell + 1
