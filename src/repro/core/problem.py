"""The Diversity-Aware Mixins Selection (DA-MS) problem — Definition 5.

Given a mixin universe T, a token t_tau to consume and a requirement
(c_tau, l_tau), pick a minimum-cardinality mixin set M so that the ring
r_tau = M ∪ {t_tau} satisfies:

* **diversity**: r_tau is a recursive (c_tau, l_tau)-diversity RS
  (Definition 4 — both the ring's own HT multiset and every DTRS's);
* **non-eliminated**: after proposing r_tau, no token of any ring in
  the closure can be ruled out by chain-reaction analysis;
* **immutability**: every previously proposed ring in the related set
  keeps its own claimed recursive (c_i, l_i)-diversity.

This module defines the problem instance object and exact (exponential)
constraint checkers used by the BFS solver and by tests; the practical
configurations in :mod:`repro.core.modules` provide the polynomial
counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .diversity import ht_counts_satisfy
from .dtrs import get_dtrss
from .ring import Ring, TokenUniverse, related_ring_set

__all__ = [
    "DamsInstance",
    "InfeasibleError",
    "check_diversity_constraint",
    "check_non_eliminated_constraint",
    "check_immutability_constraint",
    "is_feasible_exact",
]


class InfeasibleError(RuntimeError):
    """Raised when no mixin set can satisfy the DA-MS constraints."""


@dataclass(slots=True)
class DamsInstance:
    """One DA-MS problem instance.

    Attributes:
        universe: the mixin universe T with token -> HT labels.
        rings: previously proposed rings over T (ordered by seq).
        target_token: the token t_tau to consume.
        c: required diversity parameter c_tau.
        ell: required diversity parameter l_tau.
    """

    universe: TokenUniverse
    rings: list[Ring]
    target_token: str
    c: float
    ell: int
    _next_seq: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.target_token not in self.universe:
            raise ValueError(f"target token {self.target_token!r} not in universe")
        if self.c <= 0 or self.ell < 1:
            raise ValueError("invalid diversity requirement")
        if len({ring.rid for ring in self.rings}) != len(self.rings):
            raise ValueError("ring history contains duplicate rids")
        self._next_seq = 1 + max((ring.seq for ring in self.rings), default=-1)

    def candidate_mixins(self) -> frozenset[str]:
        """sigma = T \\ {t_tau} (Algorithm 2, line 1)."""
        return self.universe.tokens - {self.target_token}

    def make_ring(self, mixins: Iterable[str], rid: str = "r_tau") -> Ring:
        """Assemble the candidate ring t_tau ∪ mixins."""
        tokens = frozenset(mixins) | {self.target_token}
        return Ring(rid=rid, tokens=tokens, c=self.c, ell=self.ell, seq=self._next_seq)

    def related_rings(self, candidate: Ring) -> list[Ring]:
        """R_pi^{r_tau}: the related RS set of the candidate (Definition 1)."""
        return related_ring_set(candidate, self.rings)


def check_diversity_constraint(
    candidate: Ring,
    closure: Sequence[Ring],
    universe: TokenUniverse,
) -> bool:
    """Exact Definition 4 check for the new ring (both conditions)."""
    if not ht_counts_satisfy(universe.ht_counts(candidate.tokens), candidate.c, candidate.ell):
        return False
    for dtrs in get_dtrss(candidate, closure, universe):
        if not ht_counts_satisfy(universe.ht_counts(dtrs.tokens), candidate.c, candidate.ell):
            return False
    return True


def check_non_eliminated_constraint(
    closure: Sequence[Ring],
) -> bool:
    """No token of any ring in the closure may be eliminated.

    Polynomial: for every ring r and token t in r there must exist a
    token-RS combination assigning t to r.  One maximum matching is
    built for the whole closure and each (r, t) query is an
    augmenting-path repair on it.
    """
    from .perf.matching import IncrementalMatcher

    matcher = IncrementalMatcher(closure)
    return all(matcher.non_eliminated(ring.rid) for ring in closure)


def check_immutability_constraint(
    candidate: Ring,
    closure: Sequence[Ring],
    universe: TokenUniverse,
) -> bool:
    """Every existing related ring *maintains* its claimed (c_i, l_i)-diversity.

    Exact (exponential): a ring that satisfied Definition 4 before the
    candidate was proposed must still satisfy it afterwards.  Rings that
    already violated their own claim beforehand cannot be broken by the
    newcomer, so they do not constrain it ("maintain" in Definition 5).
    """
    before = [ring for ring in closure if ring.rid != candidate.rid]
    for ring in before:
        held_before = _ring_diverse_in(ring, before, universe)
        if not held_before:
            continue
        if not _ring_diverse_in(ring, closure, universe):
            return False
    return True


def _ring_diverse_in(
    ring: Ring, closure: Sequence[Ring], universe: TokenUniverse
) -> bool:
    """Definition 4 for ``ring`` under its own claim, within ``closure``."""
    if not ht_counts_satisfy(universe.ht_counts(ring.tokens), ring.c, ring.ell):
        return False
    for dtrs in get_dtrss(ring, closure, universe):
        if not ht_counts_satisfy(universe.ht_counts(dtrs.tokens), ring.c, ring.ell):
            return False
    return True


def is_feasible_exact(instance: DamsInstance, mixins: Iterable[str]) -> bool:
    """Do ``mixins`` give a ring satisfying all three DA-MS constraints?

    This is the decision version DDA-MS of Theorem 3.1 — exponential in
    general, intended for small instances and cross-checking tests.
    """
    candidate = instance.make_ring(mixins)
    related = instance.related_rings(candidate)
    closure = related + [candidate]
    return (
        check_diversity_constraint(candidate, closure, instance.universe)
        and check_non_eliminated_constraint(closure)
        and check_immutability_constraint(candidate, closure, instance.universe)
    )
