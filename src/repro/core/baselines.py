"""The paper's two baseline selectors — Smallest (TM_S) and Random (TM_R).

Section 7.1: the Smallest algorithm repeatedly adds the smallest
remaining module (super RS or fresh token) until the ring is eligible;
the Random algorithm repeatedly adds a uniformly random remaining
module until eligible.  "Eligible" means the ring's HT multiset
satisfies the recursive (c, l)-diversity requirement — the same target
the Progressive and Game-theoretic selectors aim for, just without any
diversity-aware scoring.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from .diversity import ht_counts_satisfy
from .modules import Module, ModuleUniverse
from .problem import InfeasibleError
from .selector import SelectionResult, register_selector

__all__ = ["smallest_select", "random_select"]

PickFn = Callable[[list[Module]], Module]


def _grow_until_eligible(
    modules: ModuleUniverse,
    target_token: str,
    c: float,
    ell: int,
    pick: PickFn,
    algorithm: str,
) -> SelectionResult:
    """Common loop: add modules chosen by ``pick`` until diversity holds."""
    start = time.perf_counter()
    universe = modules.universe
    anchor = modules.module_of(target_token)
    available: list[Module] = modules.others(anchor)
    chosen: list[Module] = [anchor]
    tokens: set[str] = set(anchor.tokens)

    while not ht_counts_satisfy(universe.ht_counts(tokens), c, ell):
        if not available:
            raise InfeasibleError(
                f"universe exhausted before ({c}, {ell})-diversity was met "
                f"for token {target_token!r}"
            )
        module = pick(available)
        available.remove(module)
        chosen.append(module)
        tokens |= module.tokens

    return SelectionResult(
        tokens=frozenset(tokens),
        target_token=target_token,
        modules=tuple(module.mid for module in chosen),
        elapsed=time.perf_counter() - start,
        algorithm=algorithm,
    )


@register_selector("smallest")
def smallest_select(
    modules: ModuleUniverse,
    target_token: str,
    c: float,
    ell: int,
    rng: random.Random | None = None,
) -> SelectionResult:
    """TM_S: repeatedly add the smallest module until eligible."""
    del rng

    def pick(available: list[Module]) -> Module:
        return min(available, key=lambda module: (len(module.tokens), module.mid))

    return _grow_until_eligible(modules, target_token, c, ell, pick, "smallest")


@register_selector("random")
def random_select(
    modules: ModuleUniverse,
    target_token: str,
    c: float,
    ell: int,
    rng: random.Random | None = None,
) -> SelectionResult:
    """TM_R: repeatedly add a uniformly random module until eligible."""
    generator = rng if rng is not None else random.Random()

    def pick(available: list[Module]) -> Module:
        return available[generator.randrange(len(available))]

    return _grow_until_eligible(modules, target_token, c, ell, pick, "random")
