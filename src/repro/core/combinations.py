"""Token-RS combinations: systems of distinct representatives over rings.

Definition 6 of the paper: a *token-RS combination* of a ring set R is
an injective assignment of one consumed token to every ring, i.e. a
perfect matching of R into the token universe (this is exactly why the
decision problem reduces from counting perfect matchings, Theorem 3.1).

Two views are provided:

* :func:`enumerate_combinations` — full enumeration, needed by the
  DTRS computation of Algorithm 3 (exponential; the paper's Figure 4
  measures exactly this blow-up);
* matching-based polynomial predicates
  (:func:`has_complete_assignment`, :func:`possible_consumed_tokens`)
  that answer "can ring r consume token t in *some* valid world?" —
  which is all the non-eliminated constraint needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .ring import Ring

__all__ = [
    "enumerate_combinations",
    "count_combinations",
    "has_complete_assignment",
    "possible_consumed_tokens",
    "eliminated_tokens",
]


def _candidate_lists(
    rings: Sequence[Ring],
    forced: Mapping[str, str] | None = None,
    excluded_tokens: Iterable[str] = (),
) -> list[list[str]] | None:
    """Per-ring candidate token lists after applying constraints.

    Returns None if some ring has no candidates left (no valid world).
    """
    forced = dict(forced or {})
    excluded = set(excluded_tokens)
    candidates: list[list[str]] = []
    for ring in rings:
        if ring.rid in forced:
            token = forced[ring.rid]
            if token not in ring.tokens or token in excluded:
                return None
            candidates.append([token])
        else:
            usable = sorted(ring.tokens - excluded)
            if not usable:
                return None
            candidates.append(usable)
    return candidates


def enumerate_combinations(
    rings: Sequence[Ring],
    forced: Mapping[str, str] | None = None,
    excluded_tokens: Iterable[str] = (),
    limit: int | None = None,
) -> Iterator[dict[str, str]]:
    """Yield every token-RS combination of ``rings`` as {rid: token}.

    Args:
        rings: the ring set R (order is irrelevant to the result).
        forced: known token-RS pairs (adversary side information or a
            hypothesis being tested); each forces one ring's token.
        excluded_tokens: tokens known consumed in rings *outside* R.
        limit: stop after this many combinations (safety valve for
            callers that only need to know "more than k exist").

    Backtracking assigns most-constrained rings first, which keeps the
    common sparse instances fast even though the worst case is
    exponential by Theorem 3.1.
    """
    candidates = _candidate_lists(rings, forced, excluded_tokens)
    if candidates is None:
        return
    order = sorted(range(len(rings)), key=lambda i: len(candidates[i]))
    used: set[str] = set()
    assignment: dict[str, str] = {}
    emitted = 0

    def backtrack(position: int) -> Iterator[dict[str, str]]:
        nonlocal emitted
        if limit is not None and emitted >= limit:
            return
        if position == len(order):
            emitted += 1
            yield dict(assignment)
            return
        ring_index = order[position]
        ring = rings[ring_index]
        for token in candidates[ring_index]:
            if token in used:
                continue
            used.add(token)
            assignment[ring.rid] = token
            yield from backtrack(position + 1)
            used.discard(token)
            del assignment[ring.rid]
            if limit is not None and emitted >= limit:
                return

    yield from backtrack(0)


def count_combinations(
    rings: Sequence[Ring],
    forced: Mapping[str, str] | None = None,
    excluded_tokens: Iterable[str] = (),
    limit: int | None = None,
) -> int:
    """Count token-RS combinations (up to ``limit`` if given)."""
    total = 0
    for _ in enumerate_combinations(rings, forced, excluded_tokens, limit=limit):
        total += 1
    return total


def has_complete_assignment(
    rings: Sequence[Ring],
    forced: Mapping[str, str] | None = None,
    excluded_tokens: Iterable[str] = (),
) -> bool:
    """Polynomial check: does *any* token-RS combination exist?

    Uses Kuhn's augmenting-path maximum bipartite matching (via
    :class:`~repro.core.perf.matching.IncrementalMatcher`).  Forced
    pairs are honoured by shrinking the forced ring's candidate list to
    a single token.
    """
    from .perf.matching import IncrementalMatcher

    return IncrementalMatcher(rings, forced, excluded_tokens).complete


def possible_consumed_tokens(
    target: Ring,
    rings: Sequence[Ring],
    forced: Mapping[str, str] | None = None,
    excluded_tokens: Iterable[str] = (),
) -> frozenset[str]:
    """Tokens ``target`` can consume in at least one valid world.

    ``rings`` must contain ``target``.  A token survives iff forcing
    target -> token still leaves a complete assignment for all rings —
    answered with one base matching plus an augmenting-path repair per
    token, not a fresh matching per token.  Callers querying *many*
    rings of the same set should hold one
    :class:`~repro.core.perf.matching.IncrementalMatcher` instead.
    """
    from .perf.matching import IncrementalMatcher

    if all(ring.rid != target.rid for ring in rings):
        raise ValueError("target ring must be a member of the ring set")
    return IncrementalMatcher(rings, forced, excluded_tokens).possible_tokens(
        target.rid
    )


def eliminated_tokens(
    target: Ring,
    rings: Sequence[Ring],
    forced: Mapping[str, str] | None = None,
    excluded_tokens: Iterable[str] = (),
) -> frozenset[str]:
    """Tokens of ``target`` ruled out by chain-reaction analysis."""
    return frozenset(target.tokens) - possible_consumed_tokens(
        target, rings, forced, excluded_tokens
    )
