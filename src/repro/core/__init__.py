"""Core of the paper's contribution: DA-MS semantics, solvers, selectors.

Public surface:

* data model — :class:`Ring`, :class:`TokenUniverse`, :class:`RingSet`,
  :func:`related_ring_set`;
* privacy semantics — recursive (c, l)-diversity tests, token-RS
  combinations, DTRS enumeration;
* the DA-MS problem — :class:`DamsInstance` and exact constraint checks;
* solvers — :func:`bfs_select` (exact, Algorithm 2),
  :func:`progressive_select` (Algorithm 4), :func:`game_select`
  (Algorithm 5), :func:`smallest_select` / :func:`random_select`
  (the TM_S / TM_R baselines);
* the practical configurations — :class:`ModuleUniverse`,
  Theorem 6.1's polynomial DTRS check and the second configuration's
  l+1 rule.
"""

from .baselines import random_select, smallest_select
from .bfs import BfsResult, SearchBudgetExceeded, bfs_select
from .combinations import (
    count_combinations,
    eliminated_tokens,
    enumerate_combinations,
    has_complete_assignment,
    possible_consumed_tokens,
)
from .diversity import (
    diversity_deficit,
    ht_counts_deficit,
    ht_counts_satisfy,
    most_frequent_count,
    satisfies_recursive_diversity,
    sorted_frequencies,
)
from .dtrs import Dtrs, get_dtrss, ring_is_recursive_diverse_exact
from .game import game_select
from .modules import (
    Module,
    ModuleUniverse,
    find_fresh_tokens,
    find_super_rings,
    is_superset_or_disjoint,
    ring_is_recursive_diverse_config,
    second_config_ell,
    subset_count,
    theorem61_dtrs_token_sets,
)
from .problem import (
    DamsInstance,
    InfeasibleError,
    check_diversity_constraint,
    check_immutability_constraint,
    check_non_eliminated_constraint,
    is_feasible_exact,
)
from .progressive import progressive_select
from .relaxation import RelaxationStep, relaxation_schedule, select_with_relaxation
from .ring import Ring, RingSet, TokenUniverse, related_ring_set
from .selector import SELECTORS, SelectionResult, get_selector, register_selector

__all__ = [
    "Ring",
    "RingSet",
    "TokenUniverse",
    "related_ring_set",
    "satisfies_recursive_diversity",
    "sorted_frequencies",
    "diversity_deficit",
    "ht_counts_satisfy",
    "ht_counts_deficit",
    "most_frequent_count",
    "enumerate_combinations",
    "count_combinations",
    "has_complete_assignment",
    "possible_consumed_tokens",
    "eliminated_tokens",
    "Dtrs",
    "get_dtrss",
    "ring_is_recursive_diverse_exact",
    "DamsInstance",
    "InfeasibleError",
    "check_diversity_constraint",
    "check_non_eliminated_constraint",
    "check_immutability_constraint",
    "is_feasible_exact",
    "BfsResult",
    "SearchBudgetExceeded",
    "bfs_select",
    "Module",
    "ModuleUniverse",
    "find_super_rings",
    "find_fresh_tokens",
    "subset_count",
    "is_superset_or_disjoint",
    "theorem61_dtrs_token_sets",
    "ring_is_recursive_diverse_config",
    "second_config_ell",
    "progressive_select",
    "game_select",
    "smallest_select",
    "random_select",
    "SelectionResult",
    "SELECTORS",
    "get_selector",
    "register_selector",
    "RelaxationStep",
    "relaxation_schedule",
    "select_with_relaxation",
]
