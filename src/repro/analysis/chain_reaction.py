"""Chain-reaction analysis: the adversary of Sections 1-2.

Because every token is consumed exactly once, the set of rings forms a
constraint system whose valid worlds are the token-RS combinations.
Two attack strengths are implemented:

* :func:`cascade_attack` — the classic iterated-elimination cascade
  used against Monero in practice ("zero-mixin" analysis): any ring
  whose possible tokens shrink to one is deanonymized, and its token is
  removed from all other rings, possibly cascading.
* :func:`exact_analysis` — the information-theoretic optimum: a token
  stays possible for a ring iff some complete token-RS combination
  assigns it (matching-based, polynomial).  Everything the cascade
  finds, this finds; the converse fails on instances needing the
  Theorem 4.1 group rule.

Both honour adversary side information (known token-RS pairs, the
paper's Definition 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.perf.matching import IncrementalMatcher
from ..obs import events, trace
from ..core.perf.parallel import parallel_map_rings, resolve_workers
from ..core.ring import Ring

__all__ = ["AttackResult", "cascade_attack", "exact_analysis"]


@dataclass(slots=True)
class AttackResult:
    """Outcome of a chain-reaction attack over a ring set.

    Attributes:
        possible: rid -> tokens still possible as the consumed token.
        deanonymized: rid -> token, for rings pinned to one token.
        eliminated: rid -> tokens ruled out by the analysis.
    """

    possible: dict[str, frozenset[str]] = field(default_factory=dict)
    deanonymized: dict[str, str] = field(default_factory=dict)
    eliminated: dict[str, frozenset[str]] = field(default_factory=dict)

    @property
    def deanonymization_rate(self) -> float:
        """Fraction of rings whose consumed token the adversary knows."""
        if not self.possible:
            return 0.0
        return len(self.deanonymized) / len(self.possible)

    def effective_ring_size(self, rid: str) -> int:
        """Mixins surviving the attack + 1 (the anonymity-set size)."""
        return len(self.possible[rid])


def cascade_attack(
    rings: Sequence[Ring],
    side_information: Mapping[str, str] | None = None,
) -> AttackResult:
    """Iterated-elimination cascade over ``rings``.

    Args:
        rings: all rings visible to the adversary.
        side_information: known {rid: token} pairs (Definition 3);
            each pins its ring and removes the token everywhere else.
    """
    with trace.span("attack.cascade", rings=len(rings)) as sp:
        possible: dict[str, set[str]] = {
            ring.rid: set(ring.tokens) for ring in rings
        }
        known = dict(side_information or {})
        for rid, token in known.items():
            if rid in possible:
                possible[rid] = {token}

        rounds = 0
        changed = True
        while changed:
            rounds += 1
            changed = False
            for rid, tokens in possible.items():
                if len(tokens) != 1:
                    continue
                consumed = next(iter(tokens))
                for other_rid, other_tokens in possible.items():
                    if other_rid != rid and consumed in other_tokens:
                        other_tokens.discard(consumed)
                        changed = True
        result = _result_from_possible(
            {ring.rid: ring for ring in rings}, possible
        )
        if sp is not None:
            sp.attrs["rounds"] = rounds
            sp.attrs["deanonymized"] = len(result.deanonymized)
        if events.enabled():
            events.emit(
                events.AttackAnalyzed(
                    kind="cascade",
                    rings=len(rings),
                    deanonymized=len(result.deanonymized),
                )
            )
        return result


def exact_analysis(
    rings: Sequence[Ring],
    side_information: Mapping[str, str] | None = None,
    workers: int = 0,
) -> AttackResult:
    """Matching-based exact possibility analysis.

    A token t is possible for ring r iff forcing r -> t (together with
    all side information) still admits a complete token-RS combination.
    One maximum matching is shared by every query; each query is a
    single augmenting-path repair.

    Args:
        workers: fan the per-ring sweep across this many processes
            (<= 1 means serial).  The result is identical either way —
            each ring's possible set is independent of sweep order.

    Example — a zero-mixin ring pins itself, and because every token
    is consumed exactly once, it drags its neighbour down with it:

        >>> from repro.core.ring import Ring
        >>> rings = [
        ...     Ring("r1", frozenset({"t1"}), c=1.0, ell=1, seq=0),
        ...     Ring("r2", frozenset({"t1", "t2"}), c=1.0, ell=1, seq=1)]
        >>> result = exact_analysis(rings)
        >>> result.deanonymized == {"r1": "t1", "r2": "t2"}
        True
        >>> result.deanonymization_rate
        1.0
    """
    with trace.span("attack.exact", rings=len(rings), workers=workers) as sp:
        forced = dict(side_information or {})
        by_rid = {ring.rid: ring for ring in rings}
        matcher = IncrementalMatcher(rings, forced)
        if not matcher.complete:
            # Contradictory side information: nothing is possible.
            return _result_from_possible(
                by_rid, {ring.rid: set() for ring in rings}
            )
        workers = resolve_workers(workers)
        if workers:
            fanned = parallel_map_rings(rings, forced, workers)
            possible = {rid: set(tokens) for rid, tokens in fanned.items()}
        else:
            possible = {
                ring.rid: set(matcher.possible_tokens(ring.rid))
                for ring in rings
            }
        result = _result_from_possible(by_rid, possible)
        if sp is not None:
            sp.attrs["deanonymized"] = len(result.deanonymized)
        if events.enabled():
            events.emit(
                events.AttackAnalyzed(
                    kind="exact",
                    rings=len(rings),
                    deanonymized=len(result.deanonymized),
                )
            )
        return result


def _result_from_possible(
    rings_by_rid: Mapping[str, Ring], possible: dict[str, set[str]]
) -> AttackResult:
    result = AttackResult()
    for rid, tokens in possible.items():
        result.possible[rid] = frozenset(tokens)
        result.eliminated[rid] = frozenset(rings_by_rid[rid].tokens) - frozenset(tokens)
        if len(tokens) == 1:
            result.deanonymized[rid] = next(iter(tokens))
    return result
