"""A side-information adversary (Definition 3, Theorem 6.2).

The adversary directly knows some token-RS pairs (SI#, e.g. rings it
generated itself) and infers more (SI*) via chain-reaction analysis and
DTRS elimination.  :class:`Adversary` packages that workflow and the
Theorem 6.2 safety threshold: a ring r_i resists HT confirmation as
long as the adversary's side information holds fewer than
|r_i| - q_M pairs, q_M being the multiplicity of r_i's most frequent
HT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.diversity import most_frequent_count
from ..core.ring import Ring, TokenUniverse
from .chain_reaction import AttackResult, exact_analysis
from .homogeneity import HomogeneityResult, homogeneity_attack

__all__ = ["Adversary", "theorem62_threshold"]


def theorem62_threshold(ring: Ring, universe: TokenUniverse) -> int:
    """|r_i| - q_M: the side-information size below which the HT of
    ``ring``'s consumed token cannot be confirmed (Theorem 6.2)."""
    counts = universe.ht_counts(ring.tokens)
    return len(ring.tokens) - most_frequent_count(counts)


@dataclass(slots=True)
class Adversary:
    """An adversary accumulating side information over a ring set.

    Attributes:
        universe: token -> HT labels.
        known_pairs: SI# — directly known {rid: token} assignments.
    """

    universe: TokenUniverse
    known_pairs: dict[str, str] = field(default_factory=dict)

    def learn(self, rid: str, token: str) -> None:
        """Add one revealed token-RS pair to SI#."""
        existing = self.known_pairs.get(rid)
        if existing is not None and existing != token:
            raise ValueError(f"contradictory side information for ring {rid!r}")
        self.known_pairs[rid] = token

    @property
    def side_information_size(self) -> int:
        return len(self.known_pairs)

    def analyze(self, rings: Sequence[Ring]) -> AttackResult:
        """Chain-reaction analysis under the current side information."""
        return exact_analysis(rings, self.known_pairs)

    def inferred_pairs(self, rings: Sequence[Ring]) -> dict[str, str]:
        """SI*: pairs the adversary derives beyond what it was given."""
        analysis = self.analyze(rings)
        return {
            rid: token
            for rid, token in analysis.deanonymized.items()
            if rid not in self.known_pairs
        }

    def source_hts(self, rings: Sequence[Ring]) -> HomogeneityResult:
        """HTs revealed by the homogeneity attack under current SI."""
        return homogeneity_attack(
            rings, self.universe, side_information=self.known_pairs
        )

    def can_confirm_ht(self, ring: Ring, rings: Sequence[Ring]) -> bool:
        """Does the adversary currently know ``ring``'s source HT?"""
        result = self.source_hts(rings)
        return ring.rid in result.revealed

    def is_safe_by_theorem62(self, ring: Ring) -> bool:
        """Guaranteed-safe check: |SI| below the Theorem 6.2 threshold."""
        return self.side_information_size < theorem62_threshold(ring, self.universe)
