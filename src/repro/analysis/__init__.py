"""The adversary substrate: attacks and anonymity metrics.

Implements the threat model of Section 2 — chain-reaction analysis
(cascade and exact matching-based variants), the homogeneity attack,
side-information adversaries with the Theorem 6.2 threshold — plus the
anonymity metrics the benchmarks report.
"""

from .adversary import Adversary, theorem62_threshold
from .chain_reaction import AttackResult, cascade_attack, exact_analysis
from .homogeneity import HomogeneityResult, homogeneity_attack, ht_distribution
from .metrics import (
    PopulationMetrics,
    RingAnonymity,
    population_metrics,
    ring_anonymity,
    total_fee,
)
from .temporal import ErosionEvent, TimelinePoint, anonymity_timeline, erosion_events

__all__ = [
    "Adversary",
    "theorem62_threshold",
    "AttackResult",
    "cascade_attack",
    "exact_analysis",
    "HomogeneityResult",
    "homogeneity_attack",
    "ht_distribution",
    "PopulationMetrics",
    "RingAnonymity",
    "population_metrics",
    "ring_anonymity",
    "total_fee",
    "TimelinePoint",
    "ErosionEvent",
    "anonymity_timeline",
    "erosion_events",
]
