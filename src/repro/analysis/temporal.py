"""Temporal anonymity: how a ring's privacy evolves after blocking.

Section 3.1 of the paper opens with the observation that "after a RS
is blocked on the blockchain, its DTRSs and its anonymity may still be
changed" — later rings can erode (or, under the immutability
constraint, must not erode) the anonymity of earlier ones.

:func:`anonymity_timeline` replays a ring sequence in proposal order
and records, after every prefix, each ring's effective anonymity-set
size — the data behind "did ring r get worse when ring r' arrived?".
:func:`erosion_events` extracts exactly those degradation moments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.ring import Ring
from .chain_reaction import exact_analysis

__all__ = ["TimelinePoint", "ErosionEvent", "anonymity_timeline", "erosion_events"]


@dataclass(frozen=True, slots=True)
class TimelinePoint:
    """Effective anonymity of one ring after one prefix of proposals.

    Attributes:
        step: how many rings had been proposed (prefix length).
        rid: the measured ring.
        effective_size: tokens still possible as its consumed token.
    """

    step: int
    rid: str
    effective_size: int


@dataclass(frozen=True, slots=True)
class ErosionEvent:
    """A moment when a newcomer shrank an existing ring's anonymity."""

    step: int
    culprit_rid: str
    victim_rid: str
    before: int
    after: int

    @property
    def fully_deanonymized(self) -> bool:
        return self.after <= 1


def anonymity_timeline(rings: Sequence[Ring]) -> list[TimelinePoint]:
    """Effective anonymity of every ring after every proposal prefix.

    Rings are replayed in their given order (callers should sort by
    ``seq``).  Output is ordered by (step, ring position).
    """
    timeline: list[TimelinePoint] = []
    for step in range(1, len(rings) + 1):
        prefix = rings[:step]
        analysis = exact_analysis(prefix)
        for ring in prefix:
            timeline.append(
                TimelinePoint(
                    step=step,
                    rid=ring.rid,
                    effective_size=len(analysis.possible[ring.rid]),
                )
            )
    return timeline


def erosion_events(rings: Sequence[Ring]) -> list[ErosionEvent]:
    """All (culprit, victim) anonymity degradations in the sequence.

    An event records the newcomer at ``step`` reducing an *earlier*
    ring's effective size.  A ring sequence generated under the DA-MS
    immutability constraint produces far fewer (ideally zero
    size-1-reaching) events than naive selection — the claim the
    policy ablation measures.
    """
    events: list[ErosionEvent] = []
    previous: dict[str, int] = {}
    for step in range(1, len(rings) + 1):
        prefix = rings[:step]
        analysis = exact_analysis(prefix)
        culprit = prefix[-1]
        for ring in prefix[:-1]:
            now = len(analysis.possible[ring.rid])
            before = previous.get(ring.rid, len(ring.tokens))
            if now < before:
                events.append(
                    ErosionEvent(
                        step=step,
                        culprit_rid=culprit.rid,
                        victim_rid=ring.rid,
                        before=before,
                        after=now,
                    )
                )
        for ring in prefix:
            previous[ring.rid] = len(analysis.possible[ring.rid])
    return events
