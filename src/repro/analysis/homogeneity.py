"""The homogeneity attack (Section 1, attributed to t-closeness work).

Even when the exact consumed token stays hidden, the *historical
transaction* of the consumed token may leak: if every still-possible
token of a ring comes from the same HT, the adversary learns the ring
spender is a receiver of that HT.  More gradually, the HT distribution
over possible tokens quantifies how much the source is narrowed down.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.ring import Ring, TokenUniverse
from .chain_reaction import AttackResult, exact_analysis

__all__ = ["HomogeneityResult", "homogeneity_attack", "ht_distribution"]


@dataclass(frozen=True, slots=True)
class HomogeneityResult:
    """Per-ring outcome of the homogeneity attack.

    Attributes:
        revealed: rid -> HT, for rings whose source HT is certain.
        ht_support: rid -> number of distinct HTs still possible.
    """

    revealed: dict[str, str]
    ht_support: dict[str, int]

    @property
    def revelation_rate(self) -> float:
        """Fraction of rings whose source HT leaked."""
        if not self.ht_support:
            return 0.0
        return len(self.revealed) / len(self.ht_support)


def ht_distribution(
    possible_tokens: frozenset[str], universe: TokenUniverse
) -> Counter[str]:
    """HT multiset over the still-possible tokens of one ring."""
    return universe.ht_counts(possible_tokens)


def homogeneity_attack(
    rings: Sequence[Ring],
    universe: TokenUniverse,
    side_information: Mapping[str, str] | None = None,
    chain_reaction: AttackResult | None = None,
) -> HomogeneityResult:
    """Run the homogeneity attack on top of chain-reaction elimination.

    Args:
        rings: the visible rings.
        universe: token -> HT labels.
        side_information: known token-RS pairs.
        chain_reaction: a precomputed elimination result to reuse
            (defaults to running :func:`exact_analysis`).
    """
    analysis = (
        chain_reaction
        if chain_reaction is not None
        else exact_analysis(rings, side_information)
    )
    revealed: dict[str, str] = {}
    support: dict[str, int] = {}
    for ring in rings:
        possible = analysis.possible[ring.rid]
        hts = {universe.ht_of(token) for token in possible}
        support[ring.rid] = len(hts)
        if len(hts) == 1 and possible:
            revealed[ring.rid] = next(iter(hts))
    return HomogeneityResult(revealed=revealed, ht_support=support)
