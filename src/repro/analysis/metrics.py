"""Anonymity metrics over ring sets.

Quantities used by the evaluation benches and the ablation studies:

* **effective ring size** — possible tokens surviving chain-reaction
  analysis (the ring's real anonymity set);
* **anonymity entropy** — Shannon entropy of a uniform distribution
  over the surviving tokens (adversaries cannot estimate the spender's
  sampling distribution, Section 2.4, so uniform is the right prior);
* **HT entropy** — entropy over the HT labels of surviving tokens
  (what the homogeneity attack reduces);
* **deanonymization / revelation rates** across a ring population;
* **total fee** — the economic cost the paper's minimization targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..chain.transaction import FEE_PER_MIXIN
from ..core.ring import Ring, TokenUniverse
from .chain_reaction import AttackResult, cascade_attack, exact_analysis
from .homogeneity import homogeneity_attack

__all__ = [
    "RingAnonymity",
    "PopulationMetrics",
    "ring_anonymity",
    "population_metrics",
    "total_fee",
]


@dataclass(frozen=True, slots=True)
class RingAnonymity:
    """Anonymity measures of one ring after chain-reaction analysis."""

    rid: str
    nominal_size: int
    effective_size: int
    token_entropy: float
    ht_entropy: float

    @property
    def fully_deanonymized(self) -> bool:
        return self.effective_size <= 1


@dataclass(frozen=True, slots=True)
class PopulationMetrics:
    """Aggregate anonymity over a ring population."""

    ring_count: int
    mean_nominal_size: float
    mean_effective_size: float
    mean_token_entropy: float
    mean_ht_entropy: float
    deanonymization_rate: float
    ht_revelation_rate: float
    total_fee: int


def _entropy(count: int) -> float:
    """Entropy (bits) of a uniform distribution over ``count`` outcomes."""
    return math.log2(count) if count > 0 else 0.0


def _ht_entropy(possible: frozenset[str], universe: TokenUniverse) -> float:
    counts = universe.ht_counts(possible)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for value in counts.values():
        p = value / total
        entropy -= p * math.log2(p)
    return entropy


def ring_anonymity(
    ring: Ring,
    analysis: AttackResult,
    universe: TokenUniverse,
) -> RingAnonymity:
    """Per-ring anonymity from a precomputed attack result."""
    possible = analysis.possible[ring.rid]
    return RingAnonymity(
        rid=ring.rid,
        nominal_size=len(ring.tokens),
        effective_size=len(possible),
        token_entropy=_entropy(len(possible)),
        ht_entropy=_ht_entropy(possible, universe),
    )


def population_metrics(
    rings: Sequence[Ring],
    universe: TokenUniverse,
    side_information: Mapping[str, str] | None = None,
    exact: bool = True,
) -> PopulationMetrics:
    """Run the attacks and aggregate anonymity over ``rings``.

    Args:
        rings: the ring population to attack.
        universe: token -> HT labels.
        side_information: adversary-known pairs.
        exact: use :func:`exact_analysis` (True) or the weaker
            :func:`cascade_attack` (False).
    """
    if not rings:
        raise ValueError("cannot compute metrics over zero rings")
    attack = exact_analysis if exact else cascade_attack
    analysis = attack(rings, side_information)
    homogeneity = homogeneity_attack(
        rings, universe, side_information, chain_reaction=analysis
    )
    per_ring = [ring_anonymity(ring, analysis, universe) for ring in rings]
    n = len(per_ring)
    return PopulationMetrics(
        ring_count=n,
        mean_nominal_size=sum(r.nominal_size for r in per_ring) / n,
        mean_effective_size=sum(r.effective_size for r in per_ring) / n,
        mean_token_entropy=sum(r.token_entropy for r in per_ring) / n,
        mean_ht_entropy=sum(r.ht_entropy for r in per_ring) / n,
        deanonymization_rate=analysis.deanonymization_rate,
        ht_revelation_rate=homogeneity.revelation_rate,
        total_fee=total_fee(rings),
    )


def total_fee(rings: Sequence[Ring]) -> int:
    """Total fee of a ring population (proportional to mixin counts)."""
    return FEE_PER_MIXIN * sum(len(ring.tokens) - 1 for ring in rings)
