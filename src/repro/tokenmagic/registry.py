"""Per-batch ring registry: neighbor sets, Theorem 4.1 inference, eta rule.

Section 4 of the paper keeps, per token, a *neighbor set* — the rings
containing the token, in proposal order.  Theorem 4.1 says: whenever
the union of a neighbor set's rings has exactly as many tokens as there
are rings, every token in the union is provably consumed.  The closure
of that rule yields mu_i, the number of infer-able consumed tokens
after i rings, and TokenMagic only admits a new ring while

    i - mu_i >= eta * (|T| - i)

so that future spenders can still find eligible rings (the reserve
requirement at the end of Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.ring import Ring, TokenUniverse
from ..obs import events, trace
from .batch import Batch

__all__ = [
    "BatchRegistry",
    "ReserveViolation",
    "consumed_closure",
    "neighbor_set_consumed",
]


class ReserveViolation(RuntimeError):
    """Admitting the ring would break the eta reserve requirement."""


def consumed_closure(rings: list[Ring]) -> frozenset[str]:
    """Tokens provably consumed: the full closure of the Theorem 4.1 rule.

    Theorem 4.1: any group of rings R* with |union(R*)| == |R*| has all
    its tokens consumed.  The exact characterization of "provably
    consumed" is matching-based and polynomial: token t is consumed in
    *every* valid world iff no complete token-RS assignment avoids t.
    This strictly generalizes the paper's per-token neighbor-set
    detection (see :func:`neighbor_set_consumed`), which misses tight
    groups not anchored at a single shared token (e.g. the triangle
    {a,b}, {b,c}, {a,c}).
    """
    from ..core.combinations import has_complete_assignment

    if not rings:
        return frozenset()
    with trace.span("registry.consumed_closure", rings=len(rings)) as sp:
        if not has_complete_assignment(rings):
            # Contradictory ring set (cannot arise on a valid chain);
            # treat every ring token as consumed so callers fail safe.
            tokens: set[str] = set()
            for ring in rings:
                tokens |= ring.tokens
            return frozenset(tokens)
        consumed: set[str] = set()
        candidates: set[str] = set()
        for ring in rings:
            candidates |= ring.tokens
        for token in candidates:
            if not has_complete_assignment(rings, excluded_tokens={token}):
                consumed.add(token)
        if sp is not None:
            sp.attrs["consumed"] = len(consumed)
        if events.enabled():
            events.emit(
                events.NeighborInference(rings=len(rings), consumed=len(consumed))
            )
        return frozenset(consumed)


def neighbor_set_consumed(rings: list[Ring]) -> frozenset[str]:
    """The paper's per-token neighbor-set detection (Section 4).

    For each token t, take ns_t = rings containing t and the union of
    their token sets T#; if |T#| == |ns_t| the Theorem 4.1 condition
    fires and all of T# is consumed.  Cheaper than the full closure but
    a sound under-approximation of :func:`consumed_closure`.
    """
    consumed: set[str] = set()
    neighbor_sets: dict[str, list[Ring]] = {}
    for ring in rings:
        for token in ring.tokens:
            neighbor_sets.setdefault(token, []).append(ring)
    for group in neighbor_sets.values():
        union: set[str] = set()
        for ring in group:
            union |= ring.tokens
        if len(union) == len(group):
            consumed |= union
    return frozenset(consumed)


@dataclass(slots=True)
class BatchRegistry:
    """Tracks the rings proposed over one batch and enforces the eta rule.

    Attributes:
        batch: the batch whose token universe this registry guards.
        eta: the reserve parameter (0 disables the rule).
        lambda_effective: the |T| stand-in for still-filling batches —
            the paper substitutes lambda + lambda' - 1 when a batch has
            fewer than lambda tokens; we take lambda' = lambda unless
            the caller overrides.
    """

    batch: Batch
    eta: float = 0.0
    lambda_effective: int | None = None
    rings: list[Ring] = field(default_factory=list)

    @property
    def universe(self) -> TokenUniverse:
        return self.batch.universe

    @property
    def universe_size(self) -> int:
        """|T| with the incomplete-batch substitution applied."""
        if self.batch.complete or self.lambda_effective is None:
            return len(self.batch.universe)
        return self.lambda_effective

    def consumed_tokens(self) -> frozenset[str]:
        """mu's witness set: tokens provably consumed so far."""
        return consumed_closure(self.rings)

    def reserve_ok(self, extra_ring: Ring | None = None) -> bool:
        """Check i - mu_i >= eta * (|T| - i), optionally with one more ring."""
        rings = self.rings + ([extra_ring] if extra_ring is not None else [])
        i = len(rings)
        mu = len(consumed_closure(rings))
        return (i - mu) >= self.eta * (self.universe_size - i)

    def admit(self, ring: Ring) -> None:
        """Record ``ring``, enforcing batch membership and the eta rule.

        Raises:
            KeyError: if the ring uses tokens outside the batch.
            ReserveViolation: if admitting it breaks the reserve rule.
        """
        for token in ring.tokens:
            if token not in self.batch:
                raise KeyError(
                    f"ring {ring.rid!r} uses token {token!r} outside batch "
                    f"{self.batch.index}"
                )
        if self.eta > 0 and not self.reserve_ok(ring):
            raise ReserveViolation(
                f"ring {ring.rid!r} would leave too few consumable tokens "
                f"(eta={self.eta})"
            )
        self.rings.append(ring)
