"""TokenMagic framework: batches, registries and Algorithm 1.

See Section 4 of the paper.  The framework bounds related RS sets by
partitioning the chain into token batches, infers provably-consumed
tokens through the Theorem 4.1 neighbor-set rule, enforces the eta
reserve requirement, and randomizes the final ring choice through
candidate sets so that deterministic selectors leak nothing.
"""

from .batch import Batch, batch_of_token, build_batches, rings_over_batch
from .framework import TokenMagic, TokenMagicConfig
from .registry import (
    BatchRegistry,
    ReserveViolation,
    consumed_closure,
    neighbor_set_consumed,
)

__all__ = [
    "Batch",
    "build_batches",
    "batch_of_token",
    "rings_over_batch",
    "TokenMagic",
    "TokenMagicConfig",
    "BatchRegistry",
    "ReserveViolation",
    "consumed_closure",
    "neighbor_set_consumed",
]
