"""Batch partitioning of the chain (Section 4, Figure 2).

TokenMagic partitions blocks into disjoint, sequential batches, each
holding at least ``lambda`` token outputs.  A token's mixin universe is
exactly the token set of its batch, so mixin universes of different
batches are disjoint — which bounds the related RS set of any ring by
the batch size and makes DTRS reasoning local.

The scan is the paper's: walk blocks in ascending order, close the
current batch as soon as its token count reaches lambda.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ring import Ring, TokenUniverse
from ..chain.blockchain import Blockchain

__all__ = ["Batch", "build_batches", "batch_of_token"]


@dataclass(frozen=True, slots=True)
class Batch:
    """One batch: a contiguous block range and its token universe.

    Attributes:
        index: batch position (0-based).
        first_height: height of the first block in the batch.
        last_height: height of the last block in the batch.
        universe: token -> HT map over the batch's token outputs.
        complete: False for the still-filling tail batch (fewer than
            lambda tokens so far).
    """

    index: int
    first_height: int
    last_height: int
    universe: TokenUniverse
    complete: bool

    def __contains__(self, token_id: str) -> bool:
        return token_id in self.universe

    @property
    def token_count(self) -> int:
        return len(self.universe)


def build_batches(chain: Blockchain, batch_lambda: int) -> list[Batch]:
    """Build the consensus batch list for ``chain``.

    Every node computes the same list because lambda is a public system
    parameter and the block list is agreed (Section 4).

    Args:
        chain: the blockchain to partition.
        batch_lambda: minimum tokens per batch (the paper's lambda).
    """
    if batch_lambda < 1:
        raise ValueError("lambda must be >= 1")
    batches: list[Batch] = []
    current: dict[str, str] = {}
    first_height = 0
    for block in chain.blocks:
        for tx in block.transactions:
            for output in tx.make_outputs():
                current[output.token_id] = output.origin_tx
        if len(current) >= batch_lambda:
            batches.append(
                Batch(
                    index=len(batches),
                    first_height=first_height,
                    last_height=block.height,
                    universe=TokenUniverse(current),
                    complete=True,
                )
            )
            current = {}
            first_height = block.height + 1
    if current:
        batches.append(
            Batch(
                index=len(batches),
                first_height=first_height,
                last_height=chain.height - 1,
                universe=TokenUniverse(current),
                complete=False,
            )
        )
    return batches


def batch_of_token(batches: list[Batch], token_id: str) -> Batch:
    """The batch whose universe contains ``token_id``.

    Raises:
        KeyError: if the token is in no batch.
    """
    for batch in batches:
        if token_id in batch:
            return batch
    raise KeyError(f"token {token_id!r} is in no batch")


def rings_over_batch(rings: list[Ring], batch: Batch) -> list[Ring]:
    """Rings selecting mixins from ``batch`` (their R_pi^T)."""
    return [ring for ring in rings if any(token in batch for token in ring.tokens)]
