"""The TokenMagic framework — Algorithm 1 (Section 4).

Ties the pieces together for one spend:

1. locate the batch of the consuming token (the mixin universe T),
2. gather the rings already proposed over that batch,
3. decompose them into modules under the practical configurations,
4. run a selector (BFS / Progressive / Game / Smallest / Random) and —
   in the paper-faithful *candidate mode* — run it for every token in
   T, collect each produced ring into the candidate sets of all its
   members, and answer with a uniformly random candidate of the target
   token, so adversaries cannot invert the deterministic selection.

The framework also exposes the Step-3 policy verifier the ledger can
install so miners reject rings violating the configurations.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..chain.blockchain import Blockchain
from ..chain.errors import ConfigurationViolation
from ..chain.transaction import RingInput
from ..core.modules import (
    ModuleUniverse,
    is_superset_or_disjoint,
    second_config_ell,
)
from ..core.problem import InfeasibleError
from ..core.ring import Ring
from ..core.selector import SelectionResult, Selector, get_selector
from ..obs import events, trace
from .batch import Batch, batch_of_token, build_batches, rings_over_batch
from .registry import BatchRegistry, ReserveViolation

__all__ = ["TokenMagic", "TokenMagicConfig"]


@dataclass(frozen=True, slots=True)
class TokenMagicConfig:
    """System parameters of the framework.

    Attributes:
        batch_lambda: minimum tokens per batch (public consensus value).
        eta: the reserve parameter of Section 4 (0 disables).
        apply_second_config: target (c, l+1) on new rings so their
            DTRSs keep (c, l) (Theorem 6.4).
        candidate_mode: run the full Algorithm 1 candidate-set
            randomization.  When False the selector runs once, directly
            for the target token (deterministic; what the paper's
            efficiency experiments time).
        parallel_workers: fan exact-solver candidate scans and
            chain-reaction audits across this many processes (<= 1
            keeps everything serial; results are identical either way,
            see :mod:`repro.core.perf.parallel`).

    Example — the defaults are the paper's efficiency-experiment
    settings; the second configuration bumps the *targeted* l by one
    so the emitted ring's DTRSs keep the claimed (c, l):

        >>> config = TokenMagicConfig()
        >>> (config.batch_lambda, config.eta, config.apply_second_config)
        (100, 0.0, True)
        >>> TokenMagicConfig(eta=0.2, candidate_mode=True).eta
        0.2
    """

    batch_lambda: int = 100
    eta: float = 0.0
    apply_second_config: bool = True
    candidate_mode: bool = False
    parallel_workers: int = 0


class TokenMagic:
    """Facade: generate configuration-compliant rings over a chain."""

    def __init__(
        self,
        chain: Blockchain,
        config: TokenMagicConfig | None = None,
    ) -> None:
        self.chain = chain
        self.config = config or TokenMagicConfig()
        self._registries: dict[int, BatchRegistry] = {}

    # -- batch plumbing ----------------------------------------------------

    def batches(self) -> list[Batch]:
        return build_batches(self.chain, self.config.batch_lambda)

    def registry_for(self, batch: Batch) -> BatchRegistry:
        registry = self._registries.get(batch.index)
        if registry is None:
            lam = self.config.batch_lambda
            registry = BatchRegistry(
                batch=batch,
                eta=self.config.eta,
                lambda_effective=2 * lam - 1,
            )
            for ring in rings_over_batch(list(self.chain.rings), batch):
                registry.rings.append(ring)
            self._registries[batch.index] = registry
        return registry

    # -- ring generation (Algorithm 1) --------------------------------------

    def generate_ring(
        self,
        token_id: str,
        c: float,
        ell: int,
        algorithm: str | Selector = "progressive",
        rng: random.Random | None = None,
    ) -> SelectionResult:
        """Produce a ring consuming ``token_id`` under (c, ell)-diversity.

        Raises:
            InfeasibleError: when the batch cannot satisfy the request.
            ReserveViolation: when the eta rule forbids another ring.
        """
        generator = rng if rng is not None else random.Random()
        selector = get_selector(algorithm) if isinstance(algorithm, str) else algorithm
        start = time.perf_counter()
        with trace.span(
            "tokenmagic.generate_ring",
            token=token_id,
            algorithm=getattr(selector, "name", str(algorithm)),
            candidate_mode=self.config.candidate_mode,
        ) as sp:
            batch = batch_of_token(self.batches(), token_id)
            registry = self.registry_for(batch)
            target_ell = (
                second_config_ell(ell) if self.config.apply_second_config else ell
            )
            modules = ModuleUniverse(batch.universe, registry.rings)

            if not self.config.candidate_mode:
                result = selector(modules, token_id, c, target_ell, rng=generator)
                self._check_admissible(registry, result, c, ell)
                return self._record_generated(sp, result, start)

            # Algorithm 1 proper: one candidate ring per token of the batch.
            candidates: dict[str, list[SelectionResult]] = {
                token: [] for token in batch.universe
            }
            with trace.span(
                "tokenmagic.candidate_sweep", tokens=len(batch.universe)
            ) as sweep_span:
                infeasible = 0
                for token in sorted(batch.universe.tokens):
                    try:
                        result = selector(
                            modules, token, c, target_ell, rng=generator
                        )
                    except InfeasibleError:
                        infeasible += 1
                        continue
                    for member in result.tokens:
                        candidates[member].append(result)
                if sweep_span is not None:
                    sweep_span.attrs["infeasible"] = infeasible
            eligible = candidates[token_id]
            if not eligible:
                raise InfeasibleError(
                    f"no candidate ring contains token {token_id!r} under "
                    f"({c}, {ell})-diversity"
                )
            chosen = eligible[generator.randrange(len(eligible))]
            chosen = SelectionResult(
                tokens=chosen.tokens,
                target_token=token_id,
                modules=chosen.modules,
                elapsed=chosen.elapsed,
                algorithm=chosen.algorithm,
            )
            self._check_admissible(registry, chosen, c, ell)
            return self._record_generated(sp, chosen, start)

    def _record_generated(
        self, sp, result: SelectionResult, start: float
    ) -> SelectionResult:
        """Flush the per-generation span attrs and RingGenerated event."""
        if events.enabled():
            events.emit(
                events.RingGenerated(
                    algorithm=result.algorithm,
                    size=len(result.tokens),
                    elapsed_s=time.perf_counter() - start,
                )
            )
        if sp is not None:
            sp.attrs["ring_size"] = len(result.tokens)
        return result

    def generate_ring_exact(
        self,
        token_id: str,
        c: float,
        ell: int,
        time_budget: float | None = None,
        max_mixins: int | None = None,
    ) -> SelectionResult:
        """Produce a ring via the exact BFS solver (the paper's TM_B).

        Unlike :meth:`generate_ring`, this solves the DA-MS instance
        exactly over the batch universe (no practical-configuration
        module decomposition), using the solver performance layer and —
        when ``config.parallel_workers`` > 1 — the deterministic
        multiprocess candidate fan-out.

        Raises:
            InfeasibleError: the batch cannot satisfy the request.
            SearchBudgetExceeded: the time budget ran out first.
            ReserveViolation: the eta rule forbids another ring.
        """
        from ..core.bfs import bfs_select
        from ..core.problem import DamsInstance

        start = time.perf_counter()
        with trace.span(
            "tokenmagic.generate_ring_exact", token=token_id, budget=time_budget
        ) as sp:
            batch = batch_of_token(self.batches(), token_id)
            registry = self.registry_for(batch)
            instance = DamsInstance(
                batch.universe, list(registry.rings), token_id, c=c, ell=ell
            )
            solved = bfs_select(
                instance,
                time_budget=time_budget,
                max_mixins=max_mixins,
                workers=self.config.parallel_workers,
            )
            result = SelectionResult(
                tokens=solved.ring.tokens,
                target_token=token_id,
                modules=(),
                elapsed=solved.elapsed,
                algorithm="bfs",
            )
            self._check_admissible(registry, result, c, ell)
            return self._record_generated(sp, result, start)

    def generate_ring_resilient(
        self,
        token_id: str,
        c: float,
        ell: int,
        time_budget: float | None = None,
        max_mixins: int | None = None,
        rng: random.Random | None = None,
        checkpoint_path=None,
        resume_from=None,
    ):
        """:meth:`generate_ring_exact` behind the degradation ladder.

        The exact BFS runs first; if it trips its budget or loses a
        worker unrecoverably, the ladder steps down through progressive
        selection, the relaxation schedule, and the diversity-checked
        baseline — re-verifying the Definition 5 constraints at every
        rung and failing closed rather than emitting an unverified
        ring.  Parallel exact runs (``config.parallel_workers`` > 1)
        are supervised: dead or hung worker chunks are requeued.

        Returns:
            A :class:`~repro.resilience.ladder.DegradedResult`; its
            ``.result`` is the accepted selection, ``.claimed_c`` /
            ``.claimed_ell`` the (possibly relaxed) requirement it is
            verified — and admission-checked — against.

        Raises:
            InfeasibleError: no feasible ring exists (exact proof), or
                every rung failed.
            ConstraintViolation: the last rung's ring failed Def. 5
                re-verification (fail closed).
            ReserveViolation: the eta rule forbids another ring.
        """
        from ..core.problem import DamsInstance
        from ..resilience.ladder import ladder_select
        from ..resilience.supervisor import RetryPolicy

        workers = self.config.parallel_workers
        start = time.perf_counter()
        with trace.span(
            "tokenmagic.generate_ring_resilient", token=token_id, budget=time_budget
        ) as sp:
            batch = batch_of_token(self.batches(), token_id)
            registry = self.registry_for(batch)
            instance = DamsInstance(
                batch.universe, list(registry.rings), token_id, c=c, ell=ell
            )
            outcome = ladder_select(
                instance,
                time_budget=time_budget,
                max_mixins=max_mixins,
                workers=workers,
                supervision=RetryPolicy() if workers and workers > 1 else None,
                checkpoint_path=checkpoint_path,
                resume_from=resume_from,
                rng=rng,
            )
            self._check_admissible(
                registry, outcome.result, outcome.claimed_c, outcome.claimed_ell
            )
            self._record_generated(sp, outcome.result, start)
            if sp is not None:
                sp.attrs["rung"] = outcome.rung
            return outcome

    def audit_batch(self, batch: Batch):
        """Chain-reaction audit of every ring proposed over ``batch``.

        Runs the exact matching-based possibility analysis (what an
        information-theoretically optimal adversary learns), fanned
        across ``config.parallel_workers`` processes when configured.
        """
        from ..analysis.chain_reaction import exact_analysis

        registry = self.registry_for(batch)
        with trace.span("tokenmagic.audit_batch", batch=batch.index):
            return exact_analysis(
                list(registry.rings), workers=self.config.parallel_workers
            )

    def commit_ring(self, result: SelectionResult, c: float, ell: int) -> Ring:
        """Record a generated ring in its batch registry and return it."""
        batch = batch_of_token(self.batches(), result.target_token)
        registry = self.registry_for(batch)
        ring = Ring(
            rid=f"tm:{batch.index}:{len(registry.rings)}",
            tokens=result.tokens,
            c=c,
            ell=ell,
            seq=len(registry.rings),
        )
        registry.admit(ring)
        return ring

    def _check_admissible(
        self, registry: BatchRegistry, result: SelectionResult, c: float, ell: int
    ) -> None:
        probe = Ring(
            rid="tm:probe",
            tokens=result.tokens,
            c=c,
            ell=ell,
            seq=len(registry.rings),
        )
        if registry.eta > 0:
            with trace.span("tokenmagic.reserve_check", eta=registry.eta) as sp:
                ok = registry.reserve_ok(probe)
                if sp is not None:
                    sp.attrs["ok"] = ok
            if events.enabled():
                events.emit(events.ReserveChecked(ok=ok))
            if not ok:
                raise ReserveViolation(
                    f"ring for {result.target_token!r} violates the eta "
                    f"reserve rule"
                )

    # -- Step-3 policy verifier ---------------------------------------------

    def policy_verifier(
        self,
        check_diversity_claim: bool = True,
        check_reserve: bool = True,
    ):
        """A ledger policy enforcing the paper's Step-3 configurations.

        Install on a :class:`~repro.chain.Blockchain` via
        ``policy_verifiers`` so miners reject rings that:

        * mix tokens from different batches (batch locality),
        * are neither supersets nor disjoint of existing rings
          (first practical configuration),
        * fail their own claimed recursive (c, l)-diversity — lifted to
          (c, l+1) when the second configuration is active — evaluated
          through the polynomial Theorem 6.1 check
          (``check_diversity_claim``),
        * would break the eta reserve requirement
          (``check_reserve``, active when the framework's eta > 0).
        """
        from ..core.modules import ring_is_recursive_diverse_config
        from ..core.ring import Ring
        from ..core.modules import ModuleUniverse

        def verifier(chain: Blockchain, ring_input: RingInput) -> None:
            tokens = ring_input.token_set()
            batches = build_batches(chain, self.config.batch_lambda)
            containing = None
            for batch in batches:
                inside = sum(1 for token in tokens if token in batch)
                if inside:
                    if inside != len(tokens):
                        raise ConfigurationViolation(
                            "ring mixes tokens from different batches"
                        )
                    containing = batch
                    break
            if containing is None:
                raise ConfigurationViolation("ring tokens are in no batch")
            related = rings_over_batch(list(chain.rings), containing)
            if not is_superset_or_disjoint(tokens, related):
                raise ConfigurationViolation(
                    "ring is neither a superset nor disjoint of an existing ring"
                )
            probe = Ring(
                rid="policy:probe",
                tokens=tokens,
                c=ring_input.claimed_c,
                ell=ring_input.claimed_ell,
                seq=len(related),
            )
            if check_diversity_claim:
                target_ell = (
                    second_config_ell(ring_input.claimed_ell)
                    if self.config.apply_second_config
                    else ring_input.claimed_ell
                )
                modules = ModuleUniverse(containing.universe, related)
                if not ring_is_recursive_diverse_config(
                    probe, modules, c=ring_input.claimed_c, ell=target_ell
                ):
                    raise ConfigurationViolation(
                        f"ring does not satisfy its claimed recursive "
                        f"({ring_input.claimed_c}, {target_ell})-diversity"
                    )
            if check_reserve and self.config.eta > 0:
                registry = BatchRegistry(
                    batch=containing,
                    eta=self.config.eta,
                    lambda_effective=2 * self.config.batch_lambda - 1,
                    rings=list(related),
                )
                if not registry.reserve_ok(probe):
                    raise ConfigurationViolation(
                        "ring would violate the eta reserve requirement"
                    )

        return verifier
