"""Data sets: the Monero-shaped real-data stand-in and synthetic sweeps.

See Tables 2 and 3 of the paper for the parameter grids these
generators realize, and DESIGN.md §4 for the real-trace substitution
rationale.
"""

from .monero import (
    BLOCK_COUNT,
    FRESH_TOKEN_COUNT,
    OUTPUT_COUNT_DISTRIBUTION,
    SUPER_RS_COUNT,
    SUPER_RS_SIZE,
    TOKEN_COUNT,
    TX_COUNT,
    MoneroHour,
    generate_monero_hour,
)
from .synthetic import (
    TABLE3_DEFAULTS,
    SyntheticConfig,
    SyntheticDataset,
    generate_synthetic,
)
from .persistence import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    save_dataset,
)
from .workload import ProblemInstance, sample_instances

__all__ = [
    "MoneroHour",
    "generate_monero_hour",
    "OUTPUT_COUNT_DISTRIBUTION",
    "TX_COUNT",
    "TOKEN_COUNT",
    "SUPER_RS_COUNT",
    "SUPER_RS_SIZE",
    "FRESH_TOKEN_COUNT",
    "BLOCK_COUNT",
    "SyntheticConfig",
    "SyntheticDataset",
    "generate_synthetic",
    "TABLE3_DEFAULTS",
    "ProblemInstance",
    "sample_instances",
    "dataset_to_dict",
    "dataset_from_dict",
    "save_dataset",
    "load_dataset",
]
