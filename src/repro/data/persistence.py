"""Dataset persistence: pin generated universes to disk.

Reproducibility beyond seeds: a sweep can save the exact (token -> HT)
labels and ring decomposition it ran on, and a later run (or another
machine) reloads them bit-for-bit.  JSON, versioned, validated on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..core.ring import Ring, TokenUniverse
from ..resilience import faults

__all__ = [
    "DATASET_FORMAT_VERSION",
    "dataset_to_dict",
    "dataset_from_dict",
    "save_dataset",
    "load_dataset",
]

DATASET_FORMAT_VERSION = 1


def dataset_to_dict(
    universe: TokenUniverse,
    rings: list[Ring],
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Encode a (universe, rings) pair plus free-form metadata."""
    return {
        "version": DATASET_FORMAT_VERSION,
        "metadata": dict(metadata or {}),
        "tokens": {token: universe.ht_of(token) for token in sorted(universe)},
        "rings": [
            {
                "rid": ring.rid,
                "tokens": sorted(ring.tokens),
                "c": ring.c,
                "ell": ring.ell,
                "seq": ring.seq,
            }
            for ring in rings
        ],
    }


def dataset_from_dict(
    payload: dict[str, Any],
) -> tuple[TokenUniverse, list[Ring], dict[str, Any]]:
    """Decode and validate a dataset document.

    Raises:
        ValueError: on version mismatch or rings referencing unknown
            tokens.
    """
    version = payload.get("version")
    if version != DATASET_FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version: {version!r}")
    universe = TokenUniverse(payload["tokens"])
    rings = []
    for entry in payload["rings"]:
        tokens = frozenset(entry["tokens"])
        missing = tokens - universe.tokens
        if missing:
            raise ValueError(
                f"ring {entry['rid']!r} references unknown tokens: "
                f"{sorted(missing)[:3]}..."
            )
        rings.append(
            Ring(
                rid=entry["rid"],
                tokens=tokens,
                c=entry["c"],
                ell=entry["ell"],
                seq=entry["seq"],
            )
        )
    return universe, rings, dict(payload.get("metadata", {}))


def save_dataset(
    path: str | Path,
    universe: TokenUniverse,
    rings: list[Ring],
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Write a dataset document to ``path`` (created/overwritten)."""
    path = Path(path)
    path.write_text(
        json.dumps(dataset_to_dict(universe, rings, metadata), indent=1)
    )
    return path


def load_dataset(
    path: str | Path,
) -> tuple[TokenUniverse, list[Ring], dict[str, Any]]:
    """Read a dataset document from ``path``.

    Fault site ``chain.load``: an active
    :class:`~repro.resilience.faults.FaultPlan` can make this read fail
    with an :class:`~repro.resilience.faults.InjectedIOError` (an
    ``OSError``), exercising caller recovery paths.
    """
    plan = faults.active()
    if plan is not None:
        plan.check("chain.load")
    return dataset_from_dict(json.loads(Path(path).read_text()))
