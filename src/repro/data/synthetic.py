"""Synthetic data sets (Section 7.1, Table 3).

Generates module universes directly, matching the paper's synthetic
settings: |S| super RSs whose sizes are uniform in [s-, s+], |F| fresh
tokens, and per-token HT labels drawn from a discretized normal
distribution with standard deviation sigma (larger sigma spreads
tokens over more HTs, making diversity easier — Figure 7's effect).

Table 3 defaults (bold in the paper): |s_i| in [10, 20], |S| = 50,
|F| = 10, sigma = 12.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.modules import ModuleUniverse
from ..core.ring import Ring, TokenUniverse

__all__ = [
    "SyntheticDataset",
    "SyntheticConfig",
    "generate_synthetic",
    "TABLE3_DEFAULTS",
]


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """Parameters of one synthetic universe (Table 3 row).

    Attributes:
        super_count: |S|, the number of super RSs.
        super_size_range: [s-, s+] uniform size range of each super RS.
        fresh_count: |F|, the number of fresh tokens.
        sigma: standard deviation of the HT-label normal distribution.
        seed: RNG seed.
    """

    super_count: int = 50
    super_size_range: tuple[int, int] = (10, 20)
    fresh_count: int = 10
    sigma: float = 12.0
    seed: int = 0

    def __post_init__(self) -> None:
        low, high = self.super_size_range
        if low < 1 or high < low:
            raise ValueError("invalid super RS size range")
        if self.super_count < 0 or self.fresh_count < 0:
            raise ValueError("counts must be non-negative")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")


#: The paper's default synthetic setting (bold values of Table 3).
TABLE3_DEFAULTS = SyntheticConfig()


@dataclass(frozen=True, slots=True)
class SyntheticDataset:
    """A generated synthetic universe.

    Attributes:
        config: the generating parameters.
        universe: token -> HT labels.
        rings: the super RSs (disjoint, valid under configuration 1).
        fresh_tokens: tokens outside every ring.
    """

    config: SyntheticConfig
    universe: TokenUniverse
    rings: list[Ring]
    fresh_tokens: list[str]

    def module_universe(self) -> ModuleUniverse:
        return ModuleUniverse(self.universe, self.rings)


def generate_synthetic(config: SyntheticConfig = TABLE3_DEFAULTS) -> SyntheticDataset:
    """Generate a synthetic universe per ``config``.

    Each token's HT is ``h<round(gauss(0, sigma))>``: the discretized
    normal puts ~|T| * pdf(0) tokens on the central HT, reproducing the
    paper's calibration ("when the variance is 16 and the number of
    tokens is around 800, the number of tokens from the same HT is
    around 16", matching Monero's observed maximum).
    """
    rng = random.Random(config.seed)
    low, high = config.super_size_range

    universe = TokenUniverse()
    rings: list[Ring] = []
    token_index = 0

    def new_token() -> str:
        nonlocal token_index
        token_id = f"t{token_index:05d}"
        ht = f"h{round(rng.gauss(0.0, config.sigma)):+d}"
        universe.add(token_id, ht)
        token_index += 1
        return token_id

    for ring_index in range(config.super_count):
        size = rng.randint(low, high)
        members = frozenset(new_token() for _ in range(size))
        rings.append(
            Ring(
                rid=f"sr{ring_index:03d}",
                tokens=members,
                c=1.0,
                ell=2,
                seq=ring_index,
            )
        )

    fresh = sorted(new_token() for _ in range(config.fresh_count))
    return SyntheticDataset(
        config=config,
        universe=universe,
        rings=rings,
        fresh_tokens=fresh,
    )
