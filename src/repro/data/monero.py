"""Monero-shaped real-data stand-in (Section 7.1, Table 2, Figure 3).

The paper's "real" data set is one hour of Monero blocks (heights
2,028,242-2,028,273): 285 transactions, 633 output tokens, an
output-count distribution concentrated on 2 outputs per transaction
(Figure 3), from which the authors build 57 super RSs of ring size 11
(the dominant Monero ring size) plus 6 fresh tokens.

Raw chain data is not redistributable here and the build runs offline,
so :func:`generate_monero_hour` synthesizes a trace with those exact
aggregate statistics.  The DA-MS algorithms only consume (token -> HT)
labels and the module decomposition, so matching marginals exercises
identical code paths and cost structure (see DESIGN.md §4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.modules import ModuleUniverse
from ..core.ring import Ring, TokenUniverse

__all__ = [
    "MoneroHour",
    "generate_monero_hour",
    "OUTPUT_COUNT_DISTRIBUTION",
    "TX_COUNT",
    "TOKEN_COUNT",
    "SUPER_RS_COUNT",
    "SUPER_RS_SIZE",
    "FRESH_TOKEN_COUNT",
    "BLOCK_COUNT",
]

#: Aggregates the paper reports for the real data set.
TX_COUNT = 285
TOKEN_COUNT = 633
SUPER_RS_COUNT = 57
SUPER_RS_SIZE = 11
FRESH_TOKEN_COUNT = 6
BLOCK_COUNT = 32  # heights 2,028,242 .. 2,028,273 inclusive

#: Output-count distribution matching Figure 3's shape: most
#: transactions output exactly two tokens, a small head of 1-output
#: transactions and a thin tail of batch payouts.
OUTPUT_COUNT_DISTRIBUTION: dict[int, float] = {
    1: 0.10,
    2: 0.72,
    3: 0.08,
    4: 0.04,
    5: 0.02,
    6: 0.015,
    8: 0.01,
    10: 0.01,
    16: 0.005,
}


@dataclass(frozen=True, slots=True)
class MoneroHour:
    """One synthesized hour of Monero-shaped activity.

    Attributes:
        universe: 633 tokens labelled by their HT (origin transaction).
        rings: 57 existing super RSs of size 11 (disjoint, so they are
            valid under the first practical configuration).
        fresh_tokens: the 6 tokens outside every ring.
        outputs_per_tx: tx id -> number of outputs (the Figure 3 data).
    """

    universe: TokenUniverse
    rings: list[Ring]
    fresh_tokens: list[str]
    outputs_per_tx: dict[str, int]

    def module_universe(self) -> ModuleUniverse:
        """Decompose into modules for the selectors."""
        return ModuleUniverse(self.universe, self.rings)


def _sample_output_count(rng: random.Random) -> int:
    roll = rng.random()
    cumulative = 0.0
    for count, probability in OUTPUT_COUNT_DISTRIBUTION.items():
        cumulative += probability
        if roll < cumulative:
            return count
    return 2


def generate_monero_hour(seed: int = 0) -> MoneroHour:
    """Synthesize the paper's real data set shape.

    Draws per-transaction output counts from the Figure 3 distribution,
    then adjusts the tail so the totals hit exactly 285 transactions
    and 633 tokens; partitions 627 tokens into 57 disjoint rings of 11
    and leaves 6 fresh.

    Args:
        seed: RNG seed; every seed yields the same aggregate stats with
            a different token/HT arrangement.
    """
    rng = random.Random(seed)

    # 285 transactions whose output counts sum to exactly 633.
    counts = [_sample_output_count(rng) for _ in range(TX_COUNT)]
    delta = TOKEN_COUNT - sum(counts)
    indices = list(range(TX_COUNT))
    while delta != 0:
        index = rng.choice(indices)
        if delta > 0:
            counts[index] += 1
            delta -= 1
        elif counts[index] > 1:
            counts[index] -= 1
            delta += 1

    universe = TokenUniverse()
    outputs_per_tx: dict[str, int] = {}
    token_ids: list[str] = []
    token_index = 0
    for tx_index, count in enumerate(counts):
        tx_id = f"mtx{tx_index:04d}"
        outputs_per_tx[tx_id] = count
        for _ in range(count):
            token_id = f"m{token_index:04d}"
            universe.add(token_id, tx_id)
            token_ids.append(token_id)
            token_index += 1

    # 57 disjoint super RSs of 11 tokens + 6 fresh tokens.
    shuffled = token_ids[:]
    rng.shuffle(shuffled)
    rings: list[Ring] = []
    for ring_index in range(SUPER_RS_COUNT):
        members = shuffled[ring_index * SUPER_RS_SIZE : (ring_index + 1) * SUPER_RS_SIZE]
        rings.append(
            Ring(
                rid=f"mr{ring_index:02d}",
                tokens=frozenset(members),
                c=1.0,
                ell=2,
                seq=ring_index,
            )
        )
    fresh = sorted(shuffled[SUPER_RS_COUNT * SUPER_RS_SIZE :])
    assert len(fresh) == FRESH_TOKEN_COUNT

    return MoneroHour(
        universe=universe,
        rings=rings,
        fresh_tokens=fresh,
        outputs_per_tx=outputs_per_tx,
    )
