"""Workload builders: turning data sets into experiment problem instances.

Section 7.1: "For each experiment, we sample 1000 problem instances.
We report the average value of the running time and the size of the
RS."  A problem instance is a (module universe, target token, c, l)
tuple; targets are sampled uniformly over the universe's tokens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..core.modules import ModuleUniverse

__all__ = ["ProblemInstance", "sample_instances"]


@dataclass(frozen=True, slots=True)
class ProblemInstance:
    """One selection task for the experiment harness."""

    modules: ModuleUniverse
    target_token: str
    c: float
    ell: int


def sample_instances(
    modules: ModuleUniverse,
    c: float,
    ell: int,
    count: int,
    seed: int = 0,
) -> Iterator[ProblemInstance]:
    """Yield ``count`` instances with uniformly sampled target tokens."""
    rng = random.Random(seed)
    tokens = sorted(modules.universe.tokens)
    if not tokens:
        raise ValueError("cannot sample instances from an empty universe")
    for _ in range(count):
        target = tokens[rng.randrange(len(tokens))]
        yield ProblemInstance(modules=modules, target_token=target, c=c, ell=ell)
