"""Chain snapshot epochs and the per-epoch warm solver state.

The service amortizes work across requests that see the *same* chain:
one :class:`~repro.core.perf.cache.SolverCache` (component closures +
base world enumerations) and one
:class:`~repro.core.modules.ModuleUniverse` (the practical-
configuration decomposition the ladder's degraded rungs use) per
snapshot, plus a result memo deduplicating identical requests (the
hot-target pattern: many clients asking about the same popular
denominations).  All three hold pure derived data — sharing them can
change only *when* the work happens, never what any request selects.

A snapshot is immutable.  When the chain grows (a ``commit`` op), the
service builds a *new* snapshot with the epoch incremented; requests
pinned to an older epoch are rejected with ``stale_epoch`` rather than
silently answered against history they did not ask about.  The old
snapshot's caches become garbage with it — invalidation is
whole-snapshot replacement, which is trivially deterministic.

With a :class:`~repro.service.partition.TokenPartition` installed the
snapshot additionally holds one lazily built *sub-snapshot per batch*
(the batch's disjoint universe, its batch-local ring history, and that
slice's own warm cache/modules/memo).  Because batches are disjoint, a
commit touches exactly one batch, and a ``commit(retain_untouched=True)``
carries every *other* batch's sub-snapshot — warm state included —
into the new epoch unchanged: the (universe, rings) pair those batches
solve against did not move, so everything derived from it is still
exact.  The single-worker daemon keeps the whole-snapshot invalidation
above (every commit starts cold); the shard workers of
:mod:`repro.service.router` use the retaining form, which is where the
sharded throughput win comes from on a commit-interleaved workload.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..core.modules import ModuleUniverse
from ..core.perf.cache import SolverCache
from ..core.problem import DamsInstance
from ..core.ring import Ring, TokenUniverse
from ..obs import events
from .partition import TokenPartition

__all__ = ["ChainSnapshot", "ServiceState"]


@dataclass(slots=True)
class ChainSnapshot:
    """One immutable view of the chain, plus its lazily built warm state.

    Attributes:
        epoch: monotonically increasing snapshot counter (0 at start).
        universe: the mixin universe T of this snapshot.
        rings: the ring history of this snapshot, in proposal order.
    """

    epoch: int
    universe: TokenUniverse
    rings: tuple[Ring, ...]
    partition: TokenPartition | None = None
    _cache: SolverCache | None = field(default=None, repr=False)
    _modules: ModuleUniverse | None = field(default=None, repr=False)
    _memo: dict = field(default_factory=dict, repr=False)
    _parts: dict = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def instance(self, target: str, c: float, ell: int) -> DamsInstance:
        """A per-request DA-MS instance over this snapshot."""
        return DamsInstance(self.universe, list(self.rings), target, c=c, ell=ell)

    def solve_view(self, target: str) -> "ChainSnapshot":
        """The snapshot ``target`` solves against.

        Unpartitioned this is the snapshot itself.  Partitioned it is
        the target's *batch sub-snapshot*: the batch's disjoint
        universe, its batch-local ring history, and that slice's own
        lazily built solver cache / module decomposition / result memo
        (built once per epoch per batch, shared by every request that
        routes there).

        Raises:
            KeyError: partitioned and ``target`` is in no batch.
        """
        if self.partition is None:
            return self
        batch = self.partition.batch_of(target)
        with self._lock:
            sub = self._parts.get(batch)
            if sub is None:
                sub = ChainSnapshot(
                    epoch=self.epoch,
                    universe=self.partition.universe_of(batch),
                    rings=self.partition.rings_of(batch, self.rings),
                )
                self._parts[batch] = sub
        return sub

    @property
    def cache_built(self) -> bool:
        if self.partition is None:
            return self._cache is not None
        with self._lock:
            return any(sub.cache_built for sub in self._parts.values())

    def solver_cache(self) -> SolverCache:
        """The snapshot's shared :class:`SolverCache` (built on first use)."""
        with self._lock:
            if self._cache is None:
                self._cache = SolverCache(self.universe, list(self.rings))
            return self._cache

    def module_universe(self) -> ModuleUniverse:
        """The snapshot's shared practical-configuration decomposition."""
        with self._lock:
            if self._modules is None:
                self._modules = ModuleUniverse(self.universe, list(self.rings))
            return self._modules

    def result_memo(self) -> dict:
        """The snapshot's solved-request memo (hot-target deduplication).

        Selections are pure functions of (snapshot, solve parameters),
        so two identical requests against one snapshot must produce
        identical answers — the daemon stores the first and replays it
        for the rest.  The memo dies with the snapshot at the next
        epoch, exactly like the solver cache; only the single worker
        thread mutates it.
        """
        return self._memo


class ServiceState:
    """The mutable head: which snapshot is current.

    Thread-safe; the front-ends (socket connections, the stdio loop)
    call :meth:`commit` / :meth:`current` concurrently with the worker
    thread reading :meth:`current` at batch-execution time.
    """

    def __init__(
        self,
        universe: TokenUniverse,
        rings: Sequence[Ring] = (),
        partition: TokenPartition | None = None,
        epoch: int = 0,
    ) -> None:
        self._lock = threading.Lock()
        rings = tuple(rings)
        if partition is not None:
            for ring in rings:
                partition.batch_of_ring(ring.tokens)
        self._head = ChainSnapshot(
            epoch=epoch, universe=universe, rings=rings, partition=partition
        )
        self.epochs_advanced = 0
        self.caches_invalidated = 0

    def current(self) -> ChainSnapshot:
        """The head snapshot (immutable — safe to use without the lock)."""
        with self._lock:
            return self._head

    @property
    def epoch(self) -> int:
        return self.current().epoch

    def commit(self, ring: Ring, retain_untouched: bool = False) -> ChainSnapshot:
        """Append an accepted ring; returns the new head snapshot.

        By default the new snapshot starts cold (its caches rebuild on
        first use); the previous epoch's warm state is dropped with the
        snapshot — that is the deterministic invalidation the epoch
        counter makes observable.

        With ``retain_untouched`` (partitioned states only — shard
        workers use it) the commit carries every batch sub-snapshot the
        ring does *not* touch into the new epoch, warm state included:
        those batches' (universe, rings) pairs are unchanged, so every
        derived structure — solver cache, module decomposition, result
        memo — is still exact.  Only the touched batch starts cold.

        Raises:
            ValueError: duplicate ring id, or (partitioned) a ring that
                spans batches / names unknown tokens.
        """
        with self._lock:
            old = self._head
            if any(existing.rid == ring.rid for existing in old.rings):
                raise ValueError(f"duplicate ring id {ring.rid!r} in commit")
            touched = None
            if old.partition is not None:
                touched = old.partition.batch_of_ring(ring.tokens)
            head = ChainSnapshot(
                epoch=old.epoch + 1,
                universe=old.universe,
                rings=old.rings + (ring,),
                partition=old.partition,
            )
            dropped_warm = old.cache_built
            if retain_untouched and touched is not None:
                with old._lock:
                    carried = {
                        batch: sub
                        for batch, sub in old._parts.items()
                        if batch != touched
                    }
                    dropped = old._parts.get(touched)
                head._parts.update(carried)
                dropped_warm = dropped is not None and dropped.cache_built
            self._head = head
            self.epochs_advanced += 1
            if dropped_warm:
                self.caches_invalidated += 1
        if events.enabled():
            events.emit(events.EpochAdvanced(epoch=head.epoch, rings=len(head.rings)))
        return head

    def next_seq(self) -> int:
        """The proposal sequence number a newly committed ring should use."""
        head = self.current()
        return 1 + max((ring.seq for ring in head.rings), default=-1)
