"""Chain snapshot epochs and the per-epoch warm solver state.

The service amortizes work across requests that see the *same* chain:
one :class:`~repro.core.perf.cache.SolverCache` (component closures +
base world enumerations) and one
:class:`~repro.core.modules.ModuleUniverse` (the practical-
configuration decomposition the ladder's degraded rungs use) per
snapshot, plus a result memo deduplicating identical requests (the
hot-target pattern: many clients asking about the same popular
denominations).  All three hold pure derived data — sharing them can
change only *when* the work happens, never what any request selects.

A snapshot is immutable.  When the chain grows (a ``commit`` op), the
service builds a *new* snapshot with the epoch incremented; requests
pinned to an older epoch are rejected with ``stale_epoch`` rather than
silently answered against history they did not ask about.  The old
snapshot's caches become garbage with it — invalidation is
whole-snapshot replacement, which is trivially deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..core.modules import ModuleUniverse
from ..core.perf.cache import SolverCache
from ..core.problem import DamsInstance
from ..core.ring import Ring, TokenUniverse
from ..obs import events

__all__ = ["ChainSnapshot", "ServiceState"]


@dataclass(slots=True)
class ChainSnapshot:
    """One immutable view of the chain, plus its lazily built warm state.

    Attributes:
        epoch: monotonically increasing snapshot counter (0 at start).
        universe: the mixin universe T of this snapshot.
        rings: the ring history of this snapshot, in proposal order.
    """

    epoch: int
    universe: TokenUniverse
    rings: tuple[Ring, ...]
    _cache: SolverCache | None = field(default=None, repr=False)
    _modules: ModuleUniverse | None = field(default=None, repr=False)
    _memo: dict = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def instance(self, target: str, c: float, ell: int) -> DamsInstance:
        """A per-request DA-MS instance over this snapshot."""
        return DamsInstance(self.universe, list(self.rings), target, c=c, ell=ell)

    @property
    def cache_built(self) -> bool:
        return self._cache is not None

    def solver_cache(self) -> SolverCache:
        """The snapshot's shared :class:`SolverCache` (built on first use)."""
        with self._lock:
            if self._cache is None:
                self._cache = SolverCache(self.universe, list(self.rings))
            return self._cache

    def module_universe(self) -> ModuleUniverse:
        """The snapshot's shared practical-configuration decomposition."""
        with self._lock:
            if self._modules is None:
                self._modules = ModuleUniverse(self.universe, list(self.rings))
            return self._modules

    def result_memo(self) -> dict:
        """The snapshot's solved-request memo (hot-target deduplication).

        Selections are pure functions of (snapshot, solve parameters),
        so two identical requests against one snapshot must produce
        identical answers — the daemon stores the first and replays it
        for the rest.  The memo dies with the snapshot at the next
        epoch, exactly like the solver cache; only the single worker
        thread mutates it.
        """
        return self._memo


class ServiceState:
    """The mutable head: which snapshot is current.

    Thread-safe; the front-ends (socket connections, the stdio loop)
    call :meth:`commit` / :meth:`current` concurrently with the worker
    thread reading :meth:`current` at batch-execution time.
    """

    def __init__(self, universe: TokenUniverse, rings: Sequence[Ring] = ()) -> None:
        self._lock = threading.Lock()
        self._head = ChainSnapshot(epoch=0, universe=universe, rings=tuple(rings))
        self.epochs_advanced = 0
        self.caches_invalidated = 0

    def current(self) -> ChainSnapshot:
        """The head snapshot (immutable — safe to use without the lock)."""
        with self._lock:
            return self._head

    @property
    def epoch(self) -> int:
        return self.current().epoch

    def commit(self, ring: Ring) -> ChainSnapshot:
        """Append an accepted ring; returns the new head snapshot.

        The new snapshot starts cold (its caches rebuild on first use);
        the previous epoch's warm state is dropped with the snapshot —
        that is the deterministic invalidation the epoch counter makes
        observable.
        """
        with self._lock:
            old = self._head
            if any(existing.rid == ring.rid for existing in old.rings):
                raise ValueError(f"duplicate ring id {ring.rid!r} in commit")
            self._head = ChainSnapshot(
                epoch=old.epoch + 1,
                universe=old.universe,
                rings=old.rings + (ring,),
            )
            self.epochs_advanced += 1
            if old.cache_built:
                self.caches_invalidated += 1
            head = self._head
        if events.enabled():
            events.emit(events.EpochAdvanced(epoch=head.epoch, rings=len(head.rings)))
        return head

    def next_seq(self) -> int:
        """The proposal sequence number a newly committed ring should use."""
        head = self.current()
        return 1 + max((ring.seq for ring in head.rings), default=-1)
