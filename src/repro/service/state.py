"""Chain snapshot epochs and the per-epoch warm solver state.

The service amortizes work across requests that see the *same* chain:
one :class:`~repro.core.perf.cache.SolverCache` (component closures +
base world enumerations) and one
:class:`~repro.core.modules.ModuleUniverse` (the practical-
configuration decomposition the ladder's degraded rungs use) per
snapshot, plus a result memo deduplicating identical requests (the
hot-target pattern: many clients asking about the same popular
denominations).  All three hold pure derived data — sharing them can
change only *when* the work happens, never what any request selects.

A snapshot is immutable.  When the chain grows (a ``commit`` op), the
service builds a *new* snapshot with the epoch incremented; requests
pinned to an older epoch are rejected with ``stale_epoch`` rather than
silently answered against history they did not ask about.  How much of
the old snapshot's warm state the new one inherits is the service's
``epoch_mode``:

* ``replace`` (the historical default): the old snapshot's caches
  become garbage with it — invalidation is whole-snapshot replacement,
  which is trivially deterministic.
* ``delta``: the commit is applied as an :class:`EpochDelta` via
  :meth:`ChainSnapshot.advance` — the solver cache is advanced
  component-wise, the module decomposition is extended locally under
  Thm 6.1's superset-or-disjoint rule, and only state the new ring can
  actually reach is invalidated.  Byte-identical responses to
  ``replace`` (the caches hold pure derived data), but warm across
  commits.

With a :class:`~repro.service.partition.TokenPartition` installed the
snapshot additionally holds one lazily built *sub-snapshot per batch*
(the batch's disjoint universe, its batch-local ring history, and that
slice's own warm cache/modules/memo).  Because batches are disjoint, a
commit touches exactly one batch, and a ``commit(retain_untouched=True)``
carries every *other* batch's sub-snapshot — warm state included —
into the new epoch unchanged: the (universe, rings) pair those batches
solve against did not move, so everything derived from it is still
exact.  The single-worker daemon keeps the whole-snapshot invalidation
above (every commit starts cold); the shard workers of
:mod:`repro.service.router` use the retaining form, which is where the
sharded throughput win comes from on a commit-interleaved workload.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..core.modules import ModuleUniverse
from ..core.perf.cache import SolverCache
from ..core.problem import DamsInstance
from ..core.ring import Ring, TokenUniverse
from ..obs import events
from .partition import TokenPartition

__all__ = ["ChainSnapshot", "EpochDelta", "ServiceState", "EPOCH_MODES"]

EPOCH_MODES = ("replace", "delta")


@dataclass(slots=True)
class EpochDelta:
    """One commit's worth of chain growth, plus what the advance kept.

    The input half is ``ring`` (the accepted ring) and ``touched_batch``
    (its batch under the partition, ``None`` unpartitioned).  The
    remaining fields are a report filled in by
    :meth:`ChainSnapshot.advance`: how much warm state survived the
    commit and how much was selectively invalidated.  The service
    accumulates these into the ``delta.*`` counters surfaced by
    ``stats``/``metrics``.
    """

    ring: Ring
    touched_batch: int | None = None
    worlds_retained: int = 0
    worlds_invalidated: int = 0
    kernel_retained: int = 0
    kernel_invalidated: int = 0
    modules_extended: int = 0
    modules_rebuilt: int = 0
    memo_dropped: int = 0
    parts_retained: int = 0

    def as_counters(self) -> dict[str, int]:
        return {
            "worlds_retained": self.worlds_retained,
            "worlds_invalidated": self.worlds_invalidated,
            "kernel_retained": self.kernel_retained,
            "kernel_invalidated": self.kernel_invalidated,
            "modules_extended": self.modules_extended,
            "modules_rebuilt": self.modules_rebuilt,
            "memo_dropped": self.memo_dropped,
            "parts_retained": self.parts_retained,
        }


@dataclass(slots=True)
class ChainSnapshot:
    """One immutable view of the chain, plus its lazily built warm state.

    Attributes:
        epoch: monotonically increasing snapshot counter (0 at start).
        universe: the mixin universe T of this snapshot.
        rings: the ring history of this snapshot, in proposal order.
    """

    epoch: int
    universe: TokenUniverse
    rings: tuple[Ring, ...]
    partition: TokenPartition | None = None
    _cache: SolverCache | None = field(default=None, repr=False)
    _modules: ModuleUniverse | None = field(default=None, repr=False)
    _memo: dict = field(default_factory=dict, repr=False)
    _parts: dict = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def instance(self, target: str, c: float, ell: int) -> DamsInstance:
        """A per-request DA-MS instance over this snapshot."""
        return DamsInstance(self.universe, list(self.rings), target, c=c, ell=ell)

    def solve_view(self, target: str) -> "ChainSnapshot":
        """The snapshot ``target`` solves against.

        Unpartitioned this is the snapshot itself.  Partitioned it is
        the target's *batch sub-snapshot*: the batch's disjoint
        universe, its batch-local ring history, and that slice's own
        lazily built solver cache / module decomposition / result memo
        (built once per epoch per batch, shared by every request that
        routes there).

        Raises:
            KeyError: partitioned and ``target`` is in no batch.
        """
        if self.partition is None:
            return self
        batch = self.partition.batch_of(target)
        with self._lock:
            sub = self._parts.get(batch)
            if sub is None:
                sub = ChainSnapshot(
                    epoch=self.epoch,
                    universe=self.partition.universe_of(batch),
                    rings=self.partition.rings_of(batch, self.rings),
                )
                self._parts[batch] = sub
        return sub

    @property
    def cache_built(self) -> bool:
        if self.partition is None:
            return self._cache is not None
        with self._lock:
            return any(sub.cache_built for sub in self._parts.values())

    def solver_cache(self) -> SolverCache:
        """The snapshot's shared :class:`SolverCache` (built on first use)."""
        with self._lock:
            if self._cache is None:
                self._cache = SolverCache(self.universe, list(self.rings))
            return self._cache

    def module_universe(self) -> ModuleUniverse:
        """The snapshot's shared practical-configuration decomposition."""
        with self._lock:
            if self._modules is None:
                self._modules = ModuleUniverse(self.universe, list(self.rings))
            return self._modules

    def advance(self, delta: EpochDelta) -> "ChainSnapshot":
        """The next epoch's snapshot, keeping warm state the ring misses.

        The replace-mode commit builds a cold snapshot and lets this
        one's caches die with it.  ``advance`` instead carries every
        derived structure the new ring provably cannot affect:

        * the :class:`SolverCache` is advanced component-wise
          (:meth:`SolverCache.advance`) — world sets and kernel states
          of token-overlap components the ring does not touch survive;
        * the :class:`ModuleUniverse` is extended locally under the
          superset-or-disjoint rule (:meth:`ModuleUniverse.extended`,
          Thm 6.1), falling back to a rebuild when the ring violates
          configuration 1;
        * partitioned, untouched batch sub-snapshots are carried whole
          (universe and rings unchanged — same argument as
          ``commit(retain_untouched=True)``) and the *touched* batch's
          sub-snapshot is itself advanced rather than dropped;
        * the result memo of any snapshot that gained a ring is cleared:
          a selection is a function of the whole (sub-)history, and the
          new ring may legally change the chosen ring even for targets
          in untouched components — only untouched *batches* (disjoint
          universes) may keep their memo.

        ``self`` is left untouched; in-flight batches pinned to it keep
        serving against the old epoch.  The result is byte-identical in
        behavior to a cold rebuild — pinned by the delta-vs-replace
        equivalence tests.
        """
        if self.partition is None:
            return self._advance_flat(delta, self.epoch + 1)
        head = ChainSnapshot(
            epoch=self.epoch + 1,
            universe=self.universe,
            rings=self.rings + (delta.ring,),
            partition=self.partition,
        )
        with self._lock:
            for batch, sub in self._parts.items():
                if batch == delta.touched_batch:
                    head._parts[batch] = sub._advance_flat(delta, sub.epoch + 1)
                else:
                    head._parts[batch] = sub
                    delta.parts_retained += 1
        return head

    def _advance_flat(self, delta: EpochDelta, epoch: int) -> "ChainSnapshot":
        """Advance an unpartitioned snapshot (or one batch sub-snapshot)."""
        ring = delta.ring
        head = ChainSnapshot(
            epoch=epoch, universe=self.universe, rings=self.rings + (ring,)
        )
        with self._lock:
            if self._cache is not None:
                head._cache, report = self._cache.advance(ring)
                delta.worlds_retained += report.worlds_retained
                delta.worlds_invalidated += report.worlds_invalidated
                delta.kernel_retained += report.kernel_retained
                delta.kernel_invalidated += report.kernel_invalidated
            if self._modules is not None:
                head._modules, incremental = self._modules.extended(ring)
                if incremental:
                    delta.modules_extended += 1
                else:
                    delta.modules_rebuilt += 1
            delta.memo_dropped += len(self._memo)
        return head

    def result_memo(self) -> dict:
        """The snapshot's solved-request memo (hot-target deduplication).

        Selections are pure functions of (snapshot, solve parameters),
        so two identical requests against one snapshot must produce
        identical answers — the daemon stores the first and replays it
        for the rest.  The memo dies with the snapshot at the next
        epoch, exactly like the solver cache; only the single worker
        thread mutates it.
        """
        return self._memo


class ServiceState:
    """The mutable head: which snapshot is current.

    Thread-safe; the front-ends (socket connections, the stdio loop)
    call :meth:`commit` / :meth:`current` concurrently with the worker
    thread reading :meth:`current` at batch-execution time.
    """

    def __init__(
        self,
        universe: TokenUniverse,
        rings: Sequence[Ring] = (),
        partition: TokenPartition | None = None,
        epoch: int = 0,
        epoch_mode: str = "replace",
    ) -> None:
        if epoch_mode not in EPOCH_MODES:
            raise ValueError(
                f"epoch_mode must be one of {EPOCH_MODES}, got {epoch_mode!r}"
            )
        self._lock = threading.Lock()
        rings = tuple(rings)
        if partition is not None:
            for ring in rings:
                partition.batch_of_ring(ring.tokens)
        self._head = ChainSnapshot(
            epoch=epoch, universe=universe, rings=rings, partition=partition
        )
        self.epoch_mode = epoch_mode
        self.epochs_advanced = 0
        self.caches_invalidated = 0
        self.delta_counters: dict[str, int] = {
            "commits": 0,
            "worlds_retained": 0,
            "worlds_invalidated": 0,
            "kernel_retained": 0,
            "kernel_invalidated": 0,
            "modules_extended": 0,
            "modules_rebuilt": 0,
            "memo_dropped": 0,
            "parts_retained": 0,
        }

    def current(self) -> ChainSnapshot:
        """The head snapshot (immutable — safe to use without the lock)."""
        with self._lock:
            return self._head

    @property
    def epoch(self) -> int:
        return self.current().epoch

    def commit(self, ring: Ring, retain_untouched: bool = False) -> ChainSnapshot:
        """Append an accepted ring; returns the new head snapshot.

        In ``replace`` mode (the default) the new snapshot starts cold
        (its caches rebuild on first use); the previous epoch's warm
        state is dropped with the snapshot — that is the deterministic
        invalidation the epoch counter makes observable.

        In ``delta`` mode the commit routes through
        :meth:`ChainSnapshot.advance`: warm worlds, kernel states and
        module decompositions survive for every component/batch the
        ring does not touch, and the per-commit retention report is
        accumulated into :attr:`delta_counters`.  ``retain_untouched``
        is subsumed (delta mode always carries untouched batches).

        With ``retain_untouched`` (partitioned states only — shard
        workers use it) the commit carries every batch sub-snapshot the
        ring does *not* touch into the new epoch, warm state included:
        those batches' (universe, rings) pairs are unchanged, so every
        derived structure — solver cache, module decomposition, result
        memo — is still exact.  Only the touched batch starts cold.

        Raises:
            ValueError: duplicate ring id, or (partitioned) a ring that
                spans batches / names unknown tokens.
        """
        with self._lock:
            old = self._head
            if any(existing.rid == ring.rid for existing in old.rings):
                raise ValueError(f"duplicate ring id {ring.rid!r} in commit")
            touched = None
            if old.partition is not None:
                touched = old.partition.batch_of_ring(ring.tokens)
            if self.epoch_mode == "delta":
                delta = EpochDelta(ring=ring, touched_batch=touched)
                head = old.advance(delta)
                self._head = head
                self.epochs_advanced += 1
                self.delta_counters["commits"] += 1
                for name, value in delta.as_counters().items():
                    self.delta_counters[name] += value
                # Keep the replace-mode meaning ("warm solver state was
                # dropped"): memo drops happen on every delta commit and
                # would turn this into a commit counter; they are already
                # visible as delta.memo_dropped.
                if (
                    delta.worlds_invalidated
                    or delta.kernel_invalidated
                    or delta.modules_rebuilt
                ):
                    self.caches_invalidated += 1
            else:
                head = ChainSnapshot(
                    epoch=old.epoch + 1,
                    universe=old.universe,
                    rings=old.rings + (ring,),
                    partition=old.partition,
                )
                dropped_warm = old.cache_built
                if retain_untouched and touched is not None:
                    with old._lock:
                        carried = {
                            batch: sub
                            for batch, sub in old._parts.items()
                            if batch != touched
                        }
                        dropped = old._parts.get(touched)
                    head._parts.update(carried)
                    dropped_warm = dropped is not None and dropped.cache_built
                self._head = head
                self.epochs_advanced += 1
                if dropped_warm:
                    self.caches_invalidated += 1
        if events.enabled():
            events.emit(events.EpochAdvanced(epoch=head.epoch, rings=len(head.rings)))
        return head

    def next_seq(self) -> int:
        """The proposal sequence number a newly committed ring should use."""
        head = self.current()
        return 1 + max((ring.seq for ring in head.rings), default=-1)
