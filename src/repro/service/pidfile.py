"""Single-daemon ownership guard for sockets and journal directories.

Two daemons interleaving appends into one journal (or racing on one
unix socket path) would corrupt exactly the state the journal exists
to protect.  :class:`PidFile` is the boring, standard answer: write
``<pid>`` to a well-known file, refuse to start when the file names a
process that is still alive, silently reclaim it when the process is
gone (a SIGKILLed daemon never runs its cleanup — stale pidfiles are
the *normal* crash residue, not an error).

Used by ``serve``: the pidfile lives inside the journal directory when
``--journal`` is given (guarding the journal) and next to the socket
path otherwise (guarding the listener).  Plain stdio serves guard
nothing — there is no shared resource to own.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["PID_NAME", "AlreadyRunning", "PidFile", "pid_alive"]

PID_NAME = "daemon.pid"


class AlreadyRunning(RuntimeError):
    """Another live daemon owns this socket path or journal directory."""

    def __init__(self, path: Path, pid: int) -> None:
        super().__init__(
            f"another daemon (pid {pid}) owns {path.parent}; refusing to "
            f"start — stop it first, or remove {path} if it is wrong"
        )
        self.path = path
        self.pid = pid


def pid_alive(pid: int) -> bool:
    """Is ``pid`` a running process we could signal?"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else — still alive
    return True


class PidFile:
    """Acquire/release ownership of a path-shaped resource.

    Use as a context manager::

        with PidFile.for_journal(journal_dir):
            ...  # serve

    Raises:
        AlreadyRunning: the pidfile names a live process.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._owned = False

    @classmethod
    def for_journal(cls, directory: str | os.PathLike) -> "PidFile":
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return cls(directory / PID_NAME)

    @classmethod
    def for_socket(cls, socket_path: str | os.PathLike) -> "PidFile":
        return cls(Path(os.fspath(socket_path) + ".pid"))

    def acquire(self) -> "PidFile":
        existing = self.read()
        if existing is not None and existing != os.getpid():
            if pid_alive(existing):
                raise AlreadyRunning(self.path, existing)
            # Stale: the owner died without cleanup.  Reclaim.
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._owned = True
        return self

    def read(self) -> int | None:
        """The pid recorded in the file, or ``None`` if absent/garbled."""
        try:
            text = self.path.read_text(encoding="utf-8").strip()
            return int(text)
        except (OSError, ValueError):
            return None

    def release(self) -> None:
        if not self._owned:
            return
        self._owned = False
        # Only remove a file we still own — a reclaimer may have
        # overwritten it while we were being debugged/suspended.
        if self.read() == os.getpid():
            try:
                self.path.unlink()
            except OSError:
                pass

    def __enter__(self) -> "PidFile":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
