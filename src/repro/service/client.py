"""A small JSONL client for the selection daemon's socket front-end.

Single-op calls speak strict request/response lockstep: every call
writes one line and reads one line back, so no correlation machinery
is needed beyond the echoed ``id``.  :meth:`ServiceClient.request_many`
/ :meth:`ServiceClient.select_many` instead *pipeline*: all request
lines go out in one write, then the responses — which the server
guarantees arrive in request order — are read back.  Against a
pipelined server the burst lands in the admission queue together,
which is what lets the daemon micro-batch one client's requests.

Transport loss is typed: a peer that dies mid-request (daemon crash,
socket gone, connection refused) raises :class:`ServiceUnavailable` —
never a bare ``BrokenPipeError``/``ConnectionResetError`` — so callers
can tell retryable transport loss from protocol errors.

With a :class:`RetrySpec` the client turns that loss into exactly-once
semantics across a daemon restart: a failed single-op call reconnects
under a deadline with exponential backoff + seeded jitter and resends
the *same* payload.  Every op the client resends is idempotent —
``select`` is a pure function of (snapshot, parameters), probes are
read-only, and ``commit`` always carries a ring id (auto-generated
when the caller gave none), which the daemon deduplicates: a commit
whose ack was lost in the crash is replayed as a no-op, one whose
frame never landed is applied once.  ``shutdown`` is never retried
(the whole point is that the peer goes away), and pipelined bursts
(``request_many``) are not resent — a burst interrupted mid-read has
no single safe resume point, so the typed error surfaces instead.

The CLI ``client`` subcommand is a thin wrapper around this class;
tests and user scripts can use it directly::

    with ServiceClient("/tmp/repro.sock", retry=RetrySpec()) as client:
        response = client.select(target="t03", c=2.0, ell=2)
        if response.ok:
            print(sorted(response.tokens))
        client.commit(response.tokens, c=2.0, ell=2)
"""

from __future__ import annotations

import os
import random
import socket
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..resilience import faults
from .protocol import SelectRequest, SelectResponse, decode, encode

__all__ = ["RetrySpec", "ServiceClient", "ServiceUnavailable"]


class ServiceUnavailable(ConnectionError):
    """The daemon is unreachable, or died mid-request.

    Retryable transport loss — the request may or may not have been
    applied, which is exactly why retries go through idempotent
    payloads (see the module docstring).  Distinct from protocol-level
    errors, which arrive as typed *responses*.
    """


@dataclass(frozen=True, slots=True)
class RetrySpec:
    """Deadline-aware reconnect policy for single-op calls.

    Attributes:
        deadline_s: total wall-clock budget for reconnect + resend
            attempts; once spent, :class:`ServiceUnavailable` raises
            with the attempt count.
        base_delay_s: sleep before the first retry.
        multiplier: backoff factor per attempt.
        max_delay_s: backoff cap.
        jitter: fraction of each delay randomized (0 = none, 0.25 =
            +/-25%), drawn from a stream seeded by ``seed`` so chaos
            tests replay the exact same schedule.
        seed: jitter stream seed.
    """

    deadline_s: float = 10.0
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")


class ServiceClient:
    """One connection to a :func:`~repro.service.server.serve_socket` daemon.

    Args:
        path: the unix-socket path the daemon listens on.
        timeout: per-response socket timeout in seconds.
        retry: reconnect/resend policy for single-op calls (``None``
            disables retries; transport loss still raises the typed
            :class:`ServiceUnavailable`).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        timeout: float = 60.0,
        retry: RetrySpec | None = None,
    ) -> None:
        self._path = os.fspath(path)
        self._timeout = timeout
        self._retry = retry
        self._rng = (
            None if retry is None else random.Random(f"client-jitter:{retry.seed}")
        )
        self._sock: socket.socket | None = None
        self._reader = None
        self._next_id = 0
        # A per-instance nonce keeps auto-generated commit rids unique
        # across client instances (they double as idempotency keys).
        self._nonce = f"{os.getpid():x}-{random.getrandbits(32):08x}"
        if retry is None:
            self._connect()
        else:
            self._call_with_retry(None)

    # -- transport -----------------------------------------------------------

    def _connect(self) -> None:
        self._teardown()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        try:
            sock.connect(self._path)
        except OSError as exc:
            sock.close()
            raise ServiceUnavailable(
                f"cannot connect to service at {self._path}: {exc}"
            ) from exc
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8")

    def _teardown(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _send(self, data: bytes) -> None:
        if self._sock is None:
            raise ServiceUnavailable(
                f"connection to {self._path} is closed"
            )
        try:
            self._sock.sendall(data)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            if isinstance(exc, socket.timeout):
                raise
            raise ServiceUnavailable(
                f"service at {self._path} dropped the connection "
                f"mid-request: {exc}"
            ) from exc

    def _read_line(self) -> str:
        try:
            line = self._reader.readline()
        except (ConnectionError, OSError) as exc:
            if isinstance(exc, socket.timeout):
                raise
            raise ServiceUnavailable(
                f"service at {self._path} dropped the connection "
                f"mid-response: {exc}"
            ) from exc
        if not line:
            raise ServiceUnavailable(
                f"service at {self._path} closed the connection"
            )
        return line

    def _roundtrip(self, payload: Mapping) -> dict:
        self._send((encode(payload) + "\n").encode("utf-8"))
        return decode(self._read_line())

    def _call_with_retry(self, payload: Mapping | None) -> dict | None:
        """Connect (and, with a payload, round-trip) under the deadline.

        Attempt 0 runs immediately; each further attempt reconnects
        after an exponentially backed-off, jittered sleep.  The fault
        site ``client.reconnect`` fires per attempt (``attempt`` is
        the retry number), which is how chaos tests steer exactly
        which reconnect survives.
        """
        spec = self._retry
        assert spec is not None
        deadline = time.monotonic() + spec.deadline_s
        delay = spec.base_delay_s
        attempt = 0
        last_exc: Exception | None = None
        while True:
            plan = faults.active()
            if plan is not None:
                plan.check("client.reconnect", attempt=attempt)
            try:
                if self._sock is None or attempt > 0:
                    self._connect()
                if payload is None:
                    return None
                return self._roundtrip(payload)
            except ServiceUnavailable as exc:
                last_exc = exc
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            sleep = min(delay, spec.max_delay_s)
            if spec.jitter and self._rng is not None:
                sleep *= 1.0 + spec.jitter * (2.0 * self._rng.random() - 1.0)
            time.sleep(max(0.0, min(sleep, remaining)))
            delay = delay * spec.multiplier if delay > 0 else spec.base_delay_s
            attempt += 1
        raise ServiceUnavailable(
            f"service at {self._path} unavailable after {attempt + 1} "
            f"attempt(s) within {spec.deadline_s:g}s"
        ) from last_exc

    # -- plumbing ------------------------------------------------------------

    def request(self, payload: Mapping) -> dict:
        """Send one raw op object; returns the decoded response object.

        With a :class:`RetrySpec`, transport loss reconnects and
        resends the identical payload until the deadline — except for
        ``shutdown``, which is never retried.
        """
        try:
            return self._roundtrip(payload)
        except ServiceUnavailable:
            if self._retry is None or payload.get("op") == "shutdown":
                raise
            self._teardown()  # the broken socket is done; force reconnect
            return self._call_with_retry(payload)

    def request_many(self, payloads: Sequence[Mapping]) -> list[dict]:
        """Pipeline raw op objects: one write, responses in order.

        Never resent: a burst interrupted mid-read has no single safe
        resume point, so transport loss raises
        :class:`ServiceUnavailable` for the caller to re-issue.
        """
        if not payloads:
            return []
        burst = "".join(encode(payload) + "\n" for payload in payloads)
        self._send(burst.encode("utf-8"))
        return [decode(self._read_line()) for _ in payloads]

    def _autoid(self, prefix: str) -> str:
        self._next_id += 1
        return f"{prefix}{self._next_id}"

    # -- ops -----------------------------------------------------------------

    def select(
        self,
        target: str,
        c: float,
        ell: int,
        mode: str = "ladder",
        epoch: int | None = None,
        time_budget: float | None = None,
        max_mixins: int | None = None,
        seed: int = 0,
        request_id: str | None = None,
        fault_plan: Mapping | None = None,
    ) -> SelectResponse:
        """Run one selection; returns the typed response."""
        request = SelectRequest(
            request_id=request_id or self._autoid("c"),
            target=target,
            c=c,
            ell=ell,
            mode=mode,
            epoch=epoch,
            time_budget=time_budget,
            max_mixins=max_mixins,
            seed=seed,
            fault_plan=fault_plan,
        )
        return SelectResponse.from_dict(self.request(request.to_dict()))

    def select_many(
        self, requests: Sequence[SelectRequest]
    ) -> list[SelectResponse]:
        """Pipeline a burst of selections; typed responses in order."""
        return [
            SelectResponse.from_dict(payload)
            for payload in self.request_many(
                [request.to_dict() for request in requests]
            )
        ]

    def commit(
        self,
        tokens: Sequence[str],
        c: float,
        ell: int,
        rid: str | None = None,
    ) -> dict:
        """Append an accepted ring to the chain; advances the epoch.

        When retries are enabled and no ``rid`` is given, a unique one
        is generated client-side so a resend across a daemon restart
        deduplicates instead of double-applying.
        """
        if rid is None and self._retry is not None:
            rid = f"cli:{self._nonce}:{self._next_id + 1}"
        payload: dict = {
            "op": "commit",
            "id": self._autoid("c"),
            "tokens": sorted(tokens),
            "c": c,
            "ell": ell,
        }
        if rid is not None:
            payload["rid"] = rid
        return self.request(payload)

    def epoch(self) -> dict:
        """Current epoch / ring count / queue depth."""
        return self.request({"op": "epoch", "id": self._autoid("c")})

    def stats(self) -> dict:
        """The service's counter snapshot (plus telemetry, when enabled)."""
        return self.request({"op": "stats", "id": self._autoid("c")})

    def metrics(self) -> str:
        """The telemetry registry as Prometheus text exposition."""
        return str(self.request({"op": "metrics", "id": self._autoid("c")})["body"])

    def health(self) -> dict:
        """The ready/degraded/draining probe payload."""
        return self.request({"op": "health", "id": self._autoid("c")})

    def shutdown(self) -> dict:
        """Ask the daemon to drain and stop (never retried)."""
        return self.request({"op": "shutdown", "id": self._autoid("c")})

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
