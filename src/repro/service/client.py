"""A small JSONL client for the selection daemon's socket front-end.

Single-op calls speak strict request/response lockstep: every call
writes one line and reads one line back, so no correlation machinery
is needed beyond the echoed ``id``.  :meth:`ServiceClient.request_many`
/ :meth:`ServiceClient.select_many` instead *pipeline*: all request
lines go out in one write, then the responses — which the server
guarantees arrive in request order — are read back.  Against a
pipelined server the burst lands in the admission queue together,
which is what lets the daemon micro-batch one client's requests.

The CLI ``client`` subcommand is a thin wrapper around this class;
tests and user scripts can use it directly::

    with ServiceClient("/tmp/repro.sock") as client:
        response = client.select(target="t03", c=2.0, ell=2)
        if response.ok:
            print(sorted(response.tokens))
        client.commit(response.tokens, c=2.0, ell=2)
"""

from __future__ import annotations

import os
import socket
from typing import Mapping, Sequence

from .protocol import SelectRequest, SelectResponse, decode, encode

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a :func:`~repro.service.server.serve_socket` daemon.

    Args:
        path: the unix-socket path the daemon listens on.
        timeout: per-response socket timeout in seconds.
    """

    def __init__(self, path: str | os.PathLike, timeout: float = 60.0) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(os.fspath(path))
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    def request(self, payload: Mapping) -> dict:
        """Send one raw op object; returns the decoded response object."""
        self._sock.sendall((encode(payload) + "\n").encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return decode(line)

    def request_many(self, payloads: Sequence[Mapping]) -> list[dict]:
        """Pipeline raw op objects: one write, responses in order."""
        if not payloads:
            return []
        burst = "".join(encode(payload) + "\n" for payload in payloads)
        self._sock.sendall(burst.encode("utf-8"))
        responses = []
        for _ in payloads:
            line = self._reader.readline()
            if not line:
                raise ConnectionError("service closed the connection")
            responses.append(decode(line))
        return responses

    def _autoid(self, prefix: str) -> str:
        self._next_id += 1
        return f"{prefix}{self._next_id}"

    # -- ops -----------------------------------------------------------------

    def select(
        self,
        target: str,
        c: float,
        ell: int,
        mode: str = "ladder",
        epoch: int | None = None,
        time_budget: float | None = None,
        max_mixins: int | None = None,
        seed: int = 0,
        request_id: str | None = None,
        fault_plan: Mapping | None = None,
    ) -> SelectResponse:
        """Run one selection; returns the typed response."""
        request = SelectRequest(
            request_id=request_id or self._autoid("c"),
            target=target,
            c=c,
            ell=ell,
            mode=mode,
            epoch=epoch,
            time_budget=time_budget,
            max_mixins=max_mixins,
            seed=seed,
            fault_plan=fault_plan,
        )
        return SelectResponse.from_dict(self.request(request.to_dict()))

    def select_many(
        self, requests: Sequence[SelectRequest]
    ) -> list[SelectResponse]:
        """Pipeline a burst of selections; typed responses in order."""
        return [
            SelectResponse.from_dict(payload)
            for payload in self.request_many(
                [request.to_dict() for request in requests]
            )
        ]

    def commit(
        self,
        tokens: Sequence[str],
        c: float,
        ell: int,
        rid: str | None = None,
    ) -> dict:
        """Append an accepted ring to the chain; advances the epoch."""
        payload: dict = {
            "op": "commit",
            "id": self._autoid("c"),
            "tokens": sorted(tokens),
            "c": c,
            "ell": ell,
        }
        if rid is not None:
            payload["rid"] = rid
        return self.request(payload)

    def epoch(self) -> dict:
        """Current epoch / ring count / queue depth."""
        return self.request({"op": "epoch", "id": self._autoid("c")})

    def stats(self) -> dict:
        """The service's counter snapshot (plus telemetry, when enabled)."""
        return self.request({"op": "stats", "id": self._autoid("c")})

    def metrics(self) -> str:
        """The telemetry registry as Prometheus text exposition."""
        return str(self.request({"op": "metrics", "id": self._autoid("c")})["body"])

    def health(self) -> dict:
        """The ready/degraded/draining probe payload."""
        return self.request({"op": "health", "id": self._autoid("c")})

    def shutdown(self) -> dict:
        """Ask the daemon to drain and stop."""
        return self.request({"op": "shutdown", "id": self._autoid("c")})

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
