"""The selection service layer: a batched, cache-warm daemon.

PRs 1–4 made one selection fast, observable and fault-tolerant; this
package makes *many concurrent* selections cheap by running them
through a long-lived daemon instead of one-shot CLI invocations:

* :mod:`repro.service.protocol` — the JSONL wire types (requests,
  responses, typed rejection/error codes);
* :mod:`repro.service.state` — chain snapshot epochs and the per-epoch
  warm :class:`~repro.core.perf.cache.SolverCache` /
  :class:`~repro.core.modules.ModuleUniverse`, advanced across commits
  either cold (``replace``) or incrementally (``delta``,
  :class:`EpochDelta`);
* :mod:`repro.service.batching` — bounded admission and epoch-aware
  micro-batching;
* :mod:`repro.service.daemon` — :class:`SelectionService`, the worker
  loop tying it together;
* :mod:`repro.service.partition` — the TokenMagic batch partition as a
  deterministic service-level shard key;
* :mod:`repro.service.router` — :class:`ShardRouter`, batch-keyed
  routing of requests over shard worker processes, each keeping its
  owned batches' warm caches across commits that touch other batches;
* :mod:`repro.service.server` / :mod:`repro.service.client` — stdio
  and unix-socket front-ends plus the matching client (both serve a
  single daemon or a shard router behind the same ops);
* :mod:`repro.service.journal` — the durable commit journal: a
  CRC-framed, fsync-batched write-ahead log plus compacted snapshots,
  replayed on startup into a byte-identical twin of a crashed daemon;
* :mod:`repro.service.pidfile` — single-daemon ownership guard for
  socket paths and journal directories.

The service changes *when* work happens, never *what* is selected:
``tests/test_service_equivalence.py`` pins every answer byte-identical
to a direct :func:`repro.core.bfs.bfs_select` /
:func:`repro.resilience.ladder.ladder_select` call at the same seed,
and ``benchmarks/test_bench_service.py`` records the batched-warm vs
sequential-cold throughput in ``benchmarks/results/BENCH_service.json``.
"""

from .batching import AdmissionQueue, Batch
from .client import RetrySpec, ServiceClient, ServiceUnavailable
from .daemon import PendingResult, SelectionService, ServiceConfig, ShardOutOfSync
from .journal import Journal, JournalCorruption, JournalError, RecoveredState
from .partition import TokenPartition
from .pidfile import AlreadyRunning, PidFile
from .protocol import (
    KNOWN_MODES,
    KNOWN_OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    SelectRequest,
    SelectResponse,
)
from .router import RouterConfig, ShardRouter
from .server import serve_socket, serve_stdio
from .state import EPOCH_MODES, ChainSnapshot, EpochDelta, ServiceState
from .telemetry import ServiceTelemetry

__all__ = [
    "PROTOCOL_VERSION",
    "KNOWN_OPS",
    "KNOWN_MODES",
    "ProtocolError",
    "SelectRequest",
    "SelectResponse",
    "AdmissionQueue",
    "Batch",
    "ChainSnapshot",
    "EpochDelta",
    "EPOCH_MODES",
    "ServiceState",
    "ServiceConfig",
    "PendingResult",
    "SelectionService",
    "ShardOutOfSync",
    "TokenPartition",
    "RouterConfig",
    "ShardRouter",
    "ServiceTelemetry",
    "ServiceClient",
    "ServiceUnavailable",
    "RetrySpec",
    "Journal",
    "JournalError",
    "JournalCorruption",
    "RecoveredState",
    "PidFile",
    "AlreadyRunning",
    "serve_stdio",
    "serve_socket",
]
