"""TokenMagic batch partitioning as a service-level shard key.

The paper's Section 4 closes a batch once it holds λ tokens, giving
every batch its **own disjoint mixin universe**: a ring spending a
token of batch ``b`` draws its mixins from batch ``b`` only, so rings
never span batches and the DA-MS instances of different batches share
no state at all.  :mod:`repro.tokenmagic.batch` builds that structure
over a live chain; this module is the same rule applied to a service
snapshot — a deterministic, serializable partition of the universe
that the daemon, the shard router and every shard worker agree on.

``batch_of`` is the routing function (the service-side analogue of
:func:`repro.tokenmagic.batch.batch_of_token`): requests route by the
batch of their target, commits touch exactly the batch of their ring.
Because batches are disjoint, per-batch warm state — solver cache,
module decomposition, result memo — stays **valid across commits that
touch other batches**: the (universe, rings) pair a batch solves
against did not change, so every derived structure is still exact.
That retention rule is what the shard router's throughput win is made
of; :class:`~repro.service.state.ChainSnapshot` enforces it.

Determinism: tokens are assigned in sorted order, λ = ceil(n / batches)
per batch, so two processes constructing a partition from the same
universe and batch count agree byte-for-byte on every assignment.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..core.ring import Ring, TokenUniverse

__all__ = ["TokenPartition"]


class TokenPartition:
    """A deterministic partition of a universe into disjoint batches.

    Args:
        universe: the mixin universe T to partition.
        batches: how many batches to form (capped at ``len(universe)``;
            at least 1).

    Example::

        >>> from repro.core.ring import TokenUniverse
        >>> universe = TokenUniverse(
        ...     {"t1": "h1", "t2": "h2", "t3": "h1", "t4": "h3"})
        >>> part = TokenPartition(universe, batches=2)
        >>> [part.batch_of(t) for t in ("t1", "t2", "t3", "t4")]
        [0, 0, 1, 1]
        >>> sorted(part.universe_of(1).tokens)
        ['t3', 't4']
    """

    def __init__(self, universe: TokenUniverse, batches: int) -> None:
        if batches < 1:
            raise ValueError("batches must be >= 1")
        tokens = sorted(universe.tokens)
        if not tokens:
            raise ValueError("cannot partition an empty universe")
        self.batches = min(batches, len(tokens))
        lam = math.ceil(len(tokens) / self.batches)
        self._index: dict[str, int] = {}
        slices: list[tuple[str, ...]] = []
        for b in range(self.batches):
            members = tuple(tokens[b * lam : (b + 1) * lam])
            slices.append(members)
            for token in members:
                self._index[token] = b
        self._slices = tuple(slices)
        self._universes: list[TokenUniverse | None] = [None] * self.batches
        self._source = universe

    # -- routing -------------------------------------------------------------

    def batch_of(self, token: str) -> int:
        """The batch owning ``token`` (the shard key).

        Raises:
            KeyError: ``token`` is not in the partitioned universe.
        """
        try:
            return self._index[token]
        except KeyError:
            raise KeyError(
                f"token {token!r} is not in the partitioned universe"
            ) from None

    def batch_of_ring(self, tokens: Iterable[str]) -> int:
        """The single batch a ring's tokens live in.

        Raises:
            ValueError: the ring spans batches or names unknown tokens —
                TokenMagic forbids cross-batch rings (Sec 4: mixins come
                from the target's own batch), and the service rejects
                such commits as ``bad_request`` instead of corrupting
                per-batch state.
        """
        seen: set[int] = set()
        for token in tokens:
            try:
                seen.add(self._index[token])
            except KeyError:
                raise ValueError(
                    f"ring token {token!r} is not in the partitioned universe"
                ) from None
        if not seen:
            raise ValueError("ring has no tokens")
        if len(seen) > 1:
            raise ValueError(
                f"ring spans batches {sorted(seen)}; TokenMagic rings are "
                f"batch-local (mixins come from the target's batch)"
            )
        return seen.pop()

    # -- per-batch views -----------------------------------------------------

    def tokens_of(self, batch: int) -> tuple[str, ...]:
        return self._slices[batch]

    def universe_of(self, batch: int) -> TokenUniverse:
        """The batch's disjoint mixin universe (built once, cached)."""
        cached = self._universes[batch]
        if cached is None:
            cached = TokenUniverse(
                {token: self._source.ht_of(token) for token in self._slices[batch]}
            )
            self._universes[batch] = cached
        return cached

    def rings_of(self, batch: int, rings: Sequence[Ring]) -> tuple[Ring, ...]:
        """The rings whose tokens live in ``batch``, history order kept."""
        members = set(self._slices[batch])
        return tuple(ring for ring in rings if ring.tokens <= members)

    def touched_by(self, tokens: Iterable[str]) -> set[int]:
        """Every batch any of ``tokens`` belongs to (unknowns ignored)."""
        return {self._index[t] for t in tokens if t in self._index}

    # -- transport -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {"batches": self.batches}

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TokenPartition)
            and self.batches == other.batches
            and self._slices == other._slices
        )

    def __repr__(self) -> str:
        return (
            f"TokenPartition(batches={self.batches}, "
            f"tokens={len(self._index)})"
        )
