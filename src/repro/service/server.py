"""JSONL front-ends for the selection daemon: stdio and unix socket.

Both front-ends speak the line protocol of
:mod:`repro.service.protocol`: one request object per line in, exactly
one response object per line out, in request order per connection.
The stdio mode serves a single client (the stream ends the session);
the socket mode accepts any number of sequential or concurrent
connections, each handled on its own thread — the daemon's admission
queue is the only shared mutable surface, and it is thread-safe.

A malformed line never kills the session: it is answered with a
``bad_request`` rejection and the loop continues, so one buggy client
request cannot take the service down for everyone else.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import IO, Iterator

from ..obs.telemetry import PROMETHEUS_CONTENT_TYPE
from .daemon import SelectionService
from .protocol import (
    KNOWN_OPS,
    REJECT_BAD_REQUEST,
    ProtocolError,
    SelectRequest,
    decode,
    encode,
)

__all__ = ["handle_line", "serve_stdio", "serve_socket"]


def handle_line(service: SelectionService, line: str) -> tuple[str, bool]:
    """Serve one request line; returns ``(response_line, keep_going)``.

    ``keep_going`` is ``False`` only for a ``shutdown`` op.  All other
    outcomes — including malformed input — keep the session alive.
    """
    try:
        payload = decode(line)
        op = payload.get("op", "select")
        if op not in KNOWN_OPS:
            raise ProtocolError(
                f"unknown op {op!r}; known: {', '.join(KNOWN_OPS)}"
            )
        if op == "select":
            request = SelectRequest.from_dict(payload)
            response = service.submit(request).wait()
            return encode(response.to_dict()), True
        if op == "commit":
            snapshot = service.commit_ring(
                tokens=[str(token) for token in payload["tokens"]],
                c=float(payload["c"]),
                ell=int(payload["ell"]),
                rid=payload.get("rid"),
            )
            return encode(
                {
                    "id": payload.get("id"),
                    "status": "ok",
                    "epoch": snapshot.epoch,
                    "rings": len(snapshot.rings),
                }
            ), True
        if op == "epoch":
            head = service.state.current()
            return encode(
                {
                    "id": payload.get("id"),
                    "status": "ok",
                    "epoch": head.epoch,
                    "rings": len(head.rings),
                    "queue_depth": service.queue.depth(),
                }
            ), True
        if op == "stats":
            return encode(
                {"id": payload.get("id"), "status": "ok", **service.stats()}
            ), True
        if op == "metrics":
            return encode(
                {
                    "id": payload.get("id"),
                    "status": "ok",
                    "content_type": PROMETHEUS_CONTENT_TYPE,
                    "body": service.metrics_text(),
                }
            ), True
        if op == "health":
            return encode(
                {"id": payload.get("id"), "status": "ok", **service.health()}
            ), True
        # op == "shutdown"
        return encode(
            {"id": payload.get("id"), "status": "ok", "shutdown": True}
        ), False
    except (ProtocolError, KeyError, TypeError, ValueError) as exc:
        return encode(
            {
                "id": None,
                "status": "rejected",
                "code": REJECT_BAD_REQUEST,
                "detail": str(exc),
            }
        ), True


def serve_stdio(
    service: SelectionService, in_stream: IO[str], out_stream: IO[str]
) -> int:
    """Serve JSONL requests from ``in_stream`` until EOF or ``shutdown``.

    Returns the number of lines served.  Responses are flushed per
    line so a pipe-driving client can work request/response lockstep.
    """
    served = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        response_line, keep_going = handle_line(service, line)
        out_stream.write(response_line + "\n")
        out_stream.flush()
        served += 1
        if not keep_going:
            break
    return served


def _connection_lines(sock: socket.socket) -> Iterator[str]:
    """Yield newline-terminated lines from a connected socket."""
    buffer = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            yield line.decode("utf-8")


def serve_socket(
    service: SelectionService,
    path: str | os.PathLike,
    ready: threading.Event | None = None,
) -> int:
    """Listen on a unix socket at ``path`` until a ``shutdown`` op.

    Each accepted connection runs on its own thread.  ``ready`` (if
    given) is set once the socket is bound — tests and the CLI use it
    to avoid connect races.  Returns the number of connections served.
    """
    path = os.fspath(path)
    if os.path.exists(path):
        os.unlink(path)
    stop = threading.Event()
    connections = 0
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as listener:
        listener.bind(path)
        listener.listen()
        listener.settimeout(0.1)
        if ready is not None:
            ready.set()

        def handle(conn: socket.socket) -> None:
            with conn:
                for line in _connection_lines(conn):
                    line = line.strip()
                    if not line:
                        continue
                    response_line, keep_going = handle_line(service, line)
                    conn.sendall((response_line + "\n").encode("utf-8"))
                    if not keep_going:
                        stop.set()
                        return

        threads: list[threading.Thread] = []
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            connections += 1
            thread = threading.Thread(target=handle, args=(conn,), daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=5.0)
    if os.path.exists(path):
        os.unlink(path)
    return connections
