"""JSONL front-ends for the selection daemon: stdio and unix socket.

Both front-ends speak the line protocol of
:mod:`repro.service.protocol`: one request object per line in, exactly
one response object per line out, in request order per connection.
The stdio mode serves a single client (the stream ends the session);
the socket mode accepts any number of sequential or concurrent
connections, each handled on its own thread.

Connections are **pipelined**, not lockstep: a connection's reader
admits every ``select`` line into the daemon the moment it arrives
(admission order = arrival order), while a writer thread emits the
responses strictly in request order.  A client that writes ten selects
in one burst therefore lands them in the admission queue together —
which is what lets the daemon micro-batch them — instead of one
request per round trip.  Non-``select`` ops (``commit``, ``stats``,
``metrics``, ``health``, ``epoch``, ``shutdown``) act as *barriers*
in both directions: the writer evaluates them only once every earlier
select on the connection has resolved, and selects written *after*
them are executed only once the barrier has run — so "select, read
the counters" observes the select completed, and "commit, select"
answers against the post-commit epoch, exactly as under the old
lockstep loop.

A malformed line never kills the session: it is answered with a
``bad_request`` rejection and the loop continues, so one buggy client
request cannot take the service down for everyone else.

The ``service`` argument is duck-typed: anything with the
:class:`~repro.service.daemon.SelectionService` front-end surface —
``submit`` / ``commit_ring`` / ``state`` / ``queue_depth`` /
``stats`` / ``metrics_text`` / ``health`` — serves here, which is how
``serve --shards N`` puts a
:class:`~repro.service.router.ShardRouter` behind the same ops.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
from typing import IO, Iterator

from ..obs.telemetry import PROMETHEUS_CONTENT_TYPE
from .protocol import (
    KNOWN_OPS,
    REJECT_BAD_REQUEST,
    ProtocolError,
    SelectRequest,
    decode,
    encode,
)

__all__ = ["handle_line", "serve_stdio", "serve_socket"]


def handle_line(service, line: str) -> tuple[str, bool]:
    """Serve one request line; returns ``(response_line, keep_going)``.

    ``keep_going`` is ``False`` only for a ``shutdown`` op.  All other
    outcomes — including malformed input — keep the session alive.
    """
    try:
        payload = decode(line)
        op = payload.get("op", "select")
        if op not in KNOWN_OPS:
            raise ProtocolError(
                f"unknown op {op!r}; known: {', '.join(KNOWN_OPS)}"
            )
        if op == "select":
            request = SelectRequest.from_dict(payload)
            response = service.submit(request).wait()
            return encode(response.to_dict()), True
        if op == "commit":
            snapshot = service.commit_ring(
                tokens=[str(token) for token in payload["tokens"]],
                c=float(payload["c"]),
                ell=int(payload["ell"]),
                rid=payload.get("rid"),
            )
            return encode(
                {
                    "id": payload.get("id"),
                    "status": "ok",
                    "epoch": snapshot.epoch,
                    "rings": len(snapshot.rings),
                }
            ), True
        if op == "epoch":
            head = service.state.current()
            return encode(
                {
                    "id": payload.get("id"),
                    "status": "ok",
                    "epoch": head.epoch,
                    "rings": len(head.rings),
                    "queue_depth": service.queue_depth(),
                }
            ), True
        if op == "stats":
            return encode(
                {"id": payload.get("id"), "status": "ok", **service.stats()}
            ), True
        if op == "metrics":
            return encode(
                {
                    "id": payload.get("id"),
                    "status": "ok",
                    "content_type": PROMETHEUS_CONTENT_TYPE,
                    "body": service.metrics_text(),
                }
            ), True
        if op == "health":
            return encode(
                {"id": payload.get("id"), "status": "ok", **service.health()}
            ), True
        # op == "shutdown"
        return encode(
            {"id": payload.get("id"), "status": "ok", "shutdown": True}
        ), False
    except (ProtocolError, KeyError, TypeError, ValueError) as exc:
        return encode(
            {
                "id": None,
                "status": "rejected",
                "code": REJECT_BAD_REQUEST,
                "detail": str(exc),
            }
        ), True


class _Session:
    """One pipelined connection: eager admission, ordered responses.

    The connection's reader calls :meth:`feed` per received line —
    ``select`` lines are submitted to the service *immediately* and
    their pending slots queued to the outbox; every other line (ops,
    malformed input) is queued raw.  The writer thread drains the
    outbox in order: slots block until their response resolves,
    raw lines run through :func:`handle_line` at their position — the
    barrier that keeps op responses causally after every earlier
    select on the connection.  While any raw line is still queued, new
    selects are queued raw too (executed in order by the writer), so a
    select written after a ``commit`` always sees the commit applied.
    """

    def __init__(self, service, write_line) -> None:
        self.service = service
        self.write_line = write_line
        self.outbox: queue.Queue = queue.Queue()
        self.served = 0
        self.shutdown = False
        self._lock = threading.Lock()
        self._barriers = 0

    def _put_line(self, line: str) -> None:
        with self._lock:
            self._barriers += 1
        self.outbox.put(("line", line))

    def feed(self, line: str) -> bool:
        """Ingest one raw line; returns ``False`` once the session ends."""
        line = line.strip()
        if not line:
            return True
        try:
            payload = decode(line)
        except ProtocolError:
            self._put_line(line)
            return True
        if payload.get("op", "select") == "select":
            try:
                request = SelectRequest.from_dict(payload)
            except ProtocolError:
                self._put_line(line)
                return True
            with self._lock:
                behind_barrier = self._barriers > 0
            if behind_barrier:
                self._put_line(line)
            else:
                self.outbox.put(("slot", self.service.submit(request)))
            return True
        self._put_line(line)
        if payload.get("op") == "shutdown":
            self.shutdown = True
            return False
        return True

    def finish(self) -> None:
        """Signal end of input; the writer drains what is queued."""
        self.outbox.put(("eof", None))

    def write_loop(self) -> None:
        while True:
            kind, value = self.outbox.get()
            if kind == "eof":
                return
            try:
                if kind == "slot":
                    response_line = encode(value.wait().to_dict())
                    keep_going = True
                else:
                    response_line, keep_going = handle_line(self.service, value)
                    with self._lock:
                        self._barriers -= 1
                self.write_line(response_line)
            except Exception:  # noqa: BLE001 - peer gone; stop writing
                return
            self.served += 1
            if not keep_going:
                return


def serve_stdio(service, in_stream: IO[str], out_stream: IO[str]) -> int:
    """Serve JSONL requests from ``in_stream`` until EOF or ``shutdown``.

    Returns the number of responses written.  Responses are flushed
    per line, in request order; requests are admitted as they arrive
    (see :class:`_Session`), so a burst of selects micro-batches.
    """

    def write_line(text: str) -> None:
        out_stream.write(text + "\n")
        out_stream.flush()

    session = _Session(service, write_line)
    writer = threading.Thread(
        target=session.write_loop, name="repro-stdio-writer", daemon=True
    )
    writer.start()
    for line in in_stream:
        if not session.feed(line):
            break
    session.finish()
    writer.join()
    return session.served


def _connection_lines(sock: socket.socket) -> Iterator[str]:
    """Yield newline-terminated lines from a connected socket."""
    buffer = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            yield line.decode("utf-8")


def serve_socket(
    service,
    path: str | os.PathLike,
    ready: threading.Event | None = None,
) -> int:
    """Listen on a unix socket at ``path`` until a ``shutdown`` op.

    Each accepted connection runs a pipelined :class:`_Session` on its
    own reader thread plus a writer thread, so concurrent clients
    interleave freely and a single client's request burst is admitted
    all at once.  ``ready`` (if given) is set once the socket is bound
    — tests and the CLI use it to avoid connect races.  Returns the
    number of connections served.
    """
    path = os.fspath(path)
    if os.path.exists(path):
        os.unlink(path)
    stop = threading.Event()
    connections = 0
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as listener:
        listener.bind(path)
        listener.listen()
        listener.settimeout(0.1)
        if ready is not None:
            ready.set()

        def handle(conn: socket.socket) -> None:
            with conn:

                def write_line(text: str) -> None:
                    conn.sendall((text + "\n").encode("utf-8"))

                session = _Session(service, write_line)
                writer = threading.Thread(
                    target=session.write_loop,
                    name="repro-socket-writer",
                    daemon=True,
                )
                writer.start()
                for line in _connection_lines(conn):
                    if not session.feed(line):
                        break
                session.finish()
                writer.join()
                if session.shutdown:
                    stop.set()

        threads: list[threading.Thread] = []
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            connections += 1
            thread = threading.Thread(target=handle, args=(conn,), daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=5.0)
    if os.path.exists(path):
        os.unlink(path)
    return connections
