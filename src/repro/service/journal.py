"""The durable commit journal: a write-ahead log under the service.

Everything the daemon and the shard router know — accepted rings,
snapshot epochs, the partition — lives in RAM; a crash mid-traffic
would silently lose committed chain state, which a long-running
reproduction of the paper's recursive (c, l)-diversity guarantees
cannot tolerate.  :class:`Journal` closes that hole with the classic
write-ahead discipline:

* every state-mutating op (the genesis configuration, every ring
  commit) is appended to ``wal.jsonl`` **before** it is applied to the
  in-memory :class:`~repro.service.state.ServiceState`;
* frames are CRC-framed JSONL — ``<crc32 hex8> <canonical-json>`` per
  line — keyed by a strictly increasing ``(epoch, seq)`` pair and
  carrying the ring id as the idempotency token, so a replay can both
  verify integrity and refuse double-application;
* appends are fsync-batched: ``sync_every=1`` (the default) makes
  every commit durable before it is acknowledged, larger values
  amortize the fsync over bursts at a bounded durability lag
  (``lag_frames`` in :meth:`stats` is the exposure);
* every ``snapshot_every`` commits the journal writes a *compacted
  snapshot* — one CRC-framed line holding the full chain state — and
  truncates the WAL, so recovery cost is bounded by the compaction
  cadence, not by chain length.

Recovery (:meth:`Journal.recover`) loads the newest valid snapshot,
replays the WAL tail on top of it, and returns a
:class:`RecoveredState` from which ``serve --journal DIR`` rebuilds a
byte-identical twin of the crashed daemon.  Torn tails degrade
gracefully: the first frame that fails its CRC, fails to parse, or
breaks key monotonicity ends the replay, the file is truncated back to
the last valid frame, and the damage is surfaced as a typed
``recovered`` block (``tests/test_service_recovery.py`` pins all of
it).  A snapshot that fails validation falls back to the next older
one rather than aborting recovery.

Fault sites (``journal.append``, ``journal.fsync``,
``journal.replay``) hook the same deterministic
:mod:`repro.resilience.faults` machinery as the rest of the pipeline,
which is how the kill-and-recover chaos soak drives I/O failure paths
without monkeypatching.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from ..core.ring import Ring, TokenUniverse
from ..resilience import faults

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "WAL_NAME",
    "SNAPSHOT_GLOB",
    "JournalError",
    "JournalCorruption",
    "RecoveredState",
    "Journal",
    "encode_frame",
    "decode_frame",
    "scan_frames",
    "metrics_lines",
    "ring_to_doc",
    "ring_from_doc",
]

JOURNAL_FORMAT_VERSION = 1

WAL_NAME = "wal.jsonl"
SNAPSHOT_GLOB = "snapshot-*.json"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.json$")

#: ``op`` vocabulary of journal frames.
FRAME_OPS = ("genesis", "commit", "snapshot")


class JournalError(RuntimeError):
    """A journal operation that cannot proceed (bad dir, bad config)."""


class JournalCorruption(JournalError):
    """A frame or snapshot that failed CRC/parse/monotonicity checks.

    Raised only by the strict paths (``journal_fsck --check``);
    :meth:`Journal.recover` degrades gracefully instead — truncate at
    the last valid frame and report the damage.
    """


# -- framing -----------------------------------------------------------------


def _canonical(body: Mapping) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def encode_frame(body: Mapping) -> str:
    """One CRC-framed journal line (no trailing newline).

    The CRC32 of the canonical JSON body leads the line as eight hex
    digits, so a torn or bit-flipped tail is detected before the JSON
    parser ever runs::

        >>> line = encode_frame({"op": "commit", "epoch": 1, "seq": 0})
        >>> decode_frame(line)["epoch"]
        1
    """
    text = _canonical(body)
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {text}"


def decode_frame(line: str) -> dict:
    """Parse one framed line; raises :class:`JournalCorruption` on damage."""
    if len(line) < 10 or line[8] != " ":
        raise JournalCorruption(f"malformed frame header: {line[:24]!r}")
    crc_text, text = line[:8], line[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        raise JournalCorruption(f"bad CRC field {crc_text!r}") from None
    actual = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise JournalCorruption(
            f"CRC mismatch: frame says {crc_text}, body hashes to {actual:08x}"
        )
    try:
        body = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JournalCorruption(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(body, dict):
        raise JournalCorruption("frame body must be a JSON object")
    return body


def scan_frames(path: Path) -> tuple[list[dict], int, str | None]:
    """Read every valid frame prefix of ``path``.

    Returns ``(frames, valid_bytes, damage)``: the frames decoded
    before the first invalid line, how many bytes of the file they
    span (the truncation point), and a human description of the first
    damage found (``None`` for a clean file).  A final line without a
    newline terminator is treated as torn — a crash mid-append — even
    if its CRC happens to verify.
    """
    frames: list[dict] = []
    valid_bytes = 0
    damage: str | None = None
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return frames, 0, None
    offset = 0
    last_key: tuple[int, int] | None = None
    while offset < len(blob):
        newline = blob.find(b"\n", offset)
        if newline < 0:
            damage = f"torn tail: {len(blob) - offset} byte(s) without newline"
            break
        raw = blob[offset:newline]
        try:
            body = decode_frame(raw.decode("utf-8", errors="strict"))
        except (JournalCorruption, UnicodeDecodeError) as exc:
            damage = f"frame {len(frames)}: {exc}"
            break
        key = (int(body.get("epoch", -1)), int(body.get("seq", -1)))
        if last_key is not None and key <= last_key:
            damage = (
                f"frame {len(frames)}: key {key} not after {last_key} "
                f"(non-monotonic (epoch, seq))"
            )
            break
        last_key = key
        frames.append(body)
        offset = newline + 1
        valid_bytes = offset
    return frames, valid_bytes, damage


# -- chain-state (de)serialization -------------------------------------------


def ring_to_doc(ring: Ring) -> dict:
    return {
        "rid": ring.rid,
        "tokens": sorted(ring.tokens),
        "c": ring.c,
        "ell": ring.ell,
        "seq": ring.seq,
    }


def ring_from_doc(doc: Mapping) -> Ring:
    return Ring(
        rid=str(doc["rid"]),
        tokens=frozenset(str(t) for t in doc["tokens"]),
        c=float(doc["c"]),
        ell=int(doc["ell"]),
        seq=int(doc["seq"]),
    )


def _state_doc(
    universe: TokenUniverse,
    rings: Sequence[Ring],
    batches: int | None,
) -> dict:
    return {
        "universe": {token: universe.ht_of(token) for token in sorted(universe.tokens)},
        "rings": [ring_to_doc(ring) for ring in rings],
        "batches": batches,
    }


@dataclass(slots=True)
class RecoveredState:
    """What a journal replay reconstructed, plus how it went.

    ``recovery`` is the typed ``recovered`` block the service surfaces
    through ``stats``/``health``/``metrics``:

    ============================ ===========================================
    ``snapshot_epoch``           epoch of the compacted snapshot used
                                 (``0`` = genesis)
    ``frames_replayed``          WAL commit frames applied on top of it
    ``torn_tail``                the WAL ended in damage that was cut off
    ``truncated_bytes``          bytes discarded past the last valid frame
    ``damage``                   human description of the damage (or None)
    ============================ ===========================================
    """

    epoch: int
    universe: TokenUniverse
    rings: tuple[Ring, ...]
    batches: int | None
    recovery: dict = field(default_factory=dict)


class Journal:
    """One durable journal directory (WAL + compacted snapshots).

    Args:
        directory: the journal home; created if missing.
        sync_every: fsync after every Nth append (1 = every append is
            durable before the commit is acknowledged; larger values
            batch the fsync and bound the durability lag; 0 disables
            fsync entirely — OS-buffered, crash-unsafe, bench only).
        snapshot_every: write a compacted snapshot and truncate the WAL
            after this many commits (0 disables compaction).

    One process owns a journal at a time — see
    :mod:`repro.service.pidfile` for the guard the CLI installs.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        sync_every: int = 1,
        snapshot_every: int = 64,
    ) -> None:
        if sync_every < 0 or snapshot_every < 0:
            raise JournalError("sync_every and snapshot_every must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_every = sync_every
        self.snapshot_every = snapshot_every
        self.wal_path = self.directory / WAL_NAME
        self._wal = None  # opened lazily by append paths
        self._unsynced = 0
        self._commits_since_snapshot = 0
        self.counters: dict[str, int] = {
            "appends": 0,
            "fsyncs": 0,
            "snapshots": 0,
            "replayed_frames": 0,
            "truncated_bytes": 0,
        }

    # -- write side ----------------------------------------------------------

    def _open_wal(self):
        if self._wal is None:
            self._wal = open(self.wal_path, "a", encoding="utf-8")
        return self._wal

    def _fsync(self) -> None:
        plan = faults.active()
        if plan is not None:
            plan.check("journal.fsync")
        os.fsync(self._wal.fileno())
        self.counters["fsyncs"] += 1
        self._unsynced = 0

    def append(self, body: Mapping) -> None:
        """Append one frame; fsync per the batching policy.

        The caller must hold whatever lock serializes commits — frames
        must land in the same order state mutations are applied.
        """
        plan = faults.active()
        if plan is not None:
            plan.check("journal.append")
        handle = self._open_wal()
        handle.write(encode_frame(body) + "\n")
        handle.flush()
        self.counters["appends"] += 1
        self._unsynced += 1
        if self.sync_every and self._unsynced >= self.sync_every:
            self._fsync()

    def append_genesis(
        self,
        universe: TokenUniverse,
        rings: Sequence[Ring],
        batches: int | None,
    ) -> None:
        """Record the initial chain state (epoch 0) as the first frame."""
        self.append(
            {
                "version": JOURNAL_FORMAT_VERSION,
                "op": "genesis",
                "epoch": 0,
                "seq": -1,
                "data": _state_doc(universe, rings, batches),
            }
        )
        if self.sync_every and self._unsynced:
            self._fsync()

    def append_commit(self, epoch: int, ring: Ring) -> None:
        """WAL a ring commit *before* it is applied to the state.

        ``epoch`` is the epoch the chain will be at once the commit
        applies; the ring id doubles as the idempotency token a
        recovering replay and a retrying client both key on.
        """
        self.append(
            {
                "version": JOURNAL_FORMAT_VERSION,
                "op": "commit",
                "epoch": epoch,
                "seq": ring.seq,
                "token": ring.rid,
                "data": ring_to_doc(ring),
            }
        )
        self._commits_since_snapshot += 1

    def sync(self) -> None:
        """Force any batched appends to disk now."""
        if self._wal is not None and self._unsynced:
            self._fsync()

    def due_for_snapshot(self) -> bool:
        return (
            self.snapshot_every > 0
            and self._commits_since_snapshot >= self.snapshot_every
        )

    def write_snapshot(
        self,
        epoch: int,
        universe: TokenUniverse,
        rings: Sequence[Ring],
        batches: int | None,
    ) -> Path:
        """Compact: persist the full state, then truncate the WAL.

        The snapshot is written to a temp file, fsynced and renamed
        into place before the WAL is touched, so a crash at any point
        leaves either the old (snapshot, WAL) pair or the new one —
        never a state that loses a committed ring.  Replays skip WAL
        frames at or below the snapshot epoch, which also covers a
        crash between the rename and the truncation.
        """
        body = {
            "version": JOURNAL_FORMAT_VERSION,
            "op": "snapshot",
            "epoch": epoch,
            "seq": max((ring.seq for ring in rings), default=-1),
            "data": _state_doc(universe, rings, batches),
        }
        path = self.directory / f"snapshot-{epoch:08d}.json"
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(encode_frame(body) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        # Truncate the WAL: everything up to `epoch` now lives in the
        # snapshot.  Reopen in write mode to drop the old frames.
        if self._wal is not None:
            self._wal.close()
        self._wal = open(self.wal_path, "w", encoding="utf-8")
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self.counters["snapshots"] += 1
        self._commits_since_snapshot = 0
        self._unsynced = 0
        self._prune_snapshots(keep=2)
        return path

    def maybe_snapshot(
        self,
        epoch: int,
        universe: TokenUniverse,
        rings: Sequence[Ring],
        batches: int | None,
    ) -> Path | None:
        """Compact when the cadence says so (the commit-path helper)."""
        if not self.due_for_snapshot():
            return None
        return self.write_snapshot(epoch, universe, rings, batches)

    def _prune_snapshots(self, keep: int) -> None:
        files = sorted(self._snapshot_paths(), reverse=True)
        for path in files[keep:]:
            try:
                path.unlink()
            except OSError:
                pass

    def close(self) -> None:
        self.sync()
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    # -- read side -----------------------------------------------------------

    def _snapshot_paths(self) -> list[Path]:
        return [
            path
            for path in self.directory.glob(SNAPSHOT_GLOB)
            if _SNAPSHOT_RE.match(path.name)
        ]

    def exists(self) -> bool:
        """Is there anything to recover from in this directory?"""
        return bool(self._snapshot_paths()) or (
            self.wal_path.exists() and self.wal_path.stat().st_size > 0
        )

    def _load_base(self) -> tuple[dict | None, list[str]]:
        """The newest valid snapshot body, plus notes on any skipped."""
        notes: list[str] = []
        for path in sorted(self._snapshot_paths(), reverse=True):
            try:
                line = path.read_text(encoding="utf-8").rstrip("\n")
                body = decode_frame(line)
            except (OSError, JournalCorruption) as exc:
                notes.append(f"snapshot {path.name} unusable ({exc}); skipped")
                continue
            if body.get("op") not in ("snapshot", "genesis"):
                notes.append(f"snapshot {path.name} has op {body.get('op')!r}; skipped")
                continue
            return body, notes
        return None, notes

    def recover(self, truncate: bool = True) -> RecoveredState | None:
        """Replay snapshot + WAL tail into a :class:`RecoveredState`.

        Returns ``None`` when the directory holds no journal at all (a
        fresh start).  Damage never raises: the WAL is cut back to its
        last valid frame (``truncate=True`` persists the cut; fsck's
        read-only mode passes ``False``) and the loss is reported in
        ``RecoveredState.recovery``.

        Raises:
            JournalError: a WAL exists but neither a genesis frame nor
                a snapshot does — there is no base state to replay onto.
        """
        plan = faults.active()
        if plan is not None:
            plan.check("journal.replay")
        if not self.exists():
            return None
        base, notes = self._load_base()
        frames, valid_bytes, damage = scan_frames(self.wal_path)
        if base is None:
            # No snapshot yet: the genesis frame must lead the WAL.
            if not frames or frames[0].get("op") != "genesis":
                raise JournalError(
                    f"{self.wal_path} has no genesis frame and no snapshot "
                    f"exists; cannot reconstruct state"
                )
            base = frames[0]
            frames = frames[1:]

        data = base["data"]
        universe = TokenUniverse(dict(data["universe"]))
        rings = [ring_from_doc(doc) for doc in data["rings"]]
        batches = data.get("batches")
        epoch = int(base["epoch"])
        seen = {ring.rid for ring in rings}

        replayed = 0
        for body in frames:
            if body.get("op") != "commit":
                continue
            if int(body["epoch"]) <= epoch:
                continue  # already folded into the snapshot
            token = str(body.get("token", ""))
            if token in seen:
                continue  # idempotency: a double-appended frame is a no-op
            ring = ring_from_doc(body["data"])
            rings.append(ring)
            seen.add(ring.rid)
            epoch = int(body["epoch"])
            replayed += 1

        truncated = 0
        if damage is not None:
            try:
                truncated = self.wal_path.stat().st_size - valid_bytes
            except OSError:
                truncated = 0
            if truncate and truncated > 0:
                with open(self.wal_path, "r+b") as handle:
                    handle.truncate(valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
        self.counters["replayed_frames"] += replayed
        self.counters["truncated_bytes"] += truncated

        recovery = {
            "snapshot_epoch": int(base["epoch"]),
            "frames_replayed": replayed,
            "torn_tail": damage is not None,
            "truncated_bytes": truncated,
            "damage": damage,
        }
        if notes:
            recovery["notes"] = notes
        return RecoveredState(
            epoch=epoch,
            universe=universe,
            rings=tuple(rings),
            batches=None if batches is None else int(batches),
            recovery=recovery,
        )

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """The ``journal`` block of the service ``stats`` payload."""
        return {
            "directory": str(self.directory),
            "sync_every": self.sync_every,
            "snapshot_every": self.snapshot_every,
            "lag_frames": self._unsynced,
            "commits_since_snapshot": self._commits_since_snapshot,
            **{key: value for key, value in sorted(self.counters.items())},
        }

    # -- lifecycle sugar -----------------------------------------------------

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def metrics_lines(
    journal_stats: Mapping | None,
    recovered: Mapping | None,
    prefix: str = "repro_service",
) -> str:
    """Prometheus exposition lines for the journal + recovery blocks.

    Appended to the service's ``metrics`` body so journal durability
    lag and replay/truncation history scrape from the same endpoint as
    everything else.
    """
    lines: list[str] = []
    if journal_stats is not None:
        for name in (
            "appends",
            "fsyncs",
            "snapshots",
            "replayed_frames",
            "truncated_bytes",
        ):
            lines.append(
                f"{prefix}_journal_{name}_total {int(journal_stats.get(name, 0))}"
            )
        lines.append(
            f"{prefix}_journal_lag_frames {int(journal_stats.get('lag_frames', 0))}"
        )
    if recovered is not None:
        lines.append(
            f"{prefix}_recovered_frames_replayed "
            f"{int(recovered.get('frames_replayed', 0))}"
        )
        lines.append(
            f"{prefix}_recovered_snapshot_epoch "
            f"{int(recovered.get('snapshot_epoch', 0))}"
        )
        lines.append(
            f"{prefix}_recovered_torn_tail "
            f"{1 if recovered.get('torn_tail') else 0}"
        )
        lines.append(
            f"{prefix}_recovered_truncated_bytes "
            f"{int(recovered.get('truncated_bytes', 0))}"
        )
    if not lines:
        return ""
    return "\n".join(lines) + "\n"
