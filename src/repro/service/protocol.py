"""The service wire protocol: typed requests/responses over JSONL.

One JSON object per line in both directions.  Every request line names
an ``op``; the service answers each line with exactly one response
line, in request order per connection, so a client can correlate by
position or by the echoed ``id``.

Ops (the closed vocabulary of :data:`KNOWN_OPS`):

============  ==============================================================
``select``    run one mixin selection (the payload of
              :class:`SelectRequest`)
``commit``    append an accepted ring to the chain snapshot — advances the
              epoch and invalidates warm caches
``epoch``     report the current epoch / ring count / queue depth
``stats``     dump the service counters, telemetry histograms/gauges and
              resilience counters
``metrics``   render the telemetry registry as Prometheus text
              exposition (``body`` + ``content_type`` in the response)
``health``    ready/degraded/draining probe wired to the resilience
              ladder and admission queue
``shutdown``  drain and stop the service loop
============  ==============================================================

Responses carry ``status``: ``"ok"``, ``"rejected"`` (typed admission
refusal — the request never ran) or ``"error"`` (the request ran and
failed; ``code`` mirrors the CLI sysexits vocabulary, e.g.
``"budget_exceeded"`` for exit 75, ``"constraint_violation"`` for
exit 65).

Served by a :class:`~repro.service.router.ShardRouter` (``serve
--shards N``) the same ops answer shard-tagged supersets: ``stats``
and ``health`` gain a ``shards`` list (one row per worker — queue
depth, warm/memo hit rates, rung distribution, per-shard health), and
the ``metrics`` body appends per-shard exposition series labelled
``shard="N"`` after the fleet-wide families.  Clients that ignore the
extra keys keep working unchanged.

Example::

    >>> req = SelectRequest(request_id="r1", target="t3", c=2.0, ell=2)
    >>> line = encode(req.to_dict())
    >>> decode(line)["target"]
    't3'
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "PROTOCOL_VERSION",
    "KNOWN_OPS",
    "KNOWN_MODES",
    "REJECT_QUEUE_FULL",
    "REJECT_STALE_EPOCH",
    "REJECT_BAD_REQUEST",
    "ERROR_BUDGET_EXCEEDED",
    "ERROR_INFEASIBLE",
    "ERROR_CONSTRAINT_VIOLATION",
    "ERROR_FAULT_INJECTED",
    "ERROR_INTERNAL",
    "ProtocolError",
    "SelectRequest",
    "SelectResponse",
    "encode",
    "decode",
]

PROTOCOL_VERSION = 1

KNOWN_OPS = ("select", "commit", "epoch", "stats", "metrics", "health", "shutdown")

#: ``exact`` runs only :func:`repro.core.bfs.bfs_select` (a budget trip
#: is a typed error); ``ladder`` degrades through
#: :func:`repro.resilience.ladder.ladder_select`.
KNOWN_MODES = ("exact", "ladder")

# -- rejection codes (admission control: the request never executed) --------
REJECT_QUEUE_FULL = "queue_full"
REJECT_STALE_EPOCH = "stale_epoch"
REJECT_BAD_REQUEST = "bad_request"

# -- error codes (the request executed and failed) --------------------------
ERROR_BUDGET_EXCEEDED = "budget_exceeded"        # CLI exit 75 (EX_TEMPFAIL)
ERROR_INFEASIBLE = "infeasible"
ERROR_CONSTRAINT_VIOLATION = "constraint_violation"  # CLI exit 65 (EX_DATAERR)
ERROR_FAULT_INJECTED = "fault_injected"
ERROR_INTERNAL = "internal_error"


class ProtocolError(ValueError):
    """A line that cannot be parsed into a valid request."""


@dataclass(frozen=True, slots=True)
class SelectRequest:
    """One mixin-selection request.

    Attributes:
        request_id: client-chosen correlation id, echoed verbatim.
        target: the token t_tau to consume.
        c: required diversity parameter c_tau.
        ell: required diversity parameter l_tau.
        mode: ``"exact"`` or ``"ladder"`` (see :data:`KNOWN_MODES`).
        epoch: pin the request to this snapshot epoch; the service
            rejects it (``stale_epoch``) if the chain has advanced by
            execution time.  ``None`` means "whatever is current".
        time_budget: per-request wall-clock cap for the exact search.
        max_mixins: cap on the mixin-set size to search.
        seed: seeds the degraded rungs' RNG so ladder requests are
            reproducible (the exact rung is deterministic regardless).
        fault_plan: an optional :class:`~repro.resilience.faults.FaultPlan`
            document applied around *this request only* — a fresh plan
            instance per request, so one chaos request cannot poison
            its batch-mates.
    """

    request_id: str
    target: str
    c: float
    ell: int
    mode: str = "ladder"
    epoch: int | None = None
    time_budget: float | None = None
    max_mixins: int | None = None
    seed: int = 0
    fault_plan: Mapping | None = None

    def __post_init__(self) -> None:
        if self.mode not in KNOWN_MODES:
            raise ProtocolError(
                f"unknown mode {self.mode!r}; known: {', '.join(KNOWN_MODES)}"
            )
        if not self.request_id:
            raise ProtocolError("request_id must be non-empty")

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {
            "op": "select",
            "id": self.request_id,
            "target": self.target,
            "c": self.c,
            "ell": self.ell,
            "mode": self.mode,
        }
        if self.epoch is not None:
            payload["epoch"] = self.epoch
        if self.time_budget is not None:
            payload["budget"] = self.time_budget
        if self.max_mixins is not None:
            payload["max_mixins"] = self.max_mixins
        if self.seed:
            payload["seed"] = self.seed
        if self.fault_plan is not None:
            payload["fault_plan"] = dict(self.fault_plan)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SelectRequest":
        try:
            return cls(
                request_id=str(payload["id"]),
                target=str(payload["target"]),
                c=float(payload["c"]),
                ell=int(payload["ell"]),
                mode=str(payload.get("mode", "ladder")),
                epoch=(
                    None if payload.get("epoch") is None
                    else int(payload["epoch"])
                ),
                time_budget=(
                    None if payload.get("budget") is None
                    else float(payload["budget"])
                ),
                max_mixins=(
                    None if payload.get("max_mixins") is None
                    else int(payload["max_mixins"])
                ),
                seed=int(payload.get("seed", 0)),
                fault_plan=payload.get("fault_plan"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ProtocolError):
                raise
            raise ProtocolError(f"malformed select request: {exc}") from exc


@dataclass(frozen=True, slots=True)
class SelectResponse:
    """The service's answer to one :class:`SelectRequest`.

    ``status`` is ``"ok"`` / ``"rejected"`` / ``"error"``.  On ``ok``
    the selection fields are set; otherwise ``code`` and ``detail``
    explain the refusal or failure.  ``epoch``, ``batch_id`` and
    ``batch_size`` locate the execution (rejected requests keep the
    epoch that refused them and batch_id -1).
    """

    request_id: str
    status: str
    epoch: int
    tokens: tuple[str, ...] = ()
    mixins: tuple[str, ...] = ()
    rung: str | None = None
    claimed_c: float | None = None
    claimed_ell: int | None = None
    degraded: bool = False
    candidates_checked: int | None = None
    elapsed: float = 0.0
    batch_id: int = -1
    batch_size: int = 0
    code: str | None = None
    detail: str | None = None
    warm_cache: bool = False
    attrs: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {
            "id": self.request_id,
            "status": self.status,
            "epoch": self.epoch,
            "batch_id": self.batch_id,
            "batch_size": self.batch_size,
        }
        if self.status == "ok":
            payload.update(
                tokens=sorted(self.tokens),
                mixins=sorted(self.mixins),
                rung=self.rung,
                claimed_c=self.claimed_c,
                claimed_ell=self.claimed_ell,
                degraded=self.degraded,
                elapsed=round(self.elapsed, 6),
                warm_cache=self.warm_cache,
            )
            if self.candidates_checked is not None:
                payload["candidates_checked"] = self.candidates_checked
        else:
            payload["code"] = self.code
            if self.detail:
                payload["detail"] = self.detail
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SelectResponse":
        return cls(
            request_id=str(payload.get("id", "")),
            status=str(payload.get("status", "error")),
            epoch=int(payload.get("epoch", -1)),
            tokens=tuple(payload.get("tokens", ())),
            mixins=tuple(payload.get("mixins", ())),
            rung=payload.get("rung"),
            claimed_c=payload.get("claimed_c"),
            claimed_ell=payload.get("claimed_ell"),
            degraded=bool(payload.get("degraded", False)),
            candidates_checked=payload.get("candidates_checked"),
            elapsed=float(payload.get("elapsed", 0.0)),
            batch_id=int(payload.get("batch_id", -1)),
            batch_size=int(payload.get("batch_size", 0)),
            code=payload.get("code"),
            detail=payload.get("detail"),
            warm_cache=bool(payload.get("warm_cache", False)),
            attrs=dict(payload.get("attrs", {})),
        )


def encode(payload: Mapping) -> str:
    """One JSONL line (no trailing newline), keys sorted for stability.

        >>> line = encode(SelectRequest(
        ...     request_id="q1", target="t3", c=2.0, ell=2,
        ...     mode="exact").to_dict())
        >>> line
        '{"c":2.0,"ell":2,"id":"q1","mode":"exact","op":"select","target":"t3"}'
        >>> SelectRequest.from_dict(decode(line)).target
        't3'
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def decode(line: str) -> dict:
    """Parse one JSONL line into a dict, or raise :class:`ProtocolError`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
    return payload
