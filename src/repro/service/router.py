"""Batch-keyed shard routing over process shards.

The paper's TokenMagic partition (Sec 4) makes the mixin universes of
different batches disjoint, so selection requests whose targets fall in
different batches share no solver state at all.  :class:`ShardRouter`
exploits that: ``batch_of(target)`` is the shard key, each shard is a
forked worker process running a partitioned
:class:`~repro.service.daemon.SelectionService` (without its worker
thread), and every shard keeps the warm ``SolverCache`` /
``ModuleUniverse`` / result-memo slices of the batches it owns **across
commits that touch other batches** — the retention rule of
:meth:`repro.service.state.ServiceState.commit`.  On a
commit-interleaved hot-target workload that is the throughput win: the
single daemon rebuilds its whole warm state at every epoch, the fleet
rebuilds exactly one batch slice.

Routing and equivalence
-----------------------

* ``submit`` routes a request to ``partition.batch_of(target) % shards``
  and enqueues it on that shard's admission sub-queue (bounded, typed
  ``queue_full`` backpressure, identical detail text to the single
  daemon).  A target outside the universe routes to shard 0, whose
  worker raises the same ``KeyError`` the single partitioned service
  would — the error response is byte-identical.
* Each shard's dispatcher thread drains its sub-queue with the same
  micro-batching policy the daemon uses
  (:class:`~repro.service.batching.AdmissionQueue`) and ships whole
  batches to the worker, which serves them through
  :meth:`SelectionService.execute_requests` — the same snapshot
  resolution, fault scoping and memo behaviour as the queued path.
* ``submit_many`` scatters a multi-batch request list across shards and
  merges responses back **in submission order**, so a scattered run
  reads exactly like a serialized one.
* ``tests/test_service_shard.py`` pins router responses byte-identical
  (modulo execution coordinates: elapsed, batch ids, warm/memo flags)
  to the partitioned single-worker service at equal seeds.

Lifecycle, loss and recovery
----------------------------

Worker dispatches run under
:func:`repro.resilience.supervisor.supervised_call` — the same typed
:class:`~repro.core.perf.parallel.WorkerLost` / bounded-retry /
death-grace machinery the BFS fan-out uses, not a second process
stack.  A pool respawns a dead worker with the *original* initargs, so
every dispatch carries the router's epoch: a lagging worker raises
:class:`~repro.service.daemon.ShardOutOfSync`, and the supervised
retry answers by attaching a full sync (ring log + epoch) to the
resend.  Commits are idempotent by ring id on the worker, so a commit
retried across a mid-commit death cannot double-apply.  Router-level
``fault_plan`` documents install *in the workers* (site
``shard.batch``), which is how the chaos suite kills a shard mid-batch
and asserts byte-identical replays.

Observability
-------------

The router runs its own fleet-level
:class:`~repro.service.telemetry.ServiceTelemetry` (admission, queue
wait, batch round-trips, statuses, ``shard.retries`` /
``shard.worker_lost`` marks) and aggregates shard-tagged ``stats`` /
``metrics`` / ``health`` probes: ``stats()`` carries a ``shards`` row
per worker (queue depth, warm/memo hit rates, rung distribution,
solve-latency quantiles), ``metrics_text()`` concatenates the fleet
exposition with per-shard bodies labelled ``shard="N"``, and
``health()`` degrades when the recent window saw shard retries or
losses, or any shard is degraded/unreachable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.perf import parallel
from ..core.ring import Ring, TokenUniverse
from ..obs import events
from ..obs.clock import Clock
from ..resilience.supervisor import RetryPolicy, WorkerLost, supervised_call
from .batching import EPOCH_ANY, AdmissionQueue, Batch
from .daemon import (
    PendingResult,
    _init_shard_worker,
    _shard_call,
)
from .journal import Journal, metrics_lines
from .partition import TokenPartition
from .protocol import (
    ERROR_INTERNAL,
    REJECT_QUEUE_FULL,
    SelectRequest,
    SelectResponse,
)
from .state import ChainSnapshot, ServiceState
from .telemetry import ServiceTelemetry

__all__ = ["RouterConfig", "ShardRouter"]


@dataclass(frozen=True, slots=True)
class RouterConfig:
    """Tunables of one :class:`ShardRouter`.

    Attributes:
        shards: worker processes to run (capped at the partition's
            batch count — a shard with nothing to own is pointless).
        batches: TokenMagic batches to partition the universe into
            (``None`` = one batch per shard).  More batches than
            shards means each shard owns several batch slices and a
            commit invalidates only the touched one.
        max_queue: per-shard admission bound (same ``queue_full``
            semantics and detail text as the single daemon).
        max_batch: largest micro-batch dispatched to a worker at once.
        linger_s: per-shard drain linger for batch-mates.
        default_budget: per-request exact-search budget when the
            request does not name one.
        workers: process fan-out *inside* each shard's candidate scan
            (forwarded to the worker's ``ServiceConfig``; 0 = serial —
            the right answer when shards already saturate the cores).
        fault_plan: a fault-plan document installed *in every shard
            worker* (each forked process gets its own counters).  This
            is how chaos reaches the ``shard.batch`` site; unlike
            ``ServiceConfig.fault_plan`` it is not applied per request.
        telemetry: run the fleet-level lifecycle instrument.
        clock: seconds source for the *router's* telemetry (workers
            always use real time; a forked copy of a manual clock
            would never advance).
        retry: supervised-dispatch policy (sentinel timeout, death
            grace, bounded backoff) for every worker call.
        journal: a :class:`~repro.service.journal.Journal` the
            *router's mirror* makes every commit durable through —
            same write-ahead discipline as the single daemon; workers
            never touch the journal (they are rebuilt from the mirror
            on respawn/sync).
        epoch_mode: the shard workers' commit behaviour — ``"replace"``
            keeps PR-8 semantics (the touched batch starts cold,
            untouched batches carry over); ``"delta"`` additionally
            delta-advances the *touched* batch's warm state
            (:meth:`~repro.service.state.ChainSnapshot.advance`).
            Responses are byte-identical in either mode.
    """

    shards: int = 2
    batches: int | None = None
    max_queue: int = 256
    max_batch: int = 32
    linger_s: float = 0.0
    default_budget: float | None = None
    workers: int = 0
    fault_plan: Mapping | None = None
    telemetry: bool = True
    clock: Clock | None = None
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=2, hang_timeout=120.0)
    )
    journal: Journal | None = None
    epoch_mode: str = "replace"


class _Shard:
    """One shard's router-side half: sub-queue, dispatcher, pool."""

    __slots__ = ("index", "owned", "queue", "pool", "thread", "lock")

    def __init__(self, index: int, owned: tuple[int, ...], queue: AdmissionQueue):
        self.index = index
        self.owned = owned
        self.queue = queue
        self.pool = None
        self.thread: threading.Thread | None = None
        # Serializes pool access between the dispatcher thread and
        # commit/stats broadcasts — one supervised call per pool at a
        # time keeps death observation unambiguous.
        self.lock = threading.Lock()


class ShardRouter:
    """Batch-keyed routing over shard worker processes.

    Args:
        universe: the mixin universe T of the initial snapshot.
        rings: the initial ring history (must be batch-local).
        config: see :class:`RouterConfig`.

    Drop-in for :class:`~repro.service.daemon.SelectionService` where
    the front-ends are concerned: ``submit`` / ``submit_wait`` /
    ``commit_ring`` / ``stats`` / ``health`` / ``metrics_text`` /
    ``queue_depth`` / ``epoch`` / ``state`` all match, so
    :mod:`repro.service.server` serves either behind the same ops.
    """

    def __init__(
        self,
        universe: TokenUniverse,
        rings: Sequence[Ring] = (),
        config: RouterConfig | None = None,
        *,
        epoch: int = 0,
        recovered: Mapping | None = None,
    ) -> None:
        self.config = config or RouterConfig()
        if self.config.shards < 1:
            raise ValueError("shards must be >= 1")
        batches = (
            self.config.shards
            if self.config.batches is None
            else self.config.batches
        )
        self.partition = TokenPartition(universe, batches=batches)
        self.shards = min(self.config.shards, self.partition.batches)
        self.journal = self.config.journal
        self.recovered: dict | None = dict(recovered) if recovered else None
        self._commit_lock = threading.Lock()
        # The router's own chain mirror: source of truth for epoch,
        # ring log (sync payloads) and commit validation.  Its caches
        # are never built — solving happens in the workers.
        self.state = ServiceState(
            universe,
            rings,
            partition=self.partition,
            epoch=epoch,
            epoch_mode=self.config.epoch_mode,
        )
        self._universe = universe
        self._rings0 = tuple(rings)
        self._epoch0 = epoch
        self._shards = [
            _Shard(
                index,
                tuple(
                    b for b in range(self.partition.batches)
                    if b % self.shards == index
                ),
                AdmissionQueue(
                    max_depth=self.config.max_queue,
                    max_batch=self.config.max_batch,
                    linger_s=self.config.linger_s,
                ),
            )
            for index in range(self.shards)
        ]
        self._started = False
        self._stopping = threading.Event()
        self._seq_lock = threading.Lock()
        self._dispatch_seq = 0
        self._counters_lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.telemetry: ServiceTelemetry | None = (
            ServiceTelemetry(clock=self.config.clock)
            if self.config.telemetry
            else None
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardRouter":
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        self._stopping.clear()
        config_kwargs = dict(
            max_batch=self.config.max_batch,
            default_budget=self.config.default_budget,
            workers=self.config.workers,
            telemetry=self.config.telemetry,
            epoch_mode=self.config.epoch_mode,
        )
        fault_doc = (
            None if self.config.fault_plan is None else dict(self.config.fault_plan)
        )
        for shard in self._shards:
            shard.pool = parallel._pool(
                1,
                _init_shard_worker,
                (
                    shard.index,
                    shard.owned,
                    self._universe,
                    self._rings0,
                    self.partition.batches,
                    config_kwargs,
                    fault_doc,
                    self._epoch0,
                ),
            )
            shard.thread = threading.Thread(
                target=self._dispatch_loop,
                args=(shard,),
                name=f"repro-shard-router-{shard.index}",
                daemon=True,
            )
            shard.thread.start()
        # One ping per shard: forces worker spawn + initializer now, so
        # the first real dispatch measures solving, not process birth.
        for shard in self._shards:
            self._call(shard, {"op": "ping"})
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the fleet; with ``drain`` (default) serve what is queued."""
        for shard in self._shards:
            shard.queue.close()
        if not drain:
            self._stopping.set()
        for shard in self._shards:
            if shard.thread is not None:
                shard.thread.join()
                shard.thread = None
        for shard in self._shards:
            if shard.pool is not None:
                shard.pool.terminate()
                shard.pool.join()
                shard.pool = None
        self._started = False

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- chain growth --------------------------------------------------------

    def commit_ring(
        self, tokens: Sequence[str], c: float, ell: int, rid: str | None = None
    ) -> ChainSnapshot:
        """Append an accepted ring and broadcast it to every shard.

        The router's mirror commits first (same ``svc:<seq>`` rid rule
        and batch-locality validation as the single daemon — a
        spanning ring raises ``ValueError`` before any worker hears of
        it), then each shard applies the ring with
        ``retain_untouched=True``: only the worker owning the touched
        batch drops warm state, every other slice carries over.  Shard
        application is idempotent by ring id, so supervised retries of
        the broadcast are safe; a shard lost mid-broadcast catches up
        through the epoch guard of its next dispatch.

        Idempotent by ring id at the router too: recommitting a rid
        already in the mirror returns the current head unchanged (the
        client-retry dedup).  With a journal configured, the frame is
        appended before the mirror mutates — the same write-ahead
        discipline as the single daemon.
        """
        with self._commit_lock:
            old = self.state.current()
            if rid is not None:
                for existing in old.rings:
                    if existing.rid == rid:
                        self._bump("commits.replayed")
                        return old
            seq = 1 + max((ring.seq for ring in old.rings), default=-1)
            ring = Ring(
                rid=rid or f"svc:{seq}",
                tokens=frozenset(tokens),
                c=c,
                ell=ell,
                seq=seq,
            )
            # Validate batch-locality before journaling, so a doomed
            # commit never lands a WAL frame.
            self.partition.batch_of_ring(ring.tokens)
            if self.journal is not None:
                self.journal.append_commit(old.epoch + 1, ring)
            snapshot = self.state.commit(ring)
            if self.journal is not None:
                self.journal.maybe_snapshot(
                    snapshot.epoch,
                    snapshot.universe,
                    snapshot.rings,
                    self.partition.batches,
                )
        if self.telemetry is not None:
            self.telemetry.epoch_advanced(snapshot.epoch, len(snapshot.rings))
        payload = {"op": "commit", "epoch": old.epoch, "ring": ring}
        sync = {"rings": old.rings, "epoch": old.epoch}
        for shard in self._shards:
            try:
                self._call(shard, payload, sync=sync)
            except WorkerLost:
                # The shard resyncs on its next dispatch (epoch guard);
                # the commit itself already happened in the mirror.
                self._bump("commits.lost")
                if self.telemetry is not None:
                    self.telemetry.mark("shard.worker_lost")
        return snapshot

    @property
    def epoch(self) -> int:
        return self.state.epoch

    # -- submission ----------------------------------------------------------

    def _route(self, target: str) -> _Shard:
        try:
            batch = self.partition.batch_of(target)
        except KeyError:
            # Unknown target: let a worker raise the identical KeyError
            # the single partitioned service would (internal_error
            # response, same detail) instead of inventing a router-side
            # error shape.
            batch = 0
        return self._shards[batch % self.shards]

    def submit(self, request: SelectRequest) -> PendingResult:
        """Admit ``request`` on its target's shard (non-blocking)."""
        shard = self._route(request.target)
        pending = PendingResult(request=request)
        epoch_key = EPOCH_ANY if request.epoch is None else request.epoch
        if shard.queue.offer(pending, epoch_key):
            if self.telemetry is not None:
                pending.admitted_at = self.telemetry.admitted(self.queue_depth())
            if events.enabled():
                events.emit(events.RequestAdmitted(queue_depth=self.queue_depth()))
        else:
            self._bump(f"rejected.{REJECT_QUEUE_FULL}")
            if self.telemetry is not None:
                self.telemetry.admission_rejected(REJECT_QUEUE_FULL)
            if events.enabled():
                events.emit(events.RequestRejected(code=REJECT_QUEUE_FULL))
            pending.resolve(
                SelectResponse(
                    request_id=request.request_id,
                    status="rejected",
                    epoch=self.state.epoch,
                    code=REJECT_QUEUE_FULL,
                    detail=(
                        f"admission queue at capacity "
                        f"({shard.queue.max_depth}); retry later"
                    ),
                )
            )
        return pending

    def submit_wait(
        self, request: SelectRequest, timeout: float | None = None
    ) -> SelectResponse:
        return self.submit(request).wait(timeout)

    def submit_many(
        self, requests: Sequence[SelectRequest]
    ) -> list[PendingResult]:
        """Scatter ``requests`` across their shards, slots in input order."""
        return [self.submit(request) for request in requests]

    def submit_wait_many(
        self, requests: Sequence[SelectRequest], timeout: float | None = None
    ) -> list[SelectResponse]:
        """Scatter, then gather responses merged back in input order."""
        return [slot.wait(timeout) for slot in self.submit_many(requests)]

    def queue_depth(self) -> int:
        """Admitted-but-unserved requests across every shard sub-queue."""
        return sum(shard.queue.depth() for shard in self._shards)

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self, shard: _Shard) -> None:
        while not self._stopping.is_set():
            batch = shard.queue.drain_batch(timeout=0.05)
            if batch is None:
                if shard.queue.closed and shard.queue.depth() == 0:
                    return
                continue
            self._dispatch_batch(shard, batch)

    def _dispatch_batch(self, shard: _Shard, batch: Batch[PendingResult]) -> None:
        snap = self.state.current()
        with self._seq_lock:
            seq = self._dispatch_seq
            self._dispatch_seq += 1
        telemetry = self.telemetry
        started_ats: list[float] = []
        if telemetry is not None:
            telemetry.batch_started(len(batch), snap.epoch)
            started_ats = [
                telemetry.request_started(item.admitted_at) for item in batch.items
            ]
        if events.enabled():
            events.emit(events.BatchExecuted(size=len(batch), epoch=snap.epoch))
        self._bump("batches")
        payload = {
            "op": "batch",
            "epoch": snap.epoch,
            "seq": seq,
            "requests": [item.request for item in batch.items],
        }
        sync = {"rings": snap.rings, "epoch": snap.epoch}
        try:
            responses = self._call(shard, payload, sync=sync, index=seq)
        except WorkerLost as exc:
            self._bump("shard.worker_lost")
            if telemetry is not None:
                telemetry.mark("shard.worker_lost")
            responses = [
                SelectResponse(
                    request_id=item.request.request_id,
                    status="error",
                    epoch=snap.epoch,
                    batch_id=seq,
                    batch_size=len(batch),
                    code=ERROR_INTERNAL,
                    detail=str(exc),
                )
                for item in batch.items
            ]
        for position, (item, response) in enumerate(zip(batch.items, responses)):
            self._bump("requests")
            self._bump(f"status.{response.status}")
            if response.degraded:
                self._bump("degraded")
            if telemetry is not None:
                telemetry.request_finished(
                    response, item.admitted_at, started_ats[position]
                )
            item.resolve(response)

    def _call(
        self,
        shard: _Shard,
        payload: Mapping,
        sync: Mapping | None = None,
        index: int = 0,
    ):
        """One supervised worker RPC, sync attached on retries.

        Attempt 0 ships the bare payload; any retry — respawned
        worker, timeout, :class:`ShardOutOfSync` — resends it with the
        full sync (ring log + epoch, captured with the payload so they
        always agree) and the attempt number, which is what lets
        ``at_index``/``on_attempt`` fault specs spare the replay.
        """
        def make_args(attempt: int) -> tuple:
            doc = dict(payload)
            doc["attempt"] = attempt
            if attempt > 0 and sync is not None:
                doc["sync"] = dict(sync)
            return (doc,)

        def on_retry(attempt: int, reason: str) -> None:
            self._bump("shard.retries")
            if self.telemetry is not None:
                self.telemetry.mark("shard.retries")

        with shard.lock:
            return supervised_call(
                shard.pool,
                _shard_call,
                make_args,
                policy=self.config.retry,
                index=index,
                on_retry=on_retry,
            )

    # -- observability -------------------------------------------------------

    def _probe(self, op: str, extra: Mapping | None = None) -> list:
        """Run ``op`` on every shard; exceptions become error rows."""
        snap = self.state.current()
        sync = {"rings": snap.rings, "epoch": snap.epoch}
        results = []
        for shard in self._shards:
            payload = {"op": op, "epoch": snap.epoch}
            if extra:
                payload.update(extra)
            try:
                results.append((shard, self._call(shard, payload, sync=sync)))
            except WorkerLost as exc:
                results.append((shard, exc))
        return results

    @staticmethod
    def _shard_row(shard: _Shard, raw) -> dict:
        if isinstance(raw, Exception):
            return {
                "shard": shard.index,
                "batches": list(shard.owned),
                "queue_depth": shard.queue.depth(),
                "error": str(raw),
            }
        tele: Mapping = raw.get("telemetry", {})
        hist: Mapping = tele.get("histograms", {}).get("solve_s", {})
        gauges: Mapping = tele.get("gauges", {})
        return {
            "shard": shard.index,
            "batches": list(shard.owned),
            "queue_depth": shard.queue.depth(),
            "requests": raw.get("counters", {}).get("requests", 0),
            "epoch": raw.get("epoch"),
            "warm_hit_rate": gauges.get("warm_cache_rate"),
            "memo_hit_rate": gauges.get("memo_hit_rate"),
            "p50_s": hist.get("p50"),
            "p99_s": hist.get("p99"),
            "rungs": raw.get("resilience", {}).get("rung_served", {}),
            "caches_invalidated": raw.get("caches_invalidated", 0),
            "delta": raw.get("delta", {}),
        }

    def _aggregate_delta(self, rows: list) -> dict:
        """Fleet-wide ``delta.*`` counters.

        ``commits`` comes from the router's mirror (every shard applies
        every broadcast commit, so summing the per-shard count would
        multiply it by the fleet size); the retention/invalidation
        counters are genuine per-shard work and are summed.
        """
        total = dict(self.state.delta_counters)
        for row in rows:
            for name, value in row.get("delta", {}).items():
                if name != "commits":
                    total[name] = total.get(name, 0) + int(value)
        return total

    def stats(self) -> dict:
        """The fleet ``stats`` payload: aggregate plus per-shard rows.

        Same shape as :meth:`SelectionService.stats` (so
        :func:`~repro.service.telemetry.format_stats` renders it), with
        an extra ``shards`` list carrying one condensed row per worker
        — sub-queue depth, requests served, warm/memo hit rates,
        solve-latency quantiles and the rung distribution, all probed
        live from the shard processes.
        """
        with self._counters_lock:
            counters = dict(sorted(self.counters.items()))
        queue_depth = self.queue_depth()
        offered = sum(shard.queue.offered for shard in self._shards)
        refused = sum(shard.queue.refused for shard in self._shards)
        rows = [self._shard_row(shard, raw) for shard, raw in self._probe("stats")]
        payload = {
            "epoch": self.state.epoch,
            "rings": len(self.state.current().rings),
            "queue_depth": queue_depth,
            "offered": offered,
            "refused": refused,
            "epochs_advanced": self.state.epochs_advanced,
            "caches_invalidated": sum(
                row.get("caches_invalidated", 0) for row in rows
            ),
            "epoch_mode": self.state.epoch_mode,
            "delta": self._aggregate_delta(rows),
            "counters": counters,
            "shards": rows,
        }
        if self.journal is not None:
            payload["journal"] = self.journal.stats()
        if self.recovered is not None:
            payload["recovered"] = dict(self.recovered)
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.snapshot(queue_depth)
            payload["resilience"] = self.telemetry.resilience_counters()
        return payload

    def health(self) -> dict:
        """Fleet health: the router window plus every shard's verdict.

        Degraded when the recent window saw shard retries or worker
        losses, when any shard reports degraded, or when any shard is
        unreachable after supervised retries; draining once the
        sub-queues are closed.  ``shards`` carries the per-worker
        breakdown.
        """
        draining = any(shard.queue.closed for shard in self._shards)
        queue_depth = self.queue_depth()
        max_queue = self.config.max_queue * self.shards
        if self.telemetry is not None:
            payload = self.telemetry.health(
                queue_depth=queue_depth, max_queue=max_queue, draining=draining
            )
            window_s = payload["window_s"]
            for name in ("shard.retries", "shard.worker_lost"):
                count = self.telemetry.window_count(name)
                if count > 0:
                    payload["reasons"].append(
                        f"{name}={count} in the last {window_s:g}s"
                    )
        else:
            payload = {
                "health": "draining" if draining else "ready",
                "reasons": [],
                "queue_depth": queue_depth,
                "max_queue": max_queue,
            }
        rows = []
        for shard, raw in self._probe("health"):
            if isinstance(raw, Exception):
                rows.append(
                    {"shard": shard.index, "health": "unreachable",
                     "reasons": [str(raw)]}
                )
                payload["reasons"].append(f"shard {shard.index} unreachable")
            else:
                rows.append(raw)
                if raw.get("health") == "degraded":
                    payload["reasons"].append(f"shard {shard.index} degraded")
        payload["epoch_mode"] = self.state.epoch_mode
        payload["delta_commits"] = self.state.delta_counters["commits"]
        payload["shards"] = rows
        if self.recovered is not None:
            payload["recovered"] = dict(self.recovered)
        if payload["health"] == "ready" and payload["reasons"]:
            payload["health"] = "degraded"
        return payload

    def metrics_text(self) -> str:
        """Fleet exposition plus per-shard bodies labelled ``shard="N"``.

        The router's own (unlabelled) body leads and carries the
        ``# TYPE`` declarations; each shard's body follows with the
        ``shard`` label and no repeated declarations, so one scrape
        reads fleet-wide and per-shard series from a single endpoint.
        """
        with self._counters_lock:
            counters = dict(sorted(self.counters.items()))
        if self.telemetry is not None:
            body = self.telemetry.prometheus(
                queue_depth=self.queue_depth(), service_counters=counters
            )
        else:
            from ..obs.telemetry import render_prometheus

            body = render_prometheus(
                {}, prefix="repro_service", extra_counters=counters
            )
        parts = [body]
        parts.append(
            metrics_lines(
                None if self.journal is None else self.journal.stats(),
                self.recovered,
            )
        )
        for shard, raw in self._probe("metrics", extra={"type_lines": False}):
            if not isinstance(raw, Exception):
                parts.append(raw)
        return "".join(parts)

    def drain_summary(self) -> str | None:
        if self.telemetry is None:
            return None
        return self.telemetry.drain_summary()

    def _bump(self, name: str, value: int = 1) -> None:
        with self._counters_lock:
            self.counters[name] = self.counters.get(name, 0) + value
