"""The long-running selection daemon.

:class:`SelectionService` accepts many concurrent ``select`` requests,
micro-batches the ones that share a chain snapshot
(:mod:`repro.service.batching`), and serves every batch from that
snapshot's warm :class:`~repro.core.perf.cache.SolverCache` /
:class:`~repro.core.modules.ModuleUniverse`
(:mod:`repro.service.state`) instead of re-deriving them per call.

Determinism contract — the reason the service can exist at all:

* requests inside a batch execute **sequentially, in admission
  order**, each against the batch's single snapshot;
* the shared cache holds only derived data (component closures, base
  world enumerations), so a warm hit returns exactly what a cold
  rebuild would — ``tests/test_service_equivalence.py`` pins
  selections byte-identical to direct :func:`~repro.core.bfs.bfs_select`
  calls at equal seeds;
* selections are pure functions of (snapshot, solve parameters), so
  identical requests within one epoch are deduplicated through the
  snapshot's result memo — the hot-target pattern that makes a batched
  daemon worth running (``benchmarks/test_bench_service.py`` measures
  it); chaos requests bypass the memo so injected faults always hit
  the real solve path;
* resilience is scoped per request: each request runs its own
  degradation ladder, and a request-supplied fault plan is
  instantiated fresh around that request only — a budget trip, an
  infeasibility or an injected fault produces a typed error *response*
  for that request and leaves its batch-mates untouched.

Example::

    >>> from repro.core.ring import TokenUniverse
    >>> from repro.service import SelectRequest, SelectionService
    >>> universe = TokenUniverse({"t1": "h1", "t2": "h2", "t3": "h1",
    ...                           "t4": "h3"})
    >>> with SelectionService(universe) as service:
    ...     response = service.submit_wait(
    ...         SelectRequest(request_id="r1", target="t3", c=2.0, ell=2))
    >>> sorted(response.tokens)
    ['t2', 't3']
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..core.bfs import SearchBudgetExceeded, bfs_select
from ..core.perf.parallel import WorkerLost
from ..core.problem import InfeasibleError
from ..core.ring import Ring, TokenUniverse
from ..obs import events, metrics, trace
from ..obs.clock import Clock
from ..obs.telemetry import FanoutRecorder
from ..resilience import faults
from ..resilience.ladder import ConstraintViolation, ladder_select
from .batching import EPOCH_ANY, AdmissionQueue, Batch
from .journal import Journal, metrics_lines
from .protocol import (
    ERROR_BUDGET_EXCEEDED,
    ERROR_CONSTRAINT_VIOLATION,
    ERROR_FAULT_INJECTED,
    ERROR_INFEASIBLE,
    ERROR_INTERNAL,
    REJECT_QUEUE_FULL,
    REJECT_STALE_EPOCH,
    SelectRequest,
    SelectResponse,
)
from .partition import TokenPartition
from .state import ChainSnapshot, ServiceState
from .telemetry import ServiceTelemetry

__all__ = [
    "ServiceConfig",
    "PendingResult",
    "SelectionService",
    "ShardOutOfSync",
]


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Tunables of one :class:`SelectionService`.

    Attributes:
        max_queue: admission bound — requests beyond it are rejected
            with ``queue_full`` instead of buffered.
        max_batch: largest micro-batch drained at once.
        linger_s: how long a drain lingers for batch-mates once a
            request is waiting (0 = batch whatever is already queued).
        default_budget: per-request exact-search budget when the
            request does not name one (``None`` = unbounded).
        workers: process fan-out for each request's candidate scan
            (forwarded to :func:`~repro.core.bfs.bfs_select`).
        fault_plan: a fault-plan document applied to *every* request
            (a fresh :class:`~repro.resilience.faults.FaultPlan`
            instance per request); request-level plans override it.
        telemetry: run the request-lifecycle instrument
            (:class:`~repro.service.telemetry.ServiceTelemetry`) —
            on by default; responses are byte-identical either way.
        clock: seconds source for the telemetry lifecycle marks
            (``None`` = ``time.monotonic``); tests inject a
            :class:`~repro.obs.clock.ManualClock` for exact quantiles.
        partition: partition the universe into this many TokenMagic
            batches (or pass a prebuilt
            :class:`~repro.service.partition.TokenPartition`): requests
            solve against their target's batch-local (universe, rings)
            slice and commits must be batch-local.  ``None`` keeps the
            unpartitioned single-universe behaviour, byte-identical to
            before the partition existed; ``partition=1`` is the same
            thing expressed as a one-batch partition.
        journal: a :class:`~repro.service.journal.Journal` made every
            commit durable through — the write-ahead frame lands (and,
            per the journal's fsync policy, hits disk) *before* the
            in-memory state mutates, so a crash at any point loses no
            acknowledged commit.  ``None`` (the default) keeps the
            purely in-memory behaviour.
        epoch_mode: what a commit does to the warm caches —
            ``"replace"`` (the default) rebuilds the snapshot cold;
            ``"delta"`` advances it via
            :meth:`~repro.service.state.ChainSnapshot.advance`, keeping
            warm state for every component/batch the new ring does not
            touch.  Responses are byte-identical in either mode; only
            latency and the ``delta.*`` counters differ.
    """

    max_queue: int = 256
    max_batch: int = 32
    linger_s: float = 0.0
    default_budget: float | None = None
    workers: int = 0
    fault_plan: Mapping | None = None
    telemetry: bool = True
    clock: Clock | None = None
    partition: int | TokenPartition | None = None
    journal: Journal | None = None
    epoch_mode: str = "replace"


@dataclass(slots=True)
class PendingResult:
    """A slot the worker fills; ``wait`` blocks the submitting thread."""

    request: SelectRequest
    admitted_at: float | None = None
    _done: threading.Event = field(default_factory=threading.Event)
    _response: SelectResponse | None = None

    def resolve(self, response: SelectResponse) -> None:
        self._response = response
        self._done.set()

    def wait(self, timeout: float | None = None) -> SelectResponse:
        """The response, blocking until the worker produced it.

        Raises:
            TimeoutError: nothing arrived within ``timeout`` seconds.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id!r} not served in time"
            )
        assert self._response is not None
        return self._response

    @property
    def done(self) -> bool:
        return self._done.is_set()


class SelectionService:
    """Batched, cache-warm mixin selection over a growing chain.

    Args:
        universe: the mixin universe T of the initial snapshot.
        rings: the initial ring history.
        config: see :class:`ServiceConfig`.

    Use as a context manager (starts/stops the worker thread), or call
    :meth:`start` / :meth:`stop` explicitly.  :meth:`submit` never
    blocks; :meth:`submit_wait` is the convenience wrapper.
    """

    def __init__(
        self,
        universe: TokenUniverse,
        rings: Sequence[Ring] = (),
        config: ServiceConfig | None = None,
        *,
        epoch: int = 0,
        recovered: Mapping | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        partition = self.config.partition
        if isinstance(partition, int):
            partition = TokenPartition(universe, batches=partition)
        self.partition = partition
        self.journal = self.config.journal
        #: The typed `recovered` block when this service was rebuilt
        #: from a journal replay (surfaced via stats/health/metrics).
        self.recovered: dict | None = dict(recovered) if recovered else None
        # Serializes commits so WAL frame order always matches the
        # order state mutations apply (commits arrive concurrently
        # from independent socket connections).
        self._commit_lock = threading.Lock()
        self.state = ServiceState(
            universe,
            rings,
            partition=partition,
            epoch=epoch,
            epoch_mode=self.config.epoch_mode,
        )
        self.queue: AdmissionQueue[PendingResult] = AdmissionQueue(
            max_depth=self.config.max_queue,
            max_batch=self.config.max_batch,
            linger_s=self.config.linger_s,
        )
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._counters_lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.telemetry: ServiceTelemetry | None = (
            ServiceTelemetry(clock=self.config.clock)
            if self.config.telemetry
            else None
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SelectionService":
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._stopping.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-selection-service", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` (default) serve what is queued."""
        self.queue.close()
        if not drain:
            self._stopping.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "SelectionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- chain growth --------------------------------------------------------

    def commit_ring(
        self, tokens: Sequence[str], c: float, ell: int, rid: str | None = None
    ) -> ChainSnapshot:
        """Append an accepted ring; advances the epoch (cache invalidation).

        Idempotent by ring id: recommitting a rid already on the chain
        returns the current head unchanged — the dedup a retrying
        client (resending across a daemon restart) relies on for
        exactly-once semantics.  With a journal configured the commit
        frame is appended (and fsynced, per policy) *before* the state
        mutates — the write-ahead discipline recovery depends on.
        """
        with self._commit_lock:
            head = self.state.current()
            if rid is not None:
                for existing in head.rings:
                    if existing.rid == rid:
                        self._bump("commits.replayed")
                        return head
            seq = 1 + max((ring.seq for ring in head.rings), default=-1)
            ring = Ring(
                rid=rid or f"svc:{seq}",
                tokens=frozenset(tokens),
                c=c,
                ell=ell,
                seq=seq,
            )
            if self.partition is not None:
                # Validate batch-locality *before* journaling, so a
                # doomed commit never lands a WAL frame.
                self.partition.batch_of_ring(ring.tokens)
            if self.journal is not None:
                self.journal.append_commit(head.epoch + 1, ring)
            snapshot = self.state.commit(ring)
            if self.journal is not None:
                self.journal.maybe_snapshot(
                    snapshot.epoch,
                    snapshot.universe,
                    snapshot.rings,
                    self.partition.batches if self.partition is not None else None,
                )
        if self.telemetry is not None:
            self.telemetry.epoch_advanced(snapshot.epoch, len(snapshot.rings))
        return snapshot

    @property
    def epoch(self) -> int:
        return self.state.epoch

    # -- submission ----------------------------------------------------------

    def submit(self, request: SelectRequest) -> PendingResult:
        """Admit ``request`` (non-blocking).

        A full queue resolves the returned slot *immediately* with a
        ``queue_full`` rejection — typed backpressure, not an
        exception, so socket front-ends answer it like any response.
        """
        pending = PendingResult(request=request)
        epoch_key = EPOCH_ANY if request.epoch is None else request.epoch
        if self.queue.offer(pending, epoch_key):
            if self.telemetry is not None:
                pending.admitted_at = self.telemetry.admitted(self.queue.depth())
            if events.enabled():
                events.emit(events.RequestAdmitted(queue_depth=self.queue.depth()))
        else:
            self._bump(f"rejected.{REJECT_QUEUE_FULL}")
            if self.telemetry is not None:
                self.telemetry.admission_rejected(REJECT_QUEUE_FULL)
            if events.enabled():
                events.emit(events.RequestRejected(code=REJECT_QUEUE_FULL))
            pending.resolve(
                SelectResponse(
                    request_id=request.request_id,
                    status="rejected",
                    epoch=self.state.epoch,
                    code=REJECT_QUEUE_FULL,
                    detail=(
                        f"admission queue at capacity "
                        f"({self.queue.max_depth}); retry later"
                    ),
                )
            )
        return pending

    def submit_wait(
        self, request: SelectRequest, timeout: float | None = None
    ) -> SelectResponse:
        """Submit and block for the response (for tests and examples)."""
        return self.submit(request).wait(timeout)

    def queue_depth(self) -> int:
        """Currently admitted-but-unserved requests."""
        return self.queue.depth()

    def execute_requests(
        self, requests: Sequence[SelectRequest], batch_id: int = 0
    ) -> list[SelectResponse]:
        """Serve ``requests`` synchronously as one micro-batch.

        The shard workers of :mod:`repro.service.router` run the
        service without its worker thread and push dispatched batches
        through this path: same snapshot resolution, same per-request
        fault scoping, same memo/cache behaviour as the queued path —
        a batch assembled by the router executes exactly like one the
        admission queue drained.
        """
        items = [PendingResult(request=request) for request in requests]
        batch = Batch(batch_id=batch_id, epoch_key=EPOCH_ANY, items=list(items))
        self._execute_batch(batch)
        return [item.wait(timeout=0) for item in items]

    def stats(self) -> dict:
        """A JSON-ready snapshot (the ``stats`` op's payload).

        A backward-compatible superset of the PR-5 counter dump: the
        flat keys are unchanged, and with telemetry enabled the
        payload also carries ``telemetry`` (latency histograms with
        exact window quantiles, rolling rates, gauges, captured solver
        counters) and ``resilience`` (ladder rungs taken,
        supervised-scan retries, injected faults — the counters that
        previously only reached bench artifacts).
        """
        with self._counters_lock:
            counters = dict(sorted(self.counters.items()))
        queue_depth = self.queue.depth()
        payload = {
            "epoch": self.state.epoch,
            "rings": len(self.state.current().rings),
            "queue_depth": queue_depth,
            "offered": self.queue.offered,
            "refused": self.queue.refused,
            "epochs_advanced": self.state.epochs_advanced,
            "caches_invalidated": self.state.caches_invalidated,
            "epoch_mode": self.state.epoch_mode,
            "delta": dict(self.state.delta_counters),
            "counters": counters,
        }
        if self.journal is not None:
            payload["journal"] = self.journal.stats()
        if self.recovered is not None:
            payload["recovered"] = dict(self.recovered)
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.snapshot(queue_depth)
            payload["resilience"] = self.telemetry.resilience_counters()
        return payload

    def health(self) -> dict:
        """The ``health`` op's payload: ready/degraded/draining.

        Draining reflects a closed admission queue (shutdown started,
        queued work still being served).  Degraded semantics come from
        the telemetry window — see
        :meth:`repro.service.telemetry.ServiceTelemetry.health`;
        without telemetry only ready/draining can be distinguished.
        """
        draining = self.queue.closed
        queue_depth = self.queue.depth()
        if self.telemetry is None:
            status = "draining" if draining else "ready"
            payload = {
                "health": status,
                "reasons": [],
                "queue_depth": queue_depth,
                "max_queue": self.queue.max_depth,
            }
        else:
            payload = self.telemetry.health(
                queue_depth=queue_depth,
                max_queue=self.queue.max_depth,
                draining=draining,
            )
        payload["epoch_mode"] = self.state.epoch_mode
        payload["delta_commits"] = self.state.delta_counters["commits"]
        if self.recovered is not None:
            payload["recovered"] = dict(self.recovered)
        return payload

    def metrics_text(self) -> str:
        """The ``metrics`` op's body: Prometheus text exposition."""
        with self._counters_lock:
            counters = dict(sorted(self.counters.items()))
        counters.update(
            (f"delta.{name}", value)
            for name, value in sorted(self.state.delta_counters.items())
        )
        if self.telemetry is None:
            from ..obs.telemetry import render_prometheus

            body = render_prometheus(
                {}, prefix="repro_service", extra_counters=counters
            )
        else:
            body = self.telemetry.prometheus(
                queue_depth=self.queue.depth(), service_counters=counters
            )
        return body + metrics_lines(
            None if self.journal is None else self.journal.stats(),
            self.recovered,
        )

    def drain_summary(self) -> str | None:
        """A one-line telemetry summary for shutdown reporting."""
        if self.telemetry is None:
            return None
        return self.telemetry.drain_summary()

    # -- the worker loop -----------------------------------------------------

    def _run(self) -> None:
        while not self._stopping.is_set():
            batch = self.queue.drain_batch(timeout=0.05)
            if batch is None:
                if self.queue.closed and self.queue.depth() == 0:
                    return
                continue
            self._execute_batch(batch)

    def _execute_batch(self, batch: Batch[PendingResult]) -> None:
        snapshot = self.state.current()
        warm = snapshot.cache_built
        telemetry = self.telemetry
        # Tee solver/resilience events into the service's own recorder
        # for the duration of the batch, *alongside* whatever recorder
        # the CLI installed — this is how ladder rungs, retries and
        # injected faults reach the `stats` op.  Only the single worker
        # thread swaps the slot, and it restores the previous recorder
        # before the batch's last response resolves a submitter.
        previous = metrics.active()
        if telemetry is not None:
            metrics.set_recorder(FanoutRecorder(previous, telemetry.solver))
        try:
            with trace.span(
                "service.batch",
                batch_id=batch.batch_id,
                size=len(batch),
                epoch=snapshot.epoch,
            ):
                if telemetry is not None:
                    telemetry.batch_started(len(batch), snapshot.epoch)
                if events.enabled():
                    events.emit(
                        events.BatchExecuted(size=len(batch), epoch=snapshot.epoch)
                    )
                rec = metrics.active()
                if rec is not None:
                    rec.observe("service.batch_size", len(batch))
                    rec.gauge("service.queue_depth", self.queue.depth())
                self._bump("batches")
                for pending in batch.items:
                    if telemetry is not None:
                        started_at = telemetry.request_started(pending.admitted_at)
                    response = self._serve_one(
                        pending.request, snapshot, batch, warm
                    )
                    if telemetry is not None:
                        # Every lifecycle mark lands before the slot
                        # resolves, so a serialized submitter always
                        # observes a completed request span.
                        telemetry.request_finished(
                            response, pending.admitted_at, started_at
                        )
                    pending.resolve(response)
                    warm = True  # the first request of a cold epoch warms it
        finally:
            if telemetry is not None:
                metrics.set_recorder(previous)

    def _serve_one(
        self,
        request: SelectRequest,
        snapshot: ChainSnapshot,
        batch: Batch[PendingResult],
        warm: bool,
    ) -> SelectResponse:
        if request.epoch is not None and request.epoch != snapshot.epoch:
            self._bump(f"rejected.{REJECT_STALE_EPOCH}")
            if events.enabled():
                events.emit(events.RequestRejected(code=REJECT_STALE_EPOCH))
            return SelectResponse(
                request_id=request.request_id,
                status="rejected",
                epoch=snapshot.epoch,
                batch_id=batch.batch_id,
                batch_size=len(batch),
                code=REJECT_STALE_EPOCH,
                detail=(
                    f"request pinned to epoch {request.epoch} but the chain "
                    f"is at epoch {snapshot.epoch}; re-resolve and resubmit"
                ),
            )
        started = time.perf_counter()
        plan_doc = (
            request.fault_plan
            if request.fault_plan is not None
            else self.config.fault_plan
        )
        with trace.span(
            "service.request",
            request_id=request.request_id,
            target=request.target,
            mode=request.mode,
            epoch=snapshot.epoch,
            batch_id=batch.batch_id,
        ):
            try:
                # A fresh per-request plan: hit counters start at zero for
                # every request, so chaos stays scoped to its request.
                # Chaos requests also bypass the result memo — an
                # injected fault must hit the real solve path, and a
                # memoized answer must never mask one.
                if plan_doc is not None:
                    with faults.injecting(faults.FaultPlan.from_dict(plan_doc)):
                        response = self._solve(
                            request, snapshot, batch, warm, memo_ok=False
                        )
                else:
                    response = self._solve(
                        request, snapshot, batch, warm, memo_ok=True
                    )
            except SearchBudgetExceeded as exc:
                response = self._error(
                    request, snapshot, batch, ERROR_BUDGET_EXCEEDED, exc
                )
            except (InfeasibleError, WorkerLost) as exc:
                code = (
                    ERROR_INFEASIBLE
                    if isinstance(exc, InfeasibleError)
                    else ERROR_INTERNAL
                )
                response = self._error(request, snapshot, batch, code, exc)
            except ConstraintViolation as exc:
                response = self._error(
                    request, snapshot, batch, ERROR_CONSTRAINT_VIOLATION, exc
                )
            except faults.InjectedFault as exc:
                response = self._error(
                    request, snapshot, batch, ERROR_FAULT_INJECTED, exc
                )
            except Exception as exc:  # noqa: BLE001 - batch-mate isolation
                response = self._error(
                    request, snapshot, batch, ERROR_INTERNAL, exc
                )
        elapsed = time.perf_counter() - started
        rec = metrics.active()
        if rec is not None:
            rec.observe("service.request_s", elapsed)
        self._bump("requests")
        self._bump(f"status.{response.status}")
        if response.degraded:
            self._bump("degraded")
        return response

    def _memo_key(self, request: SelectRequest, budget: float | None):
        """The solve-relevant request fields, per mode.

        The exact rung is deterministic regardless of seed, so exact
        requests memoize across seeds; ladder requests include the seed
        because the degraded rungs draw from it.
        """
        key = (
            request.mode,
            request.target,
            request.c,
            request.ell,
            budget,
            request.max_mixins,
        )
        if request.mode == "ladder":
            key += (request.seed,)
        return key

    def _solve(
        self,
        request: SelectRequest,
        snapshot: ChainSnapshot,
        batch: Batch[PendingResult],
        warm: bool,
        memo_ok: bool = True,
    ) -> SelectResponse:
        # Partitioned snapshots solve against the target's batch-local
        # (universe, rings) slice; unpartitioned, the view *is* the
        # snapshot and nothing changes.
        view = snapshot.solve_view(request.target)
        instance = view.instance(request.target, request.c, request.ell)
        budget = (
            request.time_budget
            if request.time_budget is not None
            else self.config.default_budget
        )
        memo = view.result_memo() if memo_ok else None
        memo_key = self._memo_key(request, budget) if memo_ok else None
        if memo is not None:
            stored = memo.get(memo_key)
            if stored is not None:
                # Identical request against the same batch state: replay
                # the first solve's answer (pure function of both), with
                # this request's own identity and batch coordinates.
                # The epoch is re-stamped because a retained batch memo
                # can outlive the epoch it was stored under (shard
                # workers carry untouched batches across commits).
                self._bump("memo.hits")
                if events.enabled():
                    events.emit(events.MemoServed(mode=request.mode))
                return replace(
                    stored,
                    request_id=request.request_id,
                    epoch=snapshot.epoch,
                    batch_id=batch.batch_id,
                    batch_size=len(batch),
                    warm_cache=warm,
                    attrs={**stored.attrs, "memo": True},
                )
        response = self._solve_fresh(
            request, instance, snapshot, view, batch, warm, budget
        )
        if memo is not None and response.ok:
            memo[memo_key] = response
            self._bump("memo.stores")
        return response

    def _solve_fresh(
        self,
        request: SelectRequest,
        instance,
        snapshot: ChainSnapshot,
        view: ChainSnapshot,
        batch: Batch[PendingResult],
        warm: bool,
        budget: float | None,
    ) -> SelectResponse:
        cache = view.solver_cache()
        if request.mode == "exact":
            solved = bfs_select(
                instance,
                time_budget=budget,
                max_mixins=request.max_mixins,
                workers=self.config.workers,
                cache=cache,
            )
            return SelectResponse(
                request_id=request.request_id,
                status="ok",
                epoch=snapshot.epoch,
                tokens=tuple(solved.ring.tokens),
                mixins=tuple(solved.mixins),
                rung="exact",
                claimed_c=request.c,
                claimed_ell=request.ell,
                degraded=False,
                candidates_checked=solved.candidates_checked,
                elapsed=solved.elapsed,
                batch_id=batch.batch_id,
                batch_size=len(batch),
                warm_cache=warm,
            )
        outcome = ladder_select(
            instance,
            modules=view.module_universe(),
            time_budget=budget,
            max_mixins=request.max_mixins,
            workers=self.config.workers,
            rng=random.Random(request.seed),
            cache=cache,
        )
        tokens = outcome.result.tokens
        return SelectResponse(
            request_id=request.request_id,
            status="ok",
            epoch=snapshot.epoch,
            tokens=tuple(tokens),
            mixins=tuple(set(tokens) - {request.target}),
            rung=outcome.rung,
            claimed_c=outcome.claimed_c,
            claimed_ell=outcome.claimed_ell,
            degraded=outcome.degraded,
            candidates_checked=None,
            elapsed=outcome.result.elapsed,
            batch_id=batch.batch_id,
            batch_size=len(batch),
            warm_cache=warm,
        )

    def _error(
        self,
        request: SelectRequest,
        snapshot: ChainSnapshot,
        batch: Batch[PendingResult],
        code: str,
        exc: Exception,
    ) -> SelectResponse:
        self._bump(f"error.{code}")
        return SelectResponse(
            request_id=request.request_id,
            status="error",
            epoch=snapshot.epoch,
            batch_id=batch.batch_id,
            batch_size=len(batch),
            code=code,
            detail=str(exc),
        )

    def _bump(self, name: str, value: int = 1) -> None:
        with self._counters_lock:
            self.counters[name] = self.counters.get(name, 0) + value


# -- shard-worker entry point (repro.service.router) -------------------------
#
# Each shard of a ShardRouter is one forked pool process running a
# SelectionService *without its worker thread*: the router dispatches
# whole micro-batches (plus commits and stats/metrics/health probes)
# through `_shard_call`, and the worker serves them synchronously via
# `SelectionService.execute_requests`.  The worker's ServiceState is
# partitioned, and its commits retain the untouched batches' warm
# state — the per-shard cache slice the router exists to keep warm.
#
# Pool workers that die are respawned by the pool with the *original*
# initargs, so a respawned worker is silently back at the initial
# chain.  Every dispatch therefore carries the router's epoch; a
# mismatch raises ShardOutOfSync, which the router's supervised retry
# answers by attaching a full sync (ring log + epoch) to the resend.


class ShardOutOfSync(RuntimeError):
    """A shard worker's chain state lags the router's (needs a sync).

    Raised inside the worker and re-raised by the pool in the router
    process; the supervised dispatch path treats it like any other
    worker failure — bounded retry — but attaches the sync payload the
    respawned worker needs to rebuild state before re-serving.
    """

    def __init__(self, shard: int, have: int, want: int) -> None:
        super().__init__(
            f"shard {shard} is at epoch {have} but the router is at "
            f"epoch {want}; sync required"
        )
        self.shard = shard
        self.have = have
        self.want = want


#: Per-process shard-worker state, installed by `_init_shard_worker`
#: (plain module globals — each forked worker has its own copy).
_SHARD: dict = {}


def _init_shard_worker(
    shard_index: int,
    owned_batches: tuple[int, ...],
    universe: TokenUniverse,
    rings: tuple[Ring, ...],
    batches: int,
    config_kwargs: dict,
    fault_doc: Mapping | None,
    epoch0: int = 0,
) -> None:
    # Forked workers inherit the router's recorder/tracer globals;
    # uninstall both — shard observability travels back as explicit
    # stats/metrics payloads, never through an orphaned in-process sink.
    metrics.set_recorder(None)
    trace.set_tracer(None)
    service = SelectionService(
        universe,
        rings,
        ServiceConfig(partition=batches, **config_kwargs),
        epoch=epoch0,
    )
    _SHARD.clear()
    _SHARD.update(
        index=shard_index,
        owned=tuple(owned_batches),
        service=service,
        plan=None if fault_doc is None else faults.FaultPlan.from_dict(fault_doc),
    )


def _shard_sync(service: SelectionService, sync: Mapping) -> SelectionService:
    """Rebuild the worker's chain state from a router-supplied sync."""
    service.state = ServiceState(
        service.state.current().universe,
        tuple(sync["rings"]),
        partition=service.partition,
        epoch=int(sync["epoch"]),
        epoch_mode=service.state.epoch_mode,
    )
    return service


def _shard_call(payload: Mapping):
    """The single pool entry point: serve one router dispatch."""
    shard = _SHARD
    service: SelectionService = shard["service"]
    op = payload["op"]
    if op == "ping":
        return {"shard": shard["index"], "epoch": service.state.epoch}
    want = int(payload["epoch"])
    if want != service.state.epoch:
        sync = payload.get("sync")
        if sync is None:
            raise ShardOutOfSync(shard["index"], service.state.epoch, want)
        _shard_sync(service, sync)
        if service.state.epoch != want:
            raise ShardOutOfSync(shard["index"], service.state.epoch, want)
    if op == "batch":
        plan = shard["plan"]
        if plan is not None:
            plan.check(
                "shard.batch",
                index=int(payload["seq"]),
                attempt=int(payload["attempt"]),
            )
        return service.execute_requests(
            payload["requests"], batch_id=int(payload["seq"])
        )
    if op == "commit":
        ring: Ring = payload["ring"]
        head = service.state.current()
        if any(existing.rid == ring.rid for existing in head.rings):
            # A retried commit the worker already applied: idempotent.
            return {"epoch": head.epoch, "rings": len(head.rings)}
        snapshot = service.state.commit(ring, retain_untouched=True)
        if service.telemetry is not None:
            service.telemetry.epoch_advanced(snapshot.epoch, len(snapshot.rings))
        return {"epoch": snapshot.epoch, "rings": len(snapshot.rings)}
    if op == "stats":
        stats = service.stats()
        stats["shard"] = shard["index"]
        stats["batches"] = list(shard["owned"])
        return stats
    if op == "metrics":
        labels = {"shard": str(shard["index"])}
        with service._counters_lock:
            counters = dict(sorted(service.counters.items()))
        counters.update(
            (f"delta.{name}", value)
            for name, value in sorted(service.state.delta_counters.items())
        )
        if service.telemetry is None:
            from ..obs.telemetry import render_prometheus

            return render_prometheus(
                {},
                prefix="repro_service",
                extra_counters=counters,
                labels=labels,
                type_lines=bool(payload.get("type_lines", True)),
            )
        return service.telemetry.prometheus(
            queue_depth=None,
            service_counters=counters,
            labels=labels,
            type_lines=bool(payload.get("type_lines", True)),
        )
    if op == "health":
        health = service.health()
        health["shard"] = shard["index"]
        return health
    raise ValueError(f"unknown shard op {op!r}")
