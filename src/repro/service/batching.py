"""Admission control and micro-batching for the selection daemon.

Two policies live here, both deliberately boring and fully observable:

* **Admission** — a bounded queue.  :meth:`AdmissionQueue.offer` either
  admits the item or returns ``False`` immediately (typed backpressure:
  the caller answers ``queue_full`` and the client retries later).  The
  service never blocks a producer and never buffers unboundedly.

* **Micro-batching** — the worker drains the queue into batches of
  requests that can share one chain snapshot.  The first waiting
  request opens the batch; the batcher then lingers up to
  ``linger_s`` for followers and greedily takes compatible requests up
  to ``max_batch``.  Compatible means *pinned to the same epoch* (or
  not pinned at all): requests pinned to different epochs never share
  a batch, because a batch is executed against exactly one snapshot.

Batching never reorders incompatible work arbitrarily: requests leave
the queue FIFO, and an incompatible head-of-line request simply opens
the next batch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Generic, TypeVar

__all__ = ["AdmissionQueue", "Batch", "EPOCH_ANY"]

T = TypeVar("T")

#: Group key for requests not pinned to any epoch.
EPOCH_ANY = -1


@dataclass(slots=True)
class Batch(Generic[T]):
    """One drained micro-batch.

    Attributes:
        batch_id: monotonically increasing drain counter.
        epoch_key: the epoch its members are pinned to, or
            :data:`EPOCH_ANY` when every member floats.
        items: the admitted requests, in admission order.
    """

    batch_id: int
    epoch_key: int
    items: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)


class AdmissionQueue(Generic[T]):
    """Bounded FIFO with epoch-aware batch draining.

    Args:
        max_depth: admission bound; :meth:`offer` refuses beyond it.
        max_batch: largest batch :meth:`drain_batch` will assemble.
        linger_s: how long a drain waits for followers once the batch
            is open (0 drains whatever is already queued).
    """

    def __init__(
        self, max_depth: int = 256, max_batch: int = 32, linger_s: float = 0.0
    ) -> None:
        if max_depth < 1 or max_batch < 1:
            raise ValueError("max_depth and max_batch must be >= 1")
        self.max_depth = max_depth
        self.max_batch = max_batch
        self.linger_s = linger_s
        self._items: list[tuple[T, int]] = []
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._closed = False
        self._next_batch_id = 0
        self.offered = 0
        self.refused = 0

    # -- producer side -------------------------------------------------------

    def offer(self, item: T, epoch_key: int = EPOCH_ANY) -> bool:
        """Admit ``item`` or refuse immediately (never blocks).

        Returns ``False`` when the queue is at ``max_depth`` or closed.
        """
        with self._nonempty:
            self.offered += 1
            if self._closed or len(self._items) >= self.max_depth:
                self.refused += 1
                return False
            self._items.append((item, epoch_key))
            self._nonempty.notify()
            return True

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def close(self) -> None:
        """Refuse new work; drains still return what is queued."""
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- consumer side -------------------------------------------------------

    def drain_batch(self, timeout: float | None = None) -> Batch[T] | None:
        """Assemble the next micro-batch, or ``None`` on timeout/close.

        Blocks up to ``timeout`` for a head-of-line request, then
        lingers ``linger_s`` for followers and greedily takes queued
        requests whose epoch pin is compatible with the batch
        (equal pins, or no pin) up to ``max_batch``.
        """
        with self._nonempty:
            if not self._items and not self._closed:
                self._nonempty.wait(timeout)
            if not self._items:
                return None
            head, head_key = self._items.pop(0)
            batch = Batch(
                batch_id=self._next_batch_id, epoch_key=head_key, items=[head]
            )
            self._next_batch_id += 1
            if self.linger_s > 0 and len(self._items) == 0 and not self._closed:
                self._nonempty.wait(self.linger_s)
            index = 0
            while len(batch.items) < self.max_batch and index < len(self._items):
                _, key = self._items[index]
                if key == batch.epoch_key or key == EPOCH_ANY:
                    item, _ = self._items.pop(index)
                    batch.items.append(item)
                elif batch.epoch_key == EPOCH_ANY:
                    # A floating batch adopts the first pinned follower's
                    # epoch; after that only matching pins may join.
                    item, _ = self._items.pop(index)
                    batch.epoch_key = key
                    batch.items.append(item)
                else:
                    index += 1
            return batch
