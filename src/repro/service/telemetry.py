"""Request-lifecycle telemetry for the selection daemon.

:class:`ServiceTelemetry` spans every request through the daemon's
stages — admission → epoch-pin → micro-batch → solver (cache hit,
memo replay, kernel scan or ladder rung) → respond — and feeds the
deterministic instruments of :mod:`repro.obs.telemetry`:

* latency histograms (``request_s``, ``queue_wait_s``, ``solve_s``)
  with exact p50/p95/p99 over a bounded window;
* rolling-window rate counters for every request outcome (status,
  rejection/error code, ladder rung, memo/warm-cache hit);
* gauges for queue depth, epoch, epoch age and the derived hit rates.

Determinism contract: the instrument reads its injectable clock a
*fixed number of times per lifecycle stage* (one read per mark), and
every mark for a request completes **before** the response is
resolved to the submitter.  Under a
:class:`~repro.obs.clock.ManualClock` a serialized request sequence
therefore produces byte-identical histograms and gauges run after run
— ``tests/test_service_telemetry.py`` asserts the quantiles exactly.

The solver's own event stream (``cache.*``, ``dtrs.*``, ``kernel.*``,
``resilience.*`` counters) is captured by installing a
:class:`~repro.obs.telemetry.FanoutRecorder` around batch execution:
the service's :class:`~repro.obs.metrics.MemoryRecorder` sees every
bump *in addition to* whatever recorder the CLI installed, which is
how ladder rungs taken, supervised-scan retries and injected faults
reach the ``stats`` op instead of only bench artifacts.

Telemetry never touches a response: ``tests/test_service_telemetry.py``
pins service responses byte-identical with telemetry on and off.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping

from ..obs.metrics import MemoryRecorder
from ..obs.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    Telemetry,
    render_prometheus,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "HEALTH_READY",
    "HEALTH_DEGRADED",
    "HEALTH_DRAINING",
    "BATCH_SIZE_BUCKETS",
    "ServiceTelemetry",
    "format_stats",
    "format_top",
]

HEALTH_READY = "ready"
HEALTH_DEGRADED = "degraded"
HEALTH_DRAINING = "draining"

#: Micro-batch size buckets (powers of two up to the default max_batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: ``resilience.*`` counters surfaced in ``stats`` (artifact-key → counter).
_RESILIENCE_COUNTERS = {
    "checkpoints": "resilience.checkpoints",
    "degradations": "resilience.degradations",
    "fail_closed": "resilience.fail_closed",
    "faults_injected": "resilience.faults",
    "resumes": "resilience.resumes",
    "retries": "resilience.retries",
    "worker_lost": "resilience.worker_lost",
}


class ServiceTelemetry:
    """The daemon's lifecycle instrument (one per service).

    Args:
        clock: zero-argument seconds source; defaults to
            ``time.monotonic``.  Tests inject a
            :class:`~repro.obs.clock.ManualClock`.
        rate_window_s: rolling window for rate counters and health.
        quantile_window: raw samples retained per histogram.
    """

    def __init__(
        self,
        clock=None,
        rate_window_s: float = 60.0,
        quantile_window: int = 4096,
    ) -> None:
        self._clock = time.monotonic if clock is None else clock
        self._lock = threading.Lock()
        self.tele = Telemetry(
            rate_window_s=rate_window_s, quantile_window=quantile_window
        )
        #: Solver/resilience counters captured via the batch fanout.
        self.solver = MemoryRecorder()
        now = self._clock()
        self.started_at = now
        self._epoch_committed_at = now

    # -- lifecycle marks (one clock read each) -------------------------------

    def admitted(self, queue_depth: int) -> float:
        """Mark admission; returns the timestamp to stamp on the slot."""
        with self._lock:
            now = self._clock()
            self.tele.count("admitted", now)
            self.tele.gauge("queue_depth", queue_depth)
            return now

    def admission_rejected(self, code: str) -> None:
        """An admission-control refusal (the request never queued)."""
        with self._lock:
            now = self._clock()
            self.tele.count("rejected", now)
            self.tele.count(f"rejected.{code}", now)

    def batch_started(self, size: int, epoch: int) -> float:
        with self._lock:
            now = self._clock()
            self.tele.count("batches", now)
            self.tele.histogram("batch_size", BATCH_SIZE_BUCKETS).observe(size)
            self.tele.gauge("epoch", epoch)
            return now

    def request_started(self, admitted_at: float | None) -> float:
        """Mark the epoch-pin/solve stage opening; records queue wait."""
        with self._lock:
            now = self._clock()
            if admitted_at is not None:
                self.tele.observe("queue_wait_s", now - admitted_at)
            return now

    def request_finished(
        self, response, admitted_at: float | None, started_at: float
    ) -> None:
        """Mark the respond stage.  Runs *before* the slot resolves so a
        serialized submitter observes a completed lifecycle."""
        with self._lock:
            now = self._clock()
            self.tele.observe("solve_s", now - started_at)
            if admitted_at is not None:
                self.tele.observe("request_s", now - admitted_at)
            self.tele.count("requests", now)
            self.tele.count(f"status.{response.status}", now)
            if response.status == "rejected" and response.code:
                self.tele.count("rejected", now)
                self.tele.count(f"rejected.{response.code}", now)
            elif response.status == "error" and response.code:
                self.tele.count(f"error.{response.code}", now)
            if response.status == "ok":
                if response.rung:
                    self.tele.count(f"rung.{response.rung}", now)
                if response.degraded:
                    self.tele.count("degraded", now)
                memo = bool(response.attrs.get("memo"))
                self.tele.count("memo.hits" if memo else "memo.misses", now)
                warm = bool(response.warm_cache)
                self.tele.count("warm.hits" if warm else "warm.misses", now)

    def epoch_advanced(self, epoch: int, rings: int) -> None:
        with self._lock:
            now = self._clock()
            self._epoch_committed_at = now
            self.tele.count("epoch_advances", now)
            self.tele.gauge("epoch", epoch)
            self.tele.gauge("rings", rings)

    def mark(self, name: str) -> None:
        """Bump a free-form lifecycle counter (one clock read).

        The shard router uses this for events outside the per-request
        stages — ``shard.retries``, ``shard.worker_lost`` — so they
        show up in rates, health windows and the exposition without a
        bespoke instrument.
        """
        with self._lock:
            self.tele.count(name, self._clock())

    def window_count(self, name: str) -> int:
        """How often ``name`` was marked inside the rolling window."""
        with self._lock:
            return self.tele.counter_in_window(name, self._clock())

    # -- read side -----------------------------------------------------------

    @staticmethod
    def _rate(hits: int, misses: int) -> float | None:
        total = hits + misses
        return None if total == 0 else hits / total

    def _refresh_gauges(self, now: float, queue_depth: int | None) -> None:
        self.tele.gauge("uptime_s", now - self.started_at)
        self.tele.gauge("epoch_age_s", now - self._epoch_committed_at)
        if queue_depth is not None:
            self.tele.gauge("queue_depth", queue_depth)
        memo_rate = self._rate(
            self.tele.counter_total("memo.hits"),
            self.tele.counter_total("memo.misses"),
        )
        if memo_rate is not None:
            self.tele.gauge("memo_hit_rate", memo_rate)
        warm_rate = self._rate(
            self.tele.counter_total("warm.hits"),
            self.tele.counter_total("warm.misses"),
        )
        if warm_rate is not None:
            self.tele.gauge("warm_cache_rate", warm_rate)

    def rung_distribution(self) -> dict[str, int]:
        """Total requests answered per ladder rung (``exact`` included)."""
        with self._lock:
            prefix = "rung."
            return {
                name[len(prefix):]: total
                for name, total in self.tele.totals(prefix).items()
            }

    def resilience_counters(self) -> dict:
        """The resilience story, artifact-shaped plus rung distribution."""
        counters = self.solver.counters
        surfaced = {
            key: counters.get(name, 0)
            for key, name in sorted(_RESILIENCE_COUNTERS.items())
        }
        surfaced["rung_served"] = self.rung_distribution()
        return surfaced

    def snapshot(self, queue_depth: int | None = None) -> dict:
        """The ``stats`` op's telemetry section (one clock read)."""
        with self._lock:
            now = self._clock()
            self._refresh_gauges(now, queue_depth)
            snap = self.tele.snapshot(now)
        snap["solver"] = {
            "counters": {
                name: value
                for name, value in sorted(self.solver.counters.items())
                if not name.startswith("service.")
            },
        }
        return snap

    def health(self, queue_depth: int, max_queue: int, draining: bool) -> dict:
        """Ready/degraded/draining, with machine-checkable reasons.

        * **draining** — the admission queue is closed: queued work is
          still served, new work is refused.
        * **degraded** — the recent window saw degraded rings, ladder
          fail-closures, lost workers, internal errors or injected
          faults escaping, or the queue is at capacity.  The service
          still answers, but not at its claimed strength.
        * **ready** — everything else.
        """
        with self._lock:
            now = self._clock()
            window = {
                "degraded": self.tele.counter_in_window("degraded", now),
                "errors.internal": self.tele.counter_in_window(
                    "error.internal_error", now
                ),
                "errors.fail_closed": self.tele.counter_in_window(
                    "error.constraint_violation", now
                ),
                "errors.fault_injected": self.tele.counter_in_window(
                    "error.fault_injected", now
                ),
                "rejected.queue_full": self.tele.counter_in_window(
                    "rejected.queue_full", now
                ),
            }
            window_s = self.tele.rate_window_s
        reasons = [
            f"{name}={count} in the last {window_s:g}s"
            for name, count in sorted(window.items())
            if count > 0
        ]
        if queue_depth >= max_queue:
            reasons.append(f"queue at capacity ({queue_depth}/{max_queue})")
        if draining:
            status = HEALTH_DRAINING
        elif reasons:
            status = HEALTH_DEGRADED
        else:
            status = HEALTH_READY
        return {
            "health": status,
            "reasons": reasons,
            "window_s": window_s,
            "queue_depth": queue_depth,
            "max_queue": max_queue,
        }

    def prometheus(
        self,
        queue_depth: int | None = None,
        service_counters: Mapping[str, int] | None = None,
        labels: Mapping[str, str] | None = None,
        type_lines: bool = True,
    ) -> str:
        """The ``metrics`` op's body: Prometheus text exposition.

        ``labels``/``type_lines`` pass through to
        :func:`~repro.obs.telemetry.render_prometheus` — the shard
        router stamps each worker's body with ``shard="N"`` and keeps
        the ``# TYPE`` declarations only on the first body per family.
        """
        snap = self.snapshot(queue_depth)
        solver_counters = snap.pop("solver")["counters"]
        body = render_prometheus(
            snap, prefix="repro_service", labels=labels, type_lines=type_lines
        )
        extra = dict(solver_counters)
        if service_counters:
            extra.update(
                {f"legacy.{name}": value for name, value in service_counters.items()}
            )
        if extra:
            body += render_prometheus(
                {},
                prefix="repro_solver",
                extra_counters=extra,
                labels=labels,
                type_lines=type_lines,
            )
        return body

    def drain_summary(self) -> str:
        """One human line for ``serve`` shutdown (requests, p99, rates)."""
        with self._lock:
            requests = self.tele.counter_total("requests")
            ok = self.tele.counter_total("status.ok")
            errors = self.tele.counter_total("status.error")
            rejected = (
                self.tele.counter_total("rejected")
                + self.tele.counter_total("status.rejected")
            )
            degraded = self.tele.counter_total("degraded")
            p99 = self.tele.quantile("request_s", 0.99)
            memo_rate = self._rate(
                self.tele.counter_total("memo.hits"),
                self.tele.counter_total("memo.misses"),
            )
        parts = [
            f"served {requests} request(s) "
            f"({ok} ok, {errors} error, {rejected} rejected)"
        ]
        parts.append(
            "p99 request n/a" if p99 is None else f"p99 request {p99 * 1e3:.1f}ms"
        )
        parts.append(
            "memo hit rate n/a" if memo_rate is None
            else f"memo hit rate {memo_rate:.1%}"
        )
        if degraded:
            parts.append(f"{degraded} degraded")
        return "telemetry: " + ", ".join(parts)


# -- human rendering (CLI `client --stats` / `repro top`) --------------------


def _ms(value: float | None) -> str:
    return "n/a" if value is None else f"{value * 1e3:.2f}ms"


def format_stats(stats: Mapping) -> str:
    """Pretty-print an enriched ``stats`` payload for terminals.

    Works on the backward-compatible superset: the PR-5 counter keys
    always render; the histogram/gauge/resilience sections appear only
    when the daemon ran with telemetry enabled.
    """
    lines = ["== service stats =="]
    lines.append(
        f"  epoch {stats.get('epoch', '?')} | rings {stats.get('rings', '?')} "
        f"| queue {stats.get('queue_depth', '?')} "
        f"| offered {stats.get('offered', '?')} "
        f"| refused {stats.get('refused', '?')}"
    )
    counters: Mapping = stats.get("counters", {})
    if counters:
        width = max(len(name) for name in counters)
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")

    telemetry: Mapping = stats.get("telemetry", {})
    histograms: Mapping = telemetry.get("histograms", {})
    if histograms:
        lines.append(
            f"latency (window p50/p95/p99 over last {telemetry.get('window_s', '?')}s "
            f"rates):"
        )
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            hist = histograms[name]
            if name.endswith("_s"):
                detail = (
                    f"p50={_ms(hist['p50'])} p95={_ms(hist['p95'])} "
                    f"p99={_ms(hist['p99'])}"
                )
            else:
                detail = (
                    f"p50={hist['p50']} p95={hist['p95']} p99={hist['p99']}"
                )
            lines.append(f"  {name:<{width}}  n={hist['count']} {detail}")
    rates: Mapping = telemetry.get("counters", {})
    if rates:
        lines.append("rates:")
        width = max(len(name) for name in rates)
        for name in sorted(rates):
            entry = rates[name]
            lines.append(
                f"  {name:<{width}}  total={entry['total']} "
                f"window={entry['in_window']} "
                f"rate={entry['rate_per_s']:.3f}/s"
            )
    gauges: Mapping = telemetry.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:.6g}")

    resilience: Mapping = stats.get("resilience", {})
    if resilience:
        lines.append("resilience:")
        width = max(len(name) for name in resilience)
        for name in sorted(resilience):
            value = resilience[name]
            if isinstance(value, Mapping):
                value = " ".join(
                    f"{rung}={count}" for rung, count in sorted(value.items())
                ) or "-"
            lines.append(f"  {name:<{width}}  {value}")

    shards = stats.get("shards")
    if shards:
        lines.append("shards:")
        lines.append(
            "  shard  batches      queue  reqs    epoch  warm%   memo%   "
            "p99      rungs"
        )
        for row in shards:
            batches = ",".join(str(b) for b in row.get("batches", ()))
            warm = row.get("warm_hit_rate")
            memo = row.get("memo_hit_rate")
            p99 = row.get("p99_s")
            rungs = row.get("rungs") or {}
            rung_text = " ".join(
                f"{rung}={count}" for rung, count in sorted(rungs.items())
            ) or "-"
            batches_cell = f"[{batches}]"
            lines.append(
                f"  {row.get('shard', '?'):<5}  "
                f"{batches_cell:<11}  "
                f"{row.get('queue_depth', '?'):<5}  "
                f"{row.get('requests', '?'):<6}  "
                f"{row.get('epoch', '?'):<5}  "
                f"{'n/a' if warm is None else f'{warm:.0%}':<6}  "
                f"{'n/a' if memo is None else f'{memo:.0%}':<6}  "
                f"{_ms(p99):<7}  {rung_text}"
            )
    return "\n".join(lines)


def format_top(stats: Mapping, health: Mapping | None = None) -> str:
    """One `repro top` frame: health header + the stats body."""
    header = ["== repro top =="]
    if health is not None:
        status = health.get("health", "?")
        reasons = health.get("reasons") or []
        line = f"  health: {status}"
        if reasons:
            line += "  (" + "; ".join(reasons) + ")"
        header.append(line)
    gauges = stats.get("telemetry", {}).get("gauges", {})
    if gauges:
        uptime = gauges.get("uptime_s")
        epoch_age = gauges.get("epoch_age_s")
        bits = []
        if uptime is not None:
            bits.append(f"uptime {uptime:.1f}s")
        if epoch_age is not None:
            bits.append(f"epoch age {epoch_age:.1f}s")
        if bits:
            header.append("  " + " | ".join(bits))
    shards = stats.get("shards")
    if shards:
        total_queue = sum(row.get("queue_depth") or 0 for row in shards)
        total_requests = sum(row.get("requests") or 0 for row in shards)
        header.append(
            f"  fleet: {len(shards)} shard(s) | {total_requests} shard request(s) "
            f"| shard queues {total_queue}"
        )
    return "\n".join(header) + "\n" + format_stats(stats)
