"""Experimental settings of the paper (Tables 2 and 3).

Default values (bold in the paper) and the sweep grids, recorded as
constants so every bench prints the exact setting it runs.
"""

from __future__ import annotations

__all__ = [
    "TABLE2_C_VALUES",
    "TABLE2_ELL_VALUES",
    "TABLE2_DEFAULT_C",
    "TABLE2_DEFAULT_ELL",
    "TABLE3_SIZE_RANGES",
    "TABLE3_SUPER_VALUES",
    "TABLE3_FRESH_VALUES",
    "TABLE3_SIGMA_VALUES",
    "TABLE3_DEFAULT_SIZE_RANGE",
    "TABLE3_DEFAULT_SUPER_COUNT",
    "TABLE3_DEFAULT_FRESH_COUNT",
    "TABLE3_DEFAULT_SIGMA",
    "settings_banner",
]

# Table 2 — real data set.
TABLE2_C_VALUES = (0.2, 0.4, 0.6, 0.8, 1.0)
TABLE2_ELL_VALUES = (20, 30, 40, 50, 60)
TABLE2_DEFAULT_C = 0.6
TABLE2_DEFAULT_ELL = 40

# Table 3 — synthetic data sets.
TABLE3_SIZE_RANGES = ((1, 10), (5, 15), (10, 20), (15, 25), (20, 30))
TABLE3_SUPER_VALUES = (10, 30, 50, 70, 90)
TABLE3_FRESH_VALUES = (0, 5, 10, 15, 20)
TABLE3_SIGMA_VALUES = (8, 10, 12, 14, 16)
TABLE3_DEFAULT_SIZE_RANGE = (10, 20)
TABLE3_DEFAULT_SUPER_COUNT = 50
TABLE3_DEFAULT_FRESH_COUNT = 10
TABLE3_DEFAULT_SIGMA = 12


def settings_banner(experiment: str, **overrides: object) -> str:
    """A printable header reminding which Table 2/3 setting a bench runs."""
    lines = [
        f"== {experiment} ==",
        f"Table 2 defaults: c={TABLE2_DEFAULT_C}, l={TABLE2_DEFAULT_ELL}",
        (
            "Table 3 defaults: |s_i|="
            f"{list(TABLE3_DEFAULT_SIZE_RANGE)}, |S|={TABLE3_DEFAULT_SUPER_COUNT}, "
            f"|F|={TABLE3_DEFAULT_FRESH_COUNT}, sigma={TABLE3_DEFAULT_SIGMA}"
        ),
    ]
    if overrides:
        pairs = ", ".join(f"{key}={value}" for key, value in overrides.items())
        lines.append(f"Overrides: {pairs}")
    return "\n".join(lines)
