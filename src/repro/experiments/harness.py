"""Experiment harness: sweeps, timing and paper-style tables.

Reproduces the evaluation protocol of Section 7.1: for every point of
a parameter grid, sample problem instances (the paper uses 1000 per
point; benches default lower to stay laptop-friendly and accept an
override), run each approach (TM_S, TM_R, TM_P, TM_G), and report the
average ring size and average running time.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..core.modules import ModuleUniverse, second_config_ell
from ..core.problem import InfeasibleError
from ..core.selector import get_selector
from ..data.workload import ProblemInstance, sample_instances
from ..obs import metrics, trace

__all__ = [
    "ApproachResult",
    "SweepPoint",
    "SweepResult",
    "run_point",
    "run_sweep",
    "format_table",
    "DEFAULT_APPROACHES",
]

#: The paper's four practical approaches, in its plotting order.
DEFAULT_APPROACHES = ("smallest", "random", "progressive", "game")


@dataclass(frozen=True, slots=True)
class ApproachResult:
    """Average size/time of one approach at one sweep point."""

    approach: str
    mean_size: float
    mean_time: float
    instances: int
    failures: int

    @property
    def label(self) -> str:
        return {
            "smallest": "TM_S",
            "random": "TM_R",
            "progressive": "TM_P",
            "game": "TM_G",
            "bfs": "TM_B",
        }.get(self.approach, self.approach)


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One x-axis point of a figure: a parameter value and its instances."""

    parameter: str
    value: object
    instances: tuple[ProblemInstance, ...]


@dataclass(slots=True)
class SweepResult:
    """All measurements of one figure."""

    parameter: str
    points: list[object] = field(default_factory=list)
    results: dict[object, list[ApproachResult]] = field(default_factory=dict)

    def series(self, approach: str, metric: str = "mean_size") -> list[float]:
        """The y-series of one approach across the sweep (paper's lines)."""
        values = []
        for point in self.points:
            for result in self.results[point]:
                if result.approach == approach:
                    values.append(getattr(result, metric))
        return values


def run_point(
    point: SweepPoint,
    approaches: Sequence[str] = DEFAULT_APPROACHES,
    apply_second_config: bool = True,
    seed: int = 0,
) -> list[ApproachResult]:
    """Run every approach over one sweep point's instances."""
    measurements: list[ApproachResult] = []
    for approach in approaches:
        selector = get_selector(approach)
        rng = random.Random(seed)
        sizes: list[int] = []
        times: list[float] = []
        failures = 0
        with trace.span(
            "sweep.approach",
            approach=approach,
            parameter=point.parameter,
            value=str(point.value),
        ) as sp:
            rec = metrics.active()
            for instance in point.instances:
                ell = (
                    second_config_ell(instance.ell)
                    if apply_second_config
                    else instance.ell
                )
                start = time.perf_counter()
                try:
                    result = selector(
                        instance.modules, instance.target_token, instance.c,
                        ell, rng=rng,
                    )
                except InfeasibleError:
                    failures += 1
                    if rec is not None:
                        rec.count("sweep.failures")
                    continue
                times.append(time.perf_counter() - start)
                sizes.append(result.size)
                if rec is not None:
                    rec.count("sweep.instances")
            if sp is not None:
                sp.attrs["instances"] = len(sizes)
                sp.attrs["failures"] = failures
        measurements.append(
            ApproachResult(
                approach=approach,
                mean_size=statistics.fmean(sizes) if sizes else float("nan"),
                mean_time=statistics.fmean(times) if times else float("nan"),
                instances=len(sizes),
                failures=failures,
            )
        )
    return measurements


def run_sweep(
    parameter: str,
    values: Iterable[object],
    make_modules: Callable[[object], ModuleUniverse],
    c_of: Callable[[object], float],
    ell_of: Callable[[object], int],
    instances_per_point: int = 50,
    approaches: Sequence[str] = DEFAULT_APPROACHES,
    apply_second_config: bool = True,
    seed: int = 0,
) -> SweepResult:
    """Run one full figure: a sweep of ``parameter`` over ``values``.

    Args:
        parameter: display name of the swept parameter.
        values: the x-axis values.
        make_modules: builds the module universe for a value (real-data
            sweeps return the same universe for every value; synthetic
            sweeps regenerate).
        c_of / ell_of: the diversity requirement at each value.
        instances_per_point: sampled targets per point (paper: 1000).
        approaches: selector names to compare.
        apply_second_config: target (c, l+1) as TokenMagic does.
        seed: base RNG seed (varied per point for independence).
    """
    sweep = SweepResult(parameter=parameter)
    for offset, value in enumerate(values):
        with trace.span("sweep.point", parameter=parameter, value=str(value)):
            modules = make_modules(value)
            instances = tuple(
                sample_instances(
                    modules,
                    c=c_of(value),
                    ell=ell_of(value),
                    count=instances_per_point,
                    seed=seed + offset,
                )
            )
            point = SweepPoint(
                parameter=parameter, value=value, instances=instances
            )
            sweep.points.append(value)
            sweep.results[value] = run_point(
                point,
                approaches=approaches,
                apply_second_config=apply_second_config,
                seed=seed + offset,
            )
    return sweep


def format_table(sweep: SweepResult, metric: str = "mean_size", unit: str = "") -> str:
    """Render a sweep as the paper-style rows (one line per approach)."""
    approaches = [r.approach for r in sweep.results[sweep.points[0]]]
    header = f"{sweep.parameter:>12} | " + " | ".join(
        f"{str(value):>10}" for value in sweep.points
    )
    lines = [header, "-" * len(header)]
    for approach in approaches:
        row_values = []
        for value in sweep.points:
            for result in sweep.results[value]:
                if result.approach == approach:
                    row_values.append(getattr(result, metric))
        label = ApproachResult(approach, 0, 0, 0, 0).label
        cells = " | ".join(f"{value:>10.4g}" for value in row_values)
        lines.append(f"{label:>12} | {cells}{unit}")
    return "\n".join(lines)
