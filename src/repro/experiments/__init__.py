"""Experiment harness regenerating every table and figure of Section 7."""

from .figures import (
    Fig4Measurement,
    fig3_output_distribution,
    fig4_bfs_scaling,
    fig5_vary_c,
    fig6_vary_ell,
    fig7_vary_sigma,
    fig8_vary_super_count,
    fig9_vary_super_size,
    fig10_vary_fresh,
)
from .harness import (
    DEFAULT_APPROACHES,
    ApproachResult,
    SweepPoint,
    SweepResult,
    format_table,
    run_point,
    run_sweep,
)
from .tables import settings_banner

__all__ = [
    "fig3_output_distribution",
    "Fig4Measurement",
    "fig4_bfs_scaling",
    "fig5_vary_c",
    "fig6_vary_ell",
    "fig7_vary_sigma",
    "fig8_vary_super_count",
    "fig9_vary_super_size",
    "fig10_vary_fresh",
    "ApproachResult",
    "SweepPoint",
    "SweepResult",
    "run_point",
    "run_sweep",
    "format_table",
    "DEFAULT_APPROACHES",
    "settings_banner",
]
