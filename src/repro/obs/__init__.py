"""Structured observability for the exact pipeline (zero-dependency).

Three layers, all defaulting to off with near-zero disabled overhead:

* :mod:`repro.obs.metrics` — counters/gauges/histograms behind a
  swappable :class:`~repro.obs.metrics.Recorder`;
* :mod:`repro.obs.trace` — hierarchical spans with monotonic timing
  and a process-safe JSONL exporter;
* :mod:`repro.obs.events` — the typed solver progress vocabulary and
  the deterministic worker-merge protocol;
* :mod:`repro.obs.clock` — injectable clocks for deterministic
  simulation timestamps.

See DESIGN.md §9 for the architecture and the equivalence contract
(recording on/off never changes solver outputs).
"""

from . import clock, events, metrics, trace
from .clock import Clock, ManualClock
from .metrics import MemoryRecorder, Recorder, recording
from .trace import Span, Tracer, span, tracing

__all__ = [
    "clock",
    "events",
    "metrics",
    "trace",
    "Clock",
    "ManualClock",
    "MemoryRecorder",
    "Recorder",
    "recording",
    "Span",
    "Tracer",
    "span",
    "tracing",
]
