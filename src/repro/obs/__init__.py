"""Structured observability for the exact pipeline (zero-dependency).

Three layers, all defaulting to off with near-zero disabled overhead:

* :mod:`repro.obs.metrics` — counters/gauges/histograms behind a
  swappable :class:`~repro.obs.metrics.Recorder`;
* :mod:`repro.obs.trace` — hierarchical spans with monotonic timing
  and a process-safe JSONL exporter;
* :mod:`repro.obs.events` — the typed solver progress vocabulary and
  the deterministic worker-merge protocol;
* :mod:`repro.obs.clock` — injectable clocks for deterministic
  simulation timestamps;
* :mod:`repro.obs.telemetry` — deterministic fixed-bucket latency
  histograms with exact quantiles, rolling-window rate counters, and
  Prometheus text exposition for the service layer.

See DESIGN.md §9 for the architecture and the equivalence contract
(recording on/off never changes solver outputs).
"""

from . import clock, events, metrics, telemetry, trace
from .clock import Clock, ManualClock
from .metrics import MemoryRecorder, Recorder, recording
from .telemetry import FanoutRecorder, FixedBucketHistogram, RollingCounter, Telemetry
from .trace import Span, Tracer, span, tracing

__all__ = [
    "clock",
    "events",
    "metrics",
    "telemetry",
    "trace",
    "FanoutRecorder",
    "FixedBucketHistogram",
    "RollingCounter",
    "Telemetry",
    "Clock",
    "ManualClock",
    "MemoryRecorder",
    "Recorder",
    "recording",
    "Span",
    "Tracer",
    "span",
    "tracing",
]
