"""Counters, gauges and histograms behind a swappable :class:`Recorder`.

Zero-dependency, and near-zero overhead when disabled: the module keeps
a single active-recorder slot, and ``active()`` returns ``None`` when
nothing is installed.  Hot paths hoist one ``rec = metrics.active()``
lookup and guard each bump with ``if rec is not None`` — the disabled
cost per instrumentation site is one global load, one call and one
comparison (the overhead-guard test in ``tests/test_obs_overhead.py``
prices this against the BFS bench ladder).

Counter names are flat dotted strings (``"bfs.candidates"``,
``"cache.worlds_hits"``); per-size strata append a suffix
(``"bfs.candidates.size4"``).  The canonical names live in
:mod:`repro.obs.events` next to the typed events that produce them.

The recorder slot is a plain module global, *not* a context variable:
forked pool workers inherit whatever was installed at fork time, and
:mod:`repro.core.perf.parallel` swaps in a per-candidate
:class:`MemoryRecorder` so worker-side counts travel back to the
controller as snapshots (see DESIGN.md §9).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Protocol, runtime_checkable

__all__ = [
    "Recorder",
    "MemoryRecorder",
    "active",
    "set_recorder",
    "recording",
    "count",
    "gauge",
    "observe",
    "format_summary",
]


@runtime_checkable
class Recorder(Protocol):
    """What an installed metrics sink must provide."""

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution ``name``."""


class MemoryRecorder:
    """In-process recorder: plain dicts, deterministic snapshots.

    Histograms keep streaming aggregates (count/sum/min/max) rather
    than raw samples so snapshots stay small enough to ship across the
    worker result queue and embed in ``BENCH_*.json``.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, float]] = {}

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
        else:
            hist["count"] += 1
            hist["sum"] += value
            hist["min"] = min(hist["min"], value)
            hist["max"] = max(hist["max"], value)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready copy, keys sorted for deterministic artifacts."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: dict(hist)
                for name, hist in sorted(self.histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into self.

        Counters add, gauges last-write-win, histogram aggregates
        combine — merging the same snapshots in the same order always
        yields the same totals, which is what makes the parallel event
        path deterministic.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = value
        for name, other in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = dict(other)
            else:
                hist["count"] += other["count"]
                hist["sum"] += other["sum"]
                hist["min"] = min(hist["min"], other["min"])
                hist["max"] = max(hist["max"], other["max"])


# -- the active-recorder slot ----------------------------------------------

_active: Recorder | None = None


def active() -> Recorder | None:
    """The installed recorder, or None when metrics are disabled."""
    return _active


def set_recorder(recorder: Recorder | None) -> Recorder | None:
    """Install ``recorder`` (None disables); returns it for chaining."""
    global _active
    _active = recorder
    return recorder


@contextmanager
def recording(recorder: Recorder | None = None) -> Iterator[Recorder]:
    """Install a recorder for the duration of a ``with`` block.

    A fresh :class:`MemoryRecorder` is created when none is given; the
    previously installed recorder is restored on exit.
    """
    installed = MemoryRecorder() if recorder is None else recorder
    previous = _active
    set_recorder(installed)
    try:
        yield installed
    finally:
        set_recorder(previous)


# -- convenience wrappers for cold paths -----------------------------------


def count(name: str, value: int = 1) -> None:
    rec = _active
    if rec is not None:
        rec.count(name, value)


def gauge(name: str, value: float) -> None:
    rec = _active
    if rec is not None:
        rec.gauge(name, value)


def observe(name: str, value: float) -> None:
    rec = _active
    if rec is not None:
        rec.observe(name, value)


# -- human summary ---------------------------------------------------------


def _rate(hits: int, misses: int) -> str:
    total = hits + misses
    if total == 0:
        return "n/a"
    return f"{hits / total:.1%} ({hits}/{total})"


def format_summary(snapshot: Mapping) -> str:
    """Render a snapshot as the CLI's human metrics table.

    Derived lines (hit rates, candidates/sec) come first; the raw
    counter/gauge dump follows so nothing recorded is hidden.
    """
    counters: Mapping[str, int] = snapshot.get("counters", {})
    gauges: Mapping[str, float] = snapshot.get("gauges", {})
    histograms: Mapping[str, Mapping[str, float]] = snapshot.get("histograms", {})

    lines = ["== metrics =="]
    derived: list[tuple[str, str]] = []

    derived.append(
        (
            "cache worlds hit rate",
            _rate(
                counters.get("cache.worlds_hits", 0),
                counters.get("cache.worlds_misses", 0),
            ),
        )
    )
    derived.append(
        (
            "dtrs memo hit rate",
            _rate(
                counters.get("dtrs.memo_hits", 0),
                counters.get("dtrs.memo_misses", 0),
            ),
        )
    )
    candidates = counters.get("bfs.candidates", 0)
    select_hist = histograms.get("bfs.select_s")
    if select_hist and select_hist.get("sum", 0.0) > 0:
        derived.append(
            ("candidates/sec", f"{candidates / select_hist['sum']:.1f}")
        )
    else:
        derived.append(("candidates/sec", "n/a"))
    derived.append(
        (
            "worlds enumerated",
            f"{counters.get('worlds.enumerated', 0)} base "
            f"(+{counters.get('worlds.extended_worlds', 0)} extended)",
        )
    )
    derived.append(
        (
            "matcher repairs",
            f"{counters.get('matcher.repairs', 0)} "
            f"(failed {counters.get('matcher.repair_failures', 0)})",
        )
    )

    width = max(len(label) for label, _ in derived)
    for label, value in derived:
        lines.append(f"  {label:<{width}}  {value}")

    if counters:
        lines.append("counters:")
        name_width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{name_width}}  {counters[name]}")
    if gauges:
        lines.append("gauges:")
        name_width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{name_width}}  {gauges[name]:.6g}")
    if histograms:
        lines.append("histograms:")
        name_width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            hist = histograms[name]
            lines.append(
                f"  {name:<{name_width}}  n={int(hist['count'])} "
                f"sum={hist['sum']:.4g} min={hist['min']:.4g} "
                f"max={hist['max']:.4g}"
            )
    return "\n".join(lines)
