"""Typed solver progress events and the worker-merge protocol.

The exact pipeline reports progress in a small, closed vocabulary of
events — one frozen dataclass per thing that happens — instead of
ad-hoc counter bumps scattered through solver code.  ``emit(event)``
forwards an event to the active metrics recorder (as the canonical
counters/gauges the event defines) and drops an instant marker into
the active trace.  The very hottest sites (per augmenting-path repair
inside :class:`~repro.core.perf.matching.IncrementalMatcher`) bypass
the event object and bump their canonical counters directly; the names
are still declared here.

Worker forwarding
-----------------

``bfs_select(workers=N)`` checks candidates in forked pool workers.
Each worker wraps every candidate check in its own
:class:`~repro.obs.metrics.MemoryRecorder` and ships the resulting
per-candidate snapshots back on the pool's result queue alongside the
chunk outcome.  The controller folds snapshots in **submission order**,
stopping at the winning candidate — exactly the candidates the serial
scan would have counted — so merged totals are deterministic and equal
to a serial run for every counter except the explicitly
scheduling-dependent ones below.

Scheduling-dependent counters: each worker owns a private
:class:`~repro.core.perf.cache.SolverCache`, so *which* candidate pays
for a base-world enumeration (a ``cache.worlds_misses`` +
``worlds.enumerated`` pair) depends on how candidates land on workers.
:func:`deterministic_view` strips those names; everything it keeps is
pinned equal across worker counts by ``tests/test_obs_parallel.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from . import metrics, trace

__all__ = [
    "Event",
    "CandidateScanned",
    "StratumExhausted",
    "WorldsBuilt",
    "WorldsExtended",
    "DtrsSweep",
    "CacheWorldsLookup",
    "KernelStateBuilt",
    "KernelBatchScanned",
    "DeadlineTripped",
    "RingGenerated",
    "ReserveChecked",
    "NeighborInference",
    "AttackAnalyzed",
    "FaultInjected",
    "DegradationStepped",
    "LadderFailClosed",
    "RungServed",
    "WorkerRetry",
    "WorkerChunkLost",
    "CheckpointSaved",
    "CheckpointResumed",
    "RequestAdmitted",
    "RequestRejected",
    "BatchExecuted",
    "MemoServed",
    "EpochAdvanced",
    "emit",
    "enabled",
    "merge_worker_snapshots",
    "deterministic_view",
    "SCHEDULING_DEPENDENT",
]

#: Counter names whose totals legitimately differ between worker counts
#: (per-process cache effects) — see the module docstring.
SCHEDULING_DEPENDENT = (
    "cache.",
    "kernel.",
    "worlds.built",
    "worlds.enumerated",
)


class Event(Protocol):
    """An observable step: knows how to record itself on a Recorder."""

    def record(self, recorder: metrics.Recorder) -> None: ...


@dataclass(frozen=True, slots=True)
class CandidateScanned:
    """One BFS candidate checked; ``filtered_at`` names the failing gate
    ("ht", "eliminated", "dtrs") or is None for a feasible candidate."""

    size: int
    filtered_at: str | None

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("bfs.candidates")
        recorder.count(f"bfs.candidates.size{self.size}")
        if self.filtered_at is None:
            recorder.count("bfs.feasible")
        else:
            recorder.count(f"bfs.filtered.{self.filtered_at}")


@dataclass(frozen=True, slots=True)
class StratumExhausted:
    """A whole size-k stratum scanned without a feasible candidate."""

    size: int
    candidates: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("bfs.strata_exhausted")


@dataclass(frozen=True, slots=True)
class WorldsBuilt:
    """A fresh token-RS world enumeration (the exponential step)."""

    rings: int
    worlds: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("worlds.built")
        recorder.count("worlds.enumerated", self.worlds)


@dataclass(frozen=True, slots=True)
class WorldsExtended:
    """A candidate closure's worlds derived from a shared base prefix."""

    worlds: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("worlds.extended")
        recorder.count("worlds.extended_worlds", self.worlds)


@dataclass(frozen=True, slots=True)
class DtrsSweep:
    """One ``dtrss_of`` query: memo outcome plus how many DTRSs came back."""

    memo_hit: bool
    found: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("dtrs.sweeps")
        recorder.count("dtrs.memo_hits" if self.memo_hit else "dtrs.memo_misses")
        if not self.memo_hit:
            recorder.count("dtrs.found", self.found)


@dataclass(frozen=True, slots=True)
class CacheWorldsLookup:
    """A SolverCache base-world lookup (component/world sharing)."""

    hit: bool

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("cache.worlds_hits" if self.hit else "cache.worlds_misses")


@dataclass(frozen=True, slots=True)
class KernelStateBuilt:
    """A columnar kernel state (slices + HT masks) derived from a cached
    base world set.  Per-process and cache-keyed, so scheduling-dependent
    in parallel runs — every ``kernel.`` counter is stripped from the
    deterministic view."""

    rings: int
    worlds: int
    backend: str

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("kernel.states")
        recorder.count(f"kernel.states.{self.backend}")
        recorder.count("kernel.state_worlds", self.worlds)


@dataclass(frozen=True, slots=True)
class KernelBatchScanned:
    """One batched pre-filter over a chunk of same-stratum candidates.

    ``resolved`` counts candidates whose verdict the kernel settled
    without the per-candidate fallback ("full" verdicts are the
    remainder).
    """

    candidates: int
    resolved: int
    backend: str

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("kernel.batches")
        recorder.count("kernel.candidates", self.candidates)
        recorder.count("kernel.resolved", self.resolved)
        recorder.observe("kernel.batch_size", self.candidates)


@dataclass(frozen=True, slots=True)
class DeadlineTripped:
    """The search budget ran out: where, and by how much.

    ``margin_s`` is ``deadline - now`` at the trip (negative =
    overshoot past the budget).
    """

    size: int
    scanned_in_size: int
    margin_s: float

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("bfs.deadline_trips")
        recorder.gauge("bfs.deadline_margin_s", self.margin_s)
        recorder.gauge("bfs.deadline_size", self.size)
        recorder.gauge("bfs.deadline_scanned_in_size", self.scanned_in_size)


@dataclass(frozen=True, slots=True)
class RingGenerated:
    """TokenMagic produced a ring (any selector, any mode)."""

    algorithm: str
    size: int
    elapsed_s: float

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("tokenmagic.rings")
        recorder.count(f"tokenmagic.rings.{self.algorithm}")
        recorder.observe("tokenmagic.generate_s", self.elapsed_s)
        recorder.observe("tokenmagic.ring_size", self.size)


@dataclass(frozen=True, slots=True)
class ReserveChecked:
    """One eta-reserve admission check (Section 4's reserve rule)."""

    ok: bool

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("registry.reserve_checks")
        if not self.ok:
            recorder.count("registry.reserve_violations")


@dataclass(frozen=True, slots=True)
class NeighborInference:
    """A Theorem 4.1 consumed-token closure over a ring registry."""

    rings: int
    consumed: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("registry.closure_checks")
        recorder.gauge("registry.consumed_tokens", self.consumed)


@dataclass(frozen=True, slots=True)
class AttackAnalyzed:
    """A chain-reaction attack finished over a ring set."""

    kind: str
    rings: int
    deanonymized: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count(f"attack.{self.kind}_runs")
        recorder.count("attack.rings_analyzed", self.rings)
        recorder.count("attack.deanonymized", self.deanonymized)


@dataclass(frozen=True, slots=True)
class FaultInjected:
    """An active :class:`~repro.resilience.faults.FaultPlan` fired."""

    site: str
    action: str

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("resilience.faults")
        recorder.count(f"resilience.faults.{self.site}")


@dataclass(frozen=True, slots=True)
class DegradationStepped:
    """The ladder stepped down to ``rung`` because of ``trigger``."""

    rung: str
    trigger: str | None

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("resilience.degradations")
        recorder.count(f"resilience.degradations.{self.rung}")


@dataclass(frozen=True, slots=True)
class LadderFailClosed:
    """Every rung failed verification — the ladder refused to emit."""

    rung: str

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("resilience.fail_closed")


@dataclass(frozen=True, slots=True)
class RungServed:
    """The ladder produced a verified ring at ``rung``."""

    rung: str
    degraded: bool

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("resilience.rung_served")
        recorder.count(f"resilience.rung_served.{self.rung}")


@dataclass(frozen=True, slots=True)
class WorkerRetry:
    """A lost/hung worker chunk was requeued (attempt is 1-based)."""

    chunk_index: int
    attempt: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("resilience.retries")


@dataclass(frozen=True, slots=True)
class WorkerChunkLost:
    """A chunk exhausted its retries — WorkerLost is about to raise."""

    chunk_index: int
    attempts: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("resilience.worker_lost")


@dataclass(frozen=True, slots=True)
class CheckpointSaved:
    """A BFS stratum boundary was checkpointed to disk."""

    size: int
    candidates: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("resilience.checkpoints")
        recorder.gauge("resilience.checkpoint_size", self.size)


@dataclass(frozen=True, slots=True)
class CheckpointResumed:
    """A BFS search resumed from a checkpoint at stratum ``size``."""

    size: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("resilience.resumes")


@dataclass(frozen=True, slots=True)
class RequestAdmitted:
    """The selection service accepted a request into its queue."""

    queue_depth: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("service.admitted")
        recorder.gauge("service.queue_depth", self.queue_depth)


@dataclass(frozen=True, slots=True)
class RequestRejected:
    """The service refused a request with a typed ``code``
    ("queue_full", "stale_epoch", "bad_request", ...)."""

    code: str

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("service.rejected")
        recorder.count(f"service.rejected.{self.code}")


@dataclass(frozen=True, slots=True)
class BatchExecuted:
    """One micro-batch drained and served against a single snapshot."""

    size: int
    epoch: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("service.batches")
        recorder.observe("service.batch_size", self.size)


@dataclass(frozen=True, slots=True)
class MemoServed:
    """A request was answered from the snapshot's result memo."""

    mode: str

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("service.memo_hits")
        recorder.count(f"service.memo_hits.{self.mode}")


@dataclass(frozen=True, slots=True)
class EpochAdvanced:
    """The chain snapshot grew; warm caches were invalidated."""

    epoch: int
    rings: int

    def record(self, recorder: metrics.Recorder) -> None:
        recorder.count("service.epoch_advances")
        recorder.gauge("service.epoch", self.epoch)


def enabled() -> bool:
    """Is any sink (metrics or trace) installed?  Guard for warm paths."""
    return metrics.active() is not None or trace.active() is not None


def emit(event: Event) -> None:
    """Record ``event`` on the active recorder and mark it in the trace."""
    recorder = metrics.active()
    if recorder is not None:
        event.record(recorder)
    tracer = trace.active()
    if tracer is not None:
        trace.instant(type(event).__name__, **_attrs_of(event))


def _attrs_of(event: Event) -> dict:
    cls = type(event)
    return {name: getattr(event, name) for name in cls.__dataclass_fields__}


# -- worker-side forwarding -------------------------------------------------


def merge_worker_snapshots(
    recorder: metrics.Recorder | None, snapshots: Sequence[Mapping] | None
) -> None:
    """Fold per-candidate worker snapshots into the controller recorder.

    Snapshots must be passed in submission order; only
    :class:`~repro.obs.metrics.MemoryRecorder` targets can merge (the
    protocol's minimum surface has no merge), so anything else drops
    them silently.
    """
    if not snapshots or recorder is None:
        return
    if isinstance(recorder, metrics.MemoryRecorder):
        for snapshot in snapshots:
            recorder.merge_snapshot(snapshot)


def deterministic_view(counters: Mapping[str, int]) -> dict[str, int]:
    """Counters whose totals are identical for every worker count."""
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith(SCHEDULING_DEPENDENT)
    }
