"""Deterministic operational telemetry: histograms, rates, exposition.

:mod:`repro.obs.metrics` answers "what did this run do" — streaming
aggregates cheap enough to ship across a worker queue.  A long-lived
daemon needs more: latency *distributions* (p50/p95/p99, not min/max),
rates over a recent window (requests/s now, not since boot), and a
wire format scrapers understand.  This module supplies those
primitives with the same design rules as the rest of ``repro.obs``:

* **Deterministic.**  Nothing here reads a clock on its own.  Every
  timestamped operation takes ``now`` explicitly, so a caller holding
  a :class:`~repro.obs.clock.ManualClock` gets byte-identical
  snapshots run after run — quantiles included — and tests assert
  them exactly (``tests/test_obs_telemetry.py``).
* **Bounded.**  :class:`FixedBucketHistogram` keeps fixed bucket
  counters forever but raw samples only over a bounded window, so a
  daemon serving millions of requests holds O(window) state per
  series.  Quantiles are *exact* (nearest-rank) over the retained
  window — no interpolation, no sketch error.
* **Zero-dependency.**  The Prometheus text exposition
  (:func:`render_prometheus`) is a few string joins, not a client
  library.

:class:`FanoutRecorder` is the bridge to the existing event pipeline:
it satisfies the :class:`~repro.obs.metrics.Recorder` protocol and
tees every bump to several sinks, so a service can capture solver and
resilience counters for itself without evicting a recorder the CLI
installed (``--metrics`` keeps working unchanged).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Mapping, Sequence

from . import metrics

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "FixedBucketHistogram",
    "RollingCounter",
    "Telemetry",
    "FanoutRecorder",
    "render_prometheus",
]

#: Fixed latency bucket upper bounds in seconds (Prometheus-style
#: ``le`` boundaries; an implicit +Inf bucket closes the series).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: What an HTTP bridge should serve the exposition body as.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class FixedBucketHistogram:
    """Fixed-bucket histogram with exact quantiles over a bounded window.

    Bucket counters, ``count``/``sum``/``min``/``max`` are cumulative
    since construction; raw samples are retained only for the last
    ``window`` observations, and :meth:`quantile` is the exact
    nearest-rank statistic over that window.  While fewer than
    ``window`` samples have been observed the quantiles are exact over
    *everything* — which is what makes them assertable in tests.

    Args:
        bounds: strictly increasing bucket upper bounds (``le``).
        window: how many raw samples to retain for quantiles.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max", "_window")

    def __init__(
        self,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        window: int = 4096,
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise ValueError("bounds must be non-empty and strictly increasing")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.bucket_counts[self._bucket_index(value)] += 1
        self._window.append(value)

    def _bucket_index(self, value: float) -> int:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    def quantile(self, q: float) -> float | None:
        """Exact nearest-rank quantile over the retained window.

        ``quantile(0.5)`` of samples ``1..100`` is exactly ``50``;
        ``None`` when nothing has been observed.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    @property
    def window_len(self) -> int:
        return len(self._window)

    def snapshot(self) -> dict:
        """JSON-ready aggregate: totals, exact quantiles, cumulative buckets."""
        buckets: dict[str, int] = {}
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            buckets[format_bound(bound)] = running
        buckets["+Inf"] = running + self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


def format_bound(bound: float) -> str:
    """A stable string key for a bucket bound (``2.0`` not ``2``)."""
    return repr(float(bound))


class RollingCounter:
    """A counter with a total since boot and a rate over a recent window.

    Every :meth:`add` takes the caller's ``now`` — the counter never
    reads a clock — and entries older than ``window_s`` are pruned
    lazily, so memory stays bounded by the event rate inside one
    window.
    """

    __slots__ = ("window_s", "total", "_events")

    def __init__(self, window_s: float = 60.0) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self.total = 0
        self._events: deque[tuple[float, int]] = deque()

    def add(self, now: float, value: int = 1) -> None:
        self.total += value
        self._events.append((now, value))
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        events = self._events
        while events and events[0][0] <= horizon:
            events.popleft()

    def in_window(self, now: float) -> int:
        """How much was counted within ``window_s`` of ``now``."""
        self._prune(now)
        return sum(value for _, value in self._events)

    def rate(self, now: float) -> float:
        """Events per second over the window ending at ``now``."""
        return self.in_window(now) / self.window_s


class Telemetry:
    """A name-keyed registry of histograms, rolling counters and gauges.

    One instance per instrumented component; all operations are
    explicit-``now`` so determinism is the caller's choice of clock.
    Series are created on first use; :meth:`snapshot` emits everything
    with sorted keys for stable artifacts.
    """

    def __init__(
        self, rate_window_s: float = 60.0, quantile_window: int = 4096
    ) -> None:
        self.rate_window_s = rate_window_s
        self.quantile_window = quantile_window
        self._histograms: dict[str, FixedBucketHistogram] = {}
        self._counters: dict[str, RollingCounter] = {}
        self._gauges: dict[str, float] = {}

    # -- write side ----------------------------------------------------------

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> FixedBucketHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = FixedBucketHistogram(bounds, window=self.quantile_window)
            self._histograms[name] = hist
        return hist

    def counter(self, name: str) -> RollingCounter:
        counter = self._counters.get(name)
        if counter is None:
            counter = RollingCounter(window_s=self.rate_window_s)
            self._counters[name] = counter
        return counter

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def count(self, name: str, now: float, value: int = 1) -> None:
        self.counter(name).add(now, value)

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    # -- read side -----------------------------------------------------------

    def counter_total(self, name: str) -> int:
        counter = self._counters.get(name)
        return 0 if counter is None else counter.total

    def counter_in_window(self, name: str, now: float) -> int:
        counter = self._counters.get(name)
        return 0 if counter is None else counter.in_window(now)

    def quantile(self, name: str, q: float) -> float | None:
        hist = self._histograms.get(name)
        return None if hist is None else hist.quantile(q)

    def totals(self, prefix: str = "") -> dict[str, int]:
        """Lifetime totals of every counter matching ``prefix``, sorted."""
        return {
            name: counter.total
            for name, counter in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def counters_in_window(self, now: float, prefix: str = "") -> dict[str, int]:
        """Window totals of every counter matching ``prefix``, sorted."""
        return {
            name: counter.in_window(now)
            for name, counter in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self, now: float) -> dict:
        """JSON-ready dump: histogram aggregates, counter totals+window
        rates, gauges — deterministic under a deterministic clock."""
        return {
            "window_s": self.rate_window_s,
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self._histograms.items())
            },
            "counters": {
                name: {
                    "total": counter.total,
                    "in_window": counter.in_window(now),
                    "rate_per_s": counter.rate(now),
                }
                for name, counter in sorted(self._counters.items())
            },
            "gauges": dict(sorted(self._gauges.items())),
        }


class FanoutRecorder:
    """Tee a :class:`~repro.obs.metrics.Recorder` stream to many sinks.

    ``None`` sinks are skipped, so ``FanoutRecorder(metrics.active(),
    mine)`` composes with "nothing installed".  This is how the
    selection service captures solver/resilience counters without
    displacing a CLI ``--metrics`` recorder.
    """

    __slots__ = ("sinks",)

    def __init__(self, *sinks: metrics.Recorder | None) -> None:
        self.sinks = tuple(sink for sink in sinks if sink is not None)

    def count(self, name: str, value: int = 1) -> None:
        for sink in self.sinks:
            sink.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        for sink in self.sinks:
            sink.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        for sink in self.sinks:
            sink.observe(name, value)


# -- Prometheus text exposition ---------------------------------------------


def _metric_name(prefix: str, name: str) -> str:
    cleaned = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _format_value(value: float) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(
    snapshot: Mapping,
    prefix: str = "repro",
    extra_counters: Mapping[str, int] | None = None,
    labels: Mapping[str, str] | None = None,
    type_lines: bool = True,
) -> str:
    """Render a :meth:`Telemetry.snapshot` as Prometheus text format.

    Histograms become ``_bucket``/``_sum``/``_count`` families plus
    ``_p50``/``_p95``/``_p99`` gauges (exact window quantiles — a
    histogram family cannot carry them, and scrapers alert on them
    directly).  Counters become ``_total`` plus a ``_rate`` gauge over
    the snapshot's rolling window.  ``extra_counters`` renders a plain
    name→int mapping (e.g. solver counters) as counter families.

    ``labels`` stamps every sample with a constant label set (the
    shard-tagged exposition of the sharded service: each worker's body
    carries ``shard="N"`` and the router concatenates them under the
    fleet's unlabelled families).  ``type_lines=False`` suppresses the
    ``# TYPE`` comments — used for all but the first labelled body of
    one family so a concatenated exposition declares each family once.
    """
    lines: list[str] = []
    constant = "" if not labels else ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    suffix = f"{{{constant}}}" if constant else ""

    def emit_type(line: str) -> None:
        if type_lines:
            lines.append(line)

    for name, hist in snapshot.get("histograms", {}).items():
        base = _metric_name(prefix, name)
        emit_type(f"# TYPE {base} histogram")
        for bound, cumulative in hist["buckets"].items():
            bucket_labels = f'le="{bound}"' + (f",{constant}" if constant else "")
            lines.append(f"{base}_bucket{{{bucket_labels}}} {cumulative}")
        lines.append(f"{base}_sum{suffix} {_format_value(hist['sum'])}")
        lines.append(f"{base}_count{suffix} {hist['count']}")
        for label in ("p50", "p95", "p99"):
            if hist.get(label) is not None:
                emit_type(f"# TYPE {base}_{label} gauge")
                lines.append(f"{base}_{label}{suffix} {_format_value(hist[label])}")

    for name, counter in snapshot.get("counters", {}).items():
        base = _metric_name(prefix, name)
        emit_type(f"# TYPE {base}_total counter")
        lines.append(f"{base}_total{suffix} {counter['total']}")
        emit_type(f"# TYPE {base}_rate gauge")
        lines.append(f"{base}_rate{suffix} {_format_value(counter['rate_per_s'])}")

    for name, value in snapshot.get("gauges", {}).items():
        base = _metric_name(prefix, name)
        emit_type(f"# TYPE {base} gauge")
        lines.append(f"{base}{suffix} {_format_value(value)}")

    for name, value in sorted((extra_counters or {}).items()):
        base = _metric_name(prefix, name)
        emit_type(f"# TYPE {base}_total counter")
        lines.append(f"{base}_total{suffix} {value}")

    return "\n".join(lines) + "\n"
