"""Hierarchical spans with monotonic timing and a JSONL exporter.

Usage::

    from repro.obs import trace

    with trace.tracing() as tracer:
        with trace.span("bfs.select", tokens=20):
            with trace.span("bfs.stratum", size=3) as sp:
                ...
                sp.attrs["candidates"] = checked
        tracer.export_jsonl("trace.jsonl")

Like :mod:`repro.obs.metrics`, the active :class:`Tracer` lives in one
module-global slot so the disabled path is a single load + comparison;
the *current span* (what a new span parents onto) is a
:class:`contextvars.ContextVar`, so nesting is correct even under
asyncio or threads sharing a tracer.

Timing is ``time.perf_counter()`` throughout — monotonic, never
wall-clock — reported relative to the tracer's origin so exported
traces are small, stable numbers.  Spans land in the export in *finish*
order, which means the ``end`` field is non-decreasing through the
file (children appear before their parents); consumers wanting start
order sort on ``start``.

The exporter appends each span as one ``os.write`` of a single
newline-terminated JSON line, so several processes may share one trace
file without interleaving partial lines (POSIX ``O_APPEND`` semantics).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Span",
    "Tracer",
    "active",
    "set_tracer",
    "tracing",
    "span",
    "instant",
    "JsonlExporter",
]


@dataclass(slots=True)
class Span:
    """One timed operation; ``attrs`` may be updated until it finishes."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    attrs: dict = field(default_factory=dict)
    end: float | None = None

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def as_record(self, pid: int) -> dict:
        """The JSONL form of a finished span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": pid,
            "start": round(self.start, 9),
            "end": None if self.end is None else round(self.end, 9),
            "attrs": self.attrs,
        }


class Tracer:
    """Collects finished spans; one per recording session."""

    __slots__ = ("finished", "_origin", "_next_id")

    def __init__(self) -> None:
        self.finished: list[Span] = []
        self._origin = time.perf_counter()
        self._next_id = 1

    def begin(self, name: str, parent: Span | None, attrs: dict) -> Span:
        sp = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            start=time.perf_counter() - self._origin,
            attrs=attrs,
        )
        self._next_id += 1
        return sp

    def finish(self, sp: Span) -> None:
        sp.end = time.perf_counter() - self._origin
        self.finished.append(sp)

    def instant(self, name: str, parent: Span | None, attrs: dict) -> Span:
        """A zero-duration marker span (progress events in the trace)."""
        sp = self.begin(name, parent, attrs)
        sp.end = sp.start
        self.finished.append(sp)
        return sp

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Append all finished spans to ``path``; returns the span count."""
        exporter = JsonlExporter(path)
        try:
            pid = os.getpid()
            for sp in self.finished:
                exporter.write(sp.as_record(pid))
        finally:
            exporter.close()
        return len(self.finished)


class JsonlExporter:
    """Process-safe JSONL appender (one atomic write per record)."""

    __slots__ = ("_fd",)

    def __init__(self, path: str | os.PathLike) -> None:
        self._fd = os.open(
            os.fspath(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        os.close(self._fd)

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the active-tracer slot -------------------------------------------------

_active: Tracer | None = None
_current_span: ContextVar[Span | None] = ContextVar(
    "repro_obs_current_span", default=None
)


def active() -> Tracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    global _active
    _active = tracer
    return tracer


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block."""
    installed = Tracer() if tracer is None else tracer
    previous = _active
    set_tracer(installed)
    try:
        yield installed
    finally:
        set_tracer(previous)


@contextmanager
def span(name: str, **attrs) -> Iterator[Span | None]:
    """Open a child of the current span; yields None when disabled."""
    tracer = _active
    if tracer is None:
        yield None
        return
    sp = tracer.begin(name, _current_span.get(), attrs)
    token = _current_span.set(sp)
    try:
        yield sp
    finally:
        _current_span.reset(token)
        tracer.finish(sp)


def instant(name: str, **attrs) -> None:
    """Record a zero-duration marker under the current span (if tracing)."""
    tracer = _active
    if tracer is not None:
        tracer.instant(name, _current_span.get(), attrs)
