"""Injectable clocks: wall time by default, deterministic on demand.

The ledger stamps blocks with wall-clock time, which makes simulation
traces unreproducible run to run.  :class:`~repro.chain.Blockchain`
therefore accepts any zero-argument callable returning seconds; tests
and deterministic simulations pass a :class:`ManualClock`.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "ManualClock", "wall_clock"]

#: Anything callable as ``clock() -> float`` (seconds since some epoch).
Clock = Callable[[], float]

#: The default clock — plain wall time.
wall_clock: Clock = time.time


class ManualClock:
    """A deterministic clock that only moves when told to.

    Each call returns the current time and then advances it by
    ``step`` — so successive block timestamps are distinct and strictly
    increasing without any explicit ``advance()`` calls, while staying
    byte-identical across runs.
    """

    __slots__ = ("now", "step")

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self.now = float(start)
        self.step = float(step)

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current

    def advance(self, seconds: float) -> None:
        """Jump the clock forward without producing a reading."""
        self.now += seconds
