"""Command-line interface: regenerate any figure from a terminal.

Usage::

    python -m repro.cli fig3
    python -m repro.cli fig5 --instances 100 --seed 3
    python -m repro.cli fig4 --budget 30
    python -m repro.cli sim --ticks 20
    python -m repro.cli select --rings 4 --budget 5 --checkpoint cp.json
    python -m repro.cli serve --socket /tmp/repro.sock
    python -m repro.cli client --socket /tmp/repro.sock --target t03
    python -m repro.cli client --socket /tmp/repro.sock --stats
    python -m repro.cli top --socket /tmp/repro.sock

Each figure command prints the same table its benchmark writes; the
``sim`` command runs the longitudinal economy simulation; ``select``
generates sequential rings through the resilience ladder
(:mod:`repro.resilience`); ``serve`` runs the long-lived selection
daemon (:mod:`repro.service`, JSONL over stdio or a unix socket),
``client`` submits requests to it (``--stats``/``--watch`` pretty-print
the telemetry payload), and ``top`` is a live terminal view polling a
running daemon's stats and health probes.

Every command also accepts the observability flags ``--metrics`` (print
a counter/histogram summary after the run), ``--trace-out PATH`` (dump
the hierarchical span tree as JSONL; see ``repro.obs``) and
``--fault-plan PATH`` (install a :mod:`repro.resilience.faults` plan
for chaos runs).

Exit codes follow sysexits where a typed failure escapes: 75
(EX_TEMPFAIL) when the exact search ran out of budget, 65 (EX_DATAERR)
when the ladder failed closed on a Definition 5 violation.  A run that
*degraded* but still produced a verified ring exits 0 with a notice on
stderr.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Callable

#: sysexits(3)-style codes for the typed failures (satellite contract).
EXIT_BUDGET_EXCEEDED = 75
EXIT_CONSTRAINT_VIOLATION = 65
#: EX_UNAVAILABLE: another live daemon owns the socket/journal.
EXIT_ALREADY_RUNNING = 69

from .experiments.figures import (
    fig3_output_distribution,
    fig4_bfs_scaling,
    fig5_vary_c,
    fig6_vary_ell,
    fig7_vary_sigma,
    fig8_vary_super_count,
    fig9_vary_super_size,
    fig10_vary_fresh,
)
from .experiments.harness import format_table
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace

__all__ = ["main"]

_SWEEPS: dict[str, Callable] = {
    "fig5": fig5_vary_c,
    "fig6": fig6_vary_ell,
    "fig7": fig7_vary_sigma,
    "fig8": fig8_vary_super_count,
    "fig9": fig9_vary_super_size,
    "fig10": fig10_vary_fresh,
}


def _run_fig3(args: argparse.Namespace) -> None:
    distribution = fig3_output_distribution(seed=args.seed)
    print(f"{'outputs/tx':>10} | {'transactions':>12}")
    print("-" * 26)
    for outputs in sorted(distribution):
        print(f"{outputs:>10} | {distribution[outputs]:>12}")
    print(f"\ntotal: {sum(distribution.values())} transactions, "
          f"{sum(k * v for k, v in distribution.items())} tokens")


def _run_fig4(args: argparse.Namespace) -> None:
    measurements = fig4_bfs_scaling(
        token_count=args.tokens,
        max_rings=args.max_rings,
        time_budget=args.budget,
        seed=args.seed,
        workers=args.workers,
    )
    print(f"{'i-th RS':>8} | {'time (s)':>10} | {'ring size':>9} | outcome")
    print("-" * 48)
    for m in measurements:
        print(f"{m.ring_index:>8} | {m.elapsed:>10.4f} | {m.ring_size:>9} | "
              f"{m.outcome}")


def _run_sweep(name: str, args: argparse.Namespace) -> None:
    sweep = _SWEEPS[name](instances_per_point=args.instances, seed=args.seed)
    print("Mean ring size:")
    print(format_table(sweep, "mean_size"))
    print("\nMean selection time (s):")
    print(format_table(sweep, "mean_time"))


def _run_sim(args: argparse.Namespace) -> None:
    from .sim import Economy, EconomyConfig

    economy = Economy(
        EconomyConfig(algorithm=args.algorithm, seed=args.seed)
    )
    print(f"{'tick':>5} | {'minted':>6} | {'spends ok':>9} | "
          f"{'relaxed':>7} | {'infeasible':>10} | {'mean size':>9}")
    print("-" * 64)
    for report in economy.run(args.ticks):
        print(
            f"{report.tick:>5} | {report.minted_tokens:>6} | "
            f"{report.successful_spends:>9} | {report.relaxed_spends:>7} | "
            f"{report.infeasible_spends:>10} | {report.mean_ring_size:>9.1f}"
        )
    metrics = economy.anonymity()
    if metrics is not None:
        print(f"\nfinal population: {metrics.ring_count} rings, "
              f"deanonymization rate {metrics.deanonymization_rate:.1%}, "
              f"mean effective ring size {metrics.mean_effective_size:.2f}")


def _run_select(args: argparse.Namespace) -> int:
    """Sequential ring generations through the degradation ladder.

    Same synthetic sequential-ring setup as ``fig4`` (the workload
    whose cost explosion motivates degradation), but each generation
    goes through :func:`repro.resilience.ladder.ladder_select` — or
    plain :func:`repro.core.bfs.bfs_select` under ``--exact-only``, in
    which case a budget trip escapes as exit code 75.
    """
    import random

    from .core.bfs import bfs_select
    from .core.problem import DamsInstance, InfeasibleError
    from .core.ring import Ring, TokenUniverse
    from .resilience.ladder import ladder_select
    from .resilience.supervisor import RetryPolicy

    rng = random.Random(args.seed)
    universe = TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(args.hts)}" for i in range(args.tokens)}
    )
    rings: list[Ring] = []
    consumed: set[str] = set()
    resume = args.resume
    degraded = 0

    print(f"{'ring':>4} | {'target':>6} | {'size':>4} | {'rung':>11} | claim")
    print("-" * 48)
    for ring_index in range(args.rings):
        candidates = sorted(universe.tokens - consumed)
        if not candidates:
            break
        target = candidates[rng.randrange(len(candidates))]
        instance = DamsInstance(
            universe, list(rings), target, c=args.c, ell=args.ell
        )
        try:
            if args.exact_only:
                solved = bfs_select(
                    instance,
                    time_budget=args.budget,
                    workers=args.workers,
                    supervision=RetryPolicy() if args.workers > 1 else None,
                    checkpoint_path=args.checkpoint,
                    resume_from=resume,
                )
                tokens, rung = solved.ring.tokens, "exact"
                claimed_c, claimed_ell = args.c, args.ell
            else:
                outcome = ladder_select(
                    instance,
                    time_budget=args.budget,
                    workers=args.workers,
                    supervision=RetryPolicy() if args.workers > 1 else None,
                    checkpoint_path=args.checkpoint,
                    resume_from=resume,
                    rng=rng,
                )
                tokens, rung = outcome.result.tokens, outcome.rung
                claimed_c, claimed_ell = outcome.claimed_c, outcome.claimed_ell
                if outcome.degraded:
                    degraded += 1
                    print(
                        f"notice: ring {ring_index + 1} degraded to rung "
                        f"{outcome.rung!r} (trigger: {outcome.trigger}); "
                        f"verified at ({outcome.claimed_c}, "
                        f"{outcome.claimed_ell})-diversity",
                        file=sys.stderr,
                    )
        except InfeasibleError:
            print(f"{ring_index + 1:>4} | {target:>6} | {'-':>4} | "
                  f"{'infeasible':>11} | -")
            break
        resume = None  # a checkpoint resumes only the first generation
        print(f"{ring_index + 1:>4} | {target:>6} | {len(tokens):>4} | "
              f"{rung:>11} | ({claimed_c}, {claimed_ell})")
        rings.append(
            Ring(rid=f"cli:{ring_index}", tokens=tokens, c=claimed_c,
                 ell=claimed_ell, seq=len(rings))
        )
        consumed.add(target)

    if degraded:
        print(f"\n{degraded} of {len(rings)} ring(s) degraded; all emitted "
              f"rings re-verified against their claimed requirement.",
              file=sys.stderr)
    return 0


def _synthetic_universe(tokens: int, hts: int, seed: int):
    """The fig4-style synthetic universe shared by select/serve."""
    import random

    from .core.ring import TokenUniverse

    rng = random.Random(seed)
    return TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(hts)}" for i in range(tokens)}
    )


def _run_serve(args: argparse.Namespace) -> int:
    """Run the selection daemon over a synthetic snapshot.

    Requests arrive as JSONL — on stdin by default, or over a unix
    socket with ``--socket`` — and each is answered with one JSONL
    response line (see ``docs/operations.md`` for the op vocabulary).

    With ``--journal DIR`` every commit is write-ahead logged before
    it applies, and startup replays snapshot + WAL tail back into a
    byte-identical twin of the pre-crash daemon (the ``recovered``
    block of stats/health/metrics reports how the replay went).  A
    pidfile guards the journal dir (or, unjournaled, the socket path)
    so two daemons can never interleave appends into one journal.
    """
    from .resilience.faults import FaultPlan
    from .service import (
        AlreadyRunning,
        Journal,
        PidFile,
        RouterConfig,
        SelectionService,
        ServiceConfig,
        ShardRouter,
        serve_socket,
        serve_stdio,
    )

    fault_doc = None
    if args.fault_plan is not None:
        # Applied per request (fresh plan instance each time) rather
        # than installed process-globally like the one-shot commands.
        # Under --shards the document instead installs in every shard
        # worker (that is how chaos reaches the shard.batch site).
        fault_doc = FaultPlan.load(args.fault_plan).to_dict()

    guard = None
    if args.journal is not None:
        guard = PidFile.for_journal(args.journal)
    elif args.socket is not None:
        guard = PidFile.for_socket(args.socket)
    if guard is not None:
        try:
            guard.acquire()
        except AlreadyRunning as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ALREADY_RUNNING

    journal = None
    recovered = None
    try:
        rings0: tuple = ()
        epoch0 = 0
        batches = args.batches
        if args.journal is not None:
            journal = Journal(
                args.journal,
                sync_every=args.journal_sync,
                snapshot_every=args.snapshot_every,
            )
            recovered = journal.recover()
        if recovered is not None:
            universe = recovered.universe
            rings0 = recovered.rings
            epoch0 = recovered.epoch
            if batches is None:
                batches = recovered.batches
            rec = recovered.recovery
            notice = (
                f"recovered epoch {epoch0} ({len(rings0)} ring(s)) from "
                f"{args.journal}: snapshot epoch {rec['snapshot_epoch']}, "
                f"{rec['frames_replayed']} frame(s) replayed"
            )
            if rec["torn_tail"]:
                notice += (
                    f"; torn tail truncated ({rec['truncated_bytes']} "
                    f"byte(s): {rec['damage']})"
                )
            print(notice, file=sys.stderr)
        else:
            universe = _synthetic_universe(args.tokens, args.hts, args.seed)
            if journal is not None:
                effective_batches = batches
                if args.shards >= 2 and effective_batches is None:
                    effective_batches = args.shards
                journal.append_genesis(universe, (), effective_batches)
        recovery_block = None if recovered is None else recovered.recovery
        if args.shards >= 2:
            service_factory = lambda: ShardRouter(  # noqa: E731
                universe,
                rings0,
                config=RouterConfig(
                    shards=args.shards,
                    batches=batches,
                    max_queue=args.max_queue,
                    max_batch=args.max_batch,
                    linger_s=args.batch_wait,
                    default_budget=args.budget,
                    workers=args.workers,
                    fault_plan=fault_doc,
                    telemetry=not args.no_telemetry,
                    journal=journal,
                    epoch_mode=args.epoch_mode,
                ),
                epoch=epoch0,
                recovered=recovery_block,
            )
        else:
            config = ServiceConfig(
                max_queue=args.max_queue,
                max_batch=args.max_batch,
                linger_s=args.batch_wait,
                default_budget=args.budget,
                workers=args.workers,
                fault_plan=fault_doc,
                telemetry=not args.no_telemetry,
                partition=batches,
                journal=journal,
                epoch_mode=args.epoch_mode,
            )
            service_factory = lambda: SelectionService(  # noqa: E731
                universe, rings0, config=config,
                epoch=epoch0, recovered=recovery_block,
            )
        with service_factory() as service:
            if args.socket is not None:
                print(f"listening on {args.socket}", file=sys.stderr)
                served = serve_socket(service, args.socket)
                print(f"served {served} connection(s)", file=sys.stderr)
            else:
                served = serve_stdio(service, sys.stdin, sys.stdout)
                print(f"served {served} request line(s)", file=sys.stderr)
            stats = service.stats()
            summary = service.drain_summary()
        print(
            f"final epoch {stats['epoch']}, {stats['rings']} ring(s), "
            f"{stats['refused']} refused of {stats['offered']} offered",
            file=sys.stderr,
        )
        if summary is not None:
            print(summary, file=sys.stderr)
    finally:
        if journal is not None:
            journal.close()
        if guard is not None:
            guard.release()
    return 0


def _run_client(args: argparse.Namespace) -> int:
    """Submit requests to a running ``serve --socket`` daemon."""
    import json

    from .service import RetrySpec, ServiceClient

    retry = (
        None
        if args.retry_deadline is None
        else RetrySpec(deadline_s=args.retry_deadline, seed=args.seed)
    )
    with ServiceClient(args.socket, timeout=args.timeout, retry=retry) as client:
        if args.stats or args.watch is not None:
            import time

            from .service.telemetry import format_stats

            polls = 0
            try:
                while True:
                    if polls:
                        print()
                    print(format_stats(client.stats()))
                    polls += 1
                    if args.iterations is not None and polls >= args.iterations:
                        break
                    if args.watch is None:
                        break
                    time.sleep(args.watch)
            except KeyboardInterrupt:
                pass
            return 0
        if args.requests is not None:
            from .service.protocol import decode

            with open(args.requests, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    print(json.dumps(
                        client.request(decode(line)), sort_keys=True
                    ))
            return 0
        if args.target is None:
            print("error: provide --target or --requests", file=sys.stderr)
            return 2
        response = client.select(
            target=args.target,
            c=args.c,
            ell=args.ell,
            mode=args.mode,
            epoch=args.epoch,
            time_budget=args.budget,
            seed=args.seed,
        )
        print(json.dumps(response.to_dict(), sort_keys=True))
        if response.ok and args.commit:
            print(json.dumps(
                client.commit(response.tokens, c=args.c, ell=args.ell),
                sort_keys=True,
            ))
        if not response.ok:
            return (
                EXIT_BUDGET_EXCEEDED
                if response.code == "budget_exceeded"
                else EXIT_CONSTRAINT_VIOLATION
                if response.code == "constraint_violation"
                else 1
            )
    return 0


def _run_top(args: argparse.Namespace) -> int:
    """Live terminal view of a running daemon (stats + health polls)."""
    import time

    from .service import ServiceClient
    from .service.telemetry import format_top

    with ServiceClient(args.socket, timeout=args.timeout) as client:
        polls = 0
        try:
            while True:
                if polls:
                    print()
                print(format_top(client.stats(), client.health()))
                polls += 1
                if args.iterations is not None and polls >= args.iterations:
                    break
                time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures or run the economy sim.",
    )
    # Observability flags shared by every subcommand (repro.obs).
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument("--metrics", action="store_true",
                     help="record solver metrics and print a summary")
    obs.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write hierarchical trace spans as JSONL to PATH")
    obs.add_argument("--fault-plan", metavar="PATH", default=None,
                     help="install a repro.resilience.faults FaultPlan "
                          "from this JSON file (chaos testing)")
    sub = parser.add_subparsers(dest="command", required=True)

    fig3 = sub.add_parser("fig3", parents=[obs],
                          help="output-count distribution (real)")
    fig3.add_argument("--seed", type=int, default=0)

    fig4 = sub.add_parser("fig4", parents=[obs],
                          help="BFS per-ring time explosion")
    fig4.add_argument("--seed", type=int, default=0)
    fig4.add_argument("--budget", type=float, default=15.0,
                      help="per-ring wall-clock budget in seconds")
    fig4.add_argument("--tokens", type=int, default=20,
                      help="batch universe size (paper: 20)")
    fig4.add_argument("--max-rings", type=int, default=6,
                      help="how many sequential rings to generate")
    fig4.add_argument("--workers", type=int, default=0,
                      help="processes for the candidate scan "
                           "(<=1 serial; results identical)")

    for name, help_text in [
        ("fig5", "vary c (real)"),
        ("fig6", "vary l (real)"),
        ("fig7", "vary sigma (synthetic)"),
        ("fig8", "vary |S| (synthetic)"),
        ("fig9", "vary |s_i| (synthetic)"),
        ("fig10", "vary |F| (synthetic)"),
    ]:
        sweep = sub.add_parser(name, parents=[obs], help=help_text)
        sweep.add_argument("--instances", type=int, default=25,
                           help="instances per sweep point (paper: 1000)")
        sweep.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser("sim", parents=[obs],
                         help="longitudinal economy simulation")
    sim.add_argument("--ticks", type=int, default=10)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--algorithm", default="progressive",
                     choices=["progressive", "game", "smallest", "random"])

    select = sub.add_parser(
        "select", parents=[obs],
        help="sequential ring generation through the resilience ladder",
    )
    select.add_argument("--tokens", type=int, default=20,
                        help="batch universe size (paper fig4: 20)")
    select.add_argument("--hts", type=int, default=10,
                        help="distinct holder types in the universe")
    select.add_argument("--c", type=float, default=5.0)
    select.add_argument("--ell", type=int, default=3)
    select.add_argument("--seed", type=int, default=0)
    select.add_argument("--rings", type=int, default=4,
                        help="how many sequential rings to generate")
    select.add_argument("--budget", type=float, default=None,
                        help="per-ring wall-clock budget in seconds")
    select.add_argument("--workers", type=int, default=0,
                        help="processes for the exact scan (supervised "
                             "when > 1)")
    select.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="write stratum-boundary BFS checkpoints here")
    select.add_argument("--resume", metavar="PATH", default=None,
                        help="resume the first generation from this "
                             "checkpoint")
    select.add_argument("--exact-only", action="store_true",
                        help="no degradation ladder: a budget trip exits "
                             f"{EXIT_BUDGET_EXCEEDED}")

    serve = sub.add_parser(
        "serve", parents=[obs],
        help="long-running selection daemon (JSONL over stdio or socket)",
    )
    serve.add_argument("--tokens", type=int, default=20,
                       help="batch universe size of the initial snapshot")
    serve.add_argument("--hts", type=int, default=10,
                       help="distinct holder types in the universe")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--socket", metavar="PATH", default=None,
                       help="listen on this unix socket (default: stdio)")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="admission bound; beyond it requests are "
                            "rejected with queue_full")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="largest micro-batch executed at once")
    serve.add_argument("--batch-wait", type=float, default=0.0,
                       help="seconds to linger for batch-mates once a "
                            "request is waiting")
    serve.add_argument("--budget", type=float, default=None,
                       help="default per-request exact-search budget (s)")
    serve.add_argument("--workers", type=int, default=0,
                       help="process fan-out per request's candidate scan")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable the request-lifecycle telemetry "
                            "(stats stays the flat counter payload; "
                            "metrics/health degrade gracefully)")
    serve.add_argument("--shards", type=int, default=1,
                       help="shard worker processes; >= 2 routes requests "
                            "by their target's TokenMagic batch over a "
                            "process fleet (see docs/operations.md)")
    serve.add_argument("--batches", type=int, default=None,
                       help="TokenMagic batches to partition the universe "
                            "into (default: unpartitioned single daemon, "
                            "or one batch per shard under --shards)")
    serve.add_argument("--journal", metavar="DIR", default=None,
                       help="write-ahead journal directory: commits are "
                            "logged before they apply, and startup replays "
                            "snapshot + WAL back into the pre-crash state")
    serve.add_argument("--journal-sync", type=int, default=1,
                       metavar="N",
                       help="fsync the WAL every N appends (1 = every "
                            "commit durable before ack; 0 = OS-buffered, "
                            "crash-unsafe, bench only)")
    serve.add_argument("--snapshot-every", type=int, default=64,
                       metavar="N",
                       help="write a compacted snapshot and truncate the "
                            "WAL every N commits (0 = never compact)")
    serve.add_argument("--epoch-mode", choices=("replace", "delta"),
                       default="replace",
                       help="what a commit does to the warm caches: "
                            "'replace' rebuilds the snapshot cold (the "
                            "historical default), 'delta' advances it in "
                            "place — only state the new ring touches is "
                            "invalidated; responses are byte-identical "
                            "either way")

    client = sub.add_parser(
        "client",
        help="submit requests to a running `serve --socket` daemon",
    )
    client.add_argument("--socket", metavar="PATH", required=True)
    client.add_argument("--requests", metavar="PATH", default=None,
                        help="JSONL file of raw ops to replay")
    client.add_argument("--target", default=None,
                        help="token to consume (single-request mode)")
    client.add_argument("--c", type=float, default=2.0)
    client.add_argument("--ell", type=int, default=2)
    client.add_argument("--mode", default="ladder",
                        choices=["exact", "ladder"])
    client.add_argument("--epoch", type=int, default=None,
                        help="pin the request to this snapshot epoch")
    client.add_argument("--budget", type=float, default=None)
    client.add_argument("--seed", type=int, default=0)
    client.add_argument("--commit", action="store_true",
                        help="commit the selected ring (advances the epoch)")
    client.add_argument("--timeout", type=float, default=60.0)
    client.add_argument("--retry-deadline", type=float, metavar="SECONDS",
                        default=None,
                        help="reconnect + resend idempotently for up to "
                             "SECONDS when the daemon is unreachable or "
                             "dies mid-request (exponential backoff with "
                             "seeded jitter; default: fail fast)")
    client.add_argument("--stats", action="store_true",
                        help="pretty-print the enriched stats payload "
                             "instead of submitting a request")
    client.add_argument("--watch", type=float, metavar="SECONDS",
                        default=None,
                        help="re-poll stats every SECONDS (implies --stats)")
    client.add_argument("--iterations", type=int, default=None,
                        help="stop a --watch loop after N polls "
                             "(default: poll until interrupted)")

    top = sub.add_parser(
        "top",
        help="live stats/health view of a running `serve --socket` daemon",
    )
    top.add_argument("--socket", metavar="PATH", required=True)
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after N polls (default: until interrupted)")
    top.add_argument("--timeout", type=float, default=60.0)

    return parser


def _dispatch(args: argparse.Namespace) -> int | None:
    if args.command == "fig3":
        _run_fig3(args)
    elif args.command == "fig4":
        _run_fig4(args)
    elif args.command == "sim":
        _run_sim(args)
    elif args.command == "select":
        return _run_select(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "client":
        return _run_client(args)
    elif args.command == "top":
        return _run_top(args)
    else:
        _run_sweep(args.command, args)
    return None


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    want_metrics = getattr(args, "metrics", False)
    trace_out = getattr(args, "trace_out", None)
    fault_plan_path = getattr(args, "fault_plan", None)
    if args.command == "serve":
        # `serve` scopes the plan per request (fresh instance each
        # time) instead of installing one process-global plan.
        fault_plan_path = None

    from .core.bfs import SearchBudgetExceeded
    from .resilience import faults
    from .resilience.checkpoint import CheckpointError
    from .resilience.ladder import ConstraintViolation

    tracer = obs_trace.Tracer() if trace_out is not None else None
    recorder = obs_metrics.MemoryRecorder() if want_metrics else None
    try:
        with contextlib.ExitStack() as stack:
            if fault_plan_path is not None:
                stack.enter_context(
                    faults.injecting(faults.FaultPlan.load(fault_plan_path))
                )
            if tracer is not None:
                stack.enter_context(obs_trace.tracing(tracer))
            if recorder is not None:
                stack.enter_context(obs_metrics.recording(recorder))
            code = _dispatch(args)
    except SearchBudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        if getattr(exc, "checkpoint_path", None) is not None:
            print(f"checkpoint written to {exc.checkpoint_path}; resume "
                  f"with --resume", file=sys.stderr)
        return EXIT_BUDGET_EXCEEDED
    except ConstraintViolation as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONSTRAINT_VIOLATION
    except CheckpointError as exc:
        # Corrupted or mismatched resume data: same sysexits family as
        # the fail-closed path (EX_DATAERR).
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONSTRAINT_VIOLATION
    finally:
        # Flush whatever was observed even if the command raised.
        if recorder is not None:
            print()
            print(obs_metrics.format_summary(recorder.snapshot()))
        if tracer is not None:
            count = tracer.export_jsonl(trace_out)
            print(f"wrote {count} spans to {trace_out}")
    return 0 if code is None else code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
