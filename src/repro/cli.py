"""Command-line interface: regenerate any figure from a terminal.

Usage::

    python -m repro.cli fig3
    python -m repro.cli fig5 --instances 100 --seed 3
    python -m repro.cli fig4 --budget 30
    python -m repro.cli sim --ticks 20

Each figure command prints the same table its benchmark writes; the
``sim`` command runs the longitudinal economy simulation.

Every command also accepts the observability flags ``--metrics`` (print
a counter/histogram summary after the run) and ``--trace-out PATH``
(dump the hierarchical span tree as JSONL); see ``repro.obs``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .experiments.figures import (
    fig3_output_distribution,
    fig4_bfs_scaling,
    fig5_vary_c,
    fig6_vary_ell,
    fig7_vary_sigma,
    fig8_vary_super_count,
    fig9_vary_super_size,
    fig10_vary_fresh,
)
from .experiments.harness import format_table
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace

__all__ = ["main"]

_SWEEPS: dict[str, Callable] = {
    "fig5": fig5_vary_c,
    "fig6": fig6_vary_ell,
    "fig7": fig7_vary_sigma,
    "fig8": fig8_vary_super_count,
    "fig9": fig9_vary_super_size,
    "fig10": fig10_vary_fresh,
}


def _run_fig3(args: argparse.Namespace) -> None:
    distribution = fig3_output_distribution(seed=args.seed)
    print(f"{'outputs/tx':>10} | {'transactions':>12}")
    print("-" * 26)
    for outputs in sorted(distribution):
        print(f"{outputs:>10} | {distribution[outputs]:>12}")
    print(f"\ntotal: {sum(distribution.values())} transactions, "
          f"{sum(k * v for k, v in distribution.items())} tokens")


def _run_fig4(args: argparse.Namespace) -> None:
    measurements = fig4_bfs_scaling(
        token_count=args.tokens,
        max_rings=args.max_rings,
        time_budget=args.budget,
        seed=args.seed,
        workers=args.workers,
    )
    print(f"{'i-th RS':>8} | {'time (s)':>10} | {'ring size':>9} | outcome")
    print("-" * 48)
    for m in measurements:
        print(f"{m.ring_index:>8} | {m.elapsed:>10.4f} | {m.ring_size:>9} | "
              f"{m.outcome}")


def _run_sweep(name: str, args: argparse.Namespace) -> None:
    sweep = _SWEEPS[name](instances_per_point=args.instances, seed=args.seed)
    print("Mean ring size:")
    print(format_table(sweep, "mean_size"))
    print("\nMean selection time (s):")
    print(format_table(sweep, "mean_time"))


def _run_sim(args: argparse.Namespace) -> None:
    from .sim import Economy, EconomyConfig

    economy = Economy(
        EconomyConfig(algorithm=args.algorithm, seed=args.seed)
    )
    print(f"{'tick':>5} | {'minted':>6} | {'spends ok':>9} | "
          f"{'relaxed':>7} | {'infeasible':>10} | {'mean size':>9}")
    print("-" * 64)
    for report in economy.run(args.ticks):
        print(
            f"{report.tick:>5} | {report.minted_tokens:>6} | "
            f"{report.successful_spends:>9} | {report.relaxed_spends:>7} | "
            f"{report.infeasible_spends:>10} | {report.mean_ring_size:>9.1f}"
        )
    metrics = economy.anonymity()
    if metrics is not None:
        print(f"\nfinal population: {metrics.ring_count} rings, "
              f"deanonymization rate {metrics.deanonymization_rate:.1%}, "
              f"mean effective ring size {metrics.mean_effective_size:.2f}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures or run the economy sim.",
    )
    # Observability flags shared by every subcommand (repro.obs).
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument("--metrics", action="store_true",
                     help="record solver metrics and print a summary")
    obs.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write hierarchical trace spans as JSONL to PATH")
    sub = parser.add_subparsers(dest="command", required=True)

    fig3 = sub.add_parser("fig3", parents=[obs],
                          help="output-count distribution (real)")
    fig3.add_argument("--seed", type=int, default=0)

    fig4 = sub.add_parser("fig4", parents=[obs],
                          help="BFS per-ring time explosion")
    fig4.add_argument("--seed", type=int, default=0)
    fig4.add_argument("--budget", type=float, default=15.0,
                      help="per-ring wall-clock budget in seconds")
    fig4.add_argument("--tokens", type=int, default=20,
                      help="batch universe size (paper: 20)")
    fig4.add_argument("--max-rings", type=int, default=6,
                      help="how many sequential rings to generate")
    fig4.add_argument("--workers", type=int, default=0,
                      help="processes for the candidate scan "
                           "(<=1 serial; results identical)")

    for name, help_text in [
        ("fig5", "vary c (real)"),
        ("fig6", "vary l (real)"),
        ("fig7", "vary sigma (synthetic)"),
        ("fig8", "vary |S| (synthetic)"),
        ("fig9", "vary |s_i| (synthetic)"),
        ("fig10", "vary |F| (synthetic)"),
    ]:
        sweep = sub.add_parser(name, parents=[obs], help=help_text)
        sweep.add_argument("--instances", type=int, default=25,
                           help="instances per sweep point (paper: 1000)")
        sweep.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser("sim", parents=[obs],
                         help="longitudinal economy simulation")
    sim.add_argument("--ticks", type=int, default=10)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--algorithm", default="progressive",
                     choices=["progressive", "game", "smallest", "random"])

    return parser


def _dispatch(args: argparse.Namespace) -> None:
    if args.command == "fig3":
        _run_fig3(args)
    elif args.command == "fig4":
        _run_fig4(args)
    elif args.command == "sim":
        _run_sim(args)
    else:
        _run_sweep(args.command, args)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    want_metrics = getattr(args, "metrics", False)
    trace_out = getattr(args, "trace_out", None)

    if not want_metrics and trace_out is None:
        _dispatch(args)
        return 0

    tracer = obs_trace.Tracer() if trace_out is not None else None
    recorder = obs_metrics.MemoryRecorder() if want_metrics else None
    try:
        if tracer is not None and recorder is not None:
            with obs_trace.tracing(tracer), obs_metrics.recording(recorder):
                _dispatch(args)
        elif tracer is not None:
            with obs_trace.tracing(tracer):
                _dispatch(args)
        else:
            assert recorder is not None
            with obs_metrics.recording(recorder):
                _dispatch(args)
    finally:
        # Flush whatever was observed even if the command raised.
        if recorder is not None:
            print()
            print(obs_metrics.format_summary(recorder.snapshot()))
        if tracer is not None:
            count = tracer.export_jsonl(trace_out)
            print(f"wrote {count} spans to {trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
