"""Stratum-boundary checkpoints for the exact BFS search.

The BFS scans candidate mixin sets size stratum by size stratum; a
budget trip in stratum *k* wastes every stratum before it unless the
search can resume.  :func:`repro.core.bfs.bfs_select` therefore writes
a :class:`BfsCheckpoint` after each exhausted stratum when given a
``checkpoint_path``, and ``bfs_select(resume_from=...)`` picks the
search back up at the recorded stratum — reproducing the uninterrupted
result exactly (same ring, same mixins, same ``candidates_checked``),
because strata are enumerated deterministically and the checkpoint
carries the cumulative candidate count.

The file format is one JSON document::

    {
      "version": 1,
      "fingerprint": "<sha256 of the instance>",
      "next_size": 4,
      "candidates_checked": 1351,
      "elapsed": 0.82,
      "cache_keys": [[0], [0, 1]],
      "checksum": "<sha256 of the body>"
    }

``fingerprint`` binds the checkpoint to one exact DA-MS instance
(universe labels, ring history, target, requirement), so resuming
against a different instance is rejected; ``checksum`` detects file
corruption; ``cache_keys`` lists the component-set world fingerprints
the interrupted run had built, so the resumed run pre-warms its
:class:`~repro.core.perf.cache.SolverCache` with the same entries.
Every failure mode raises the typed :class:`CheckpointError` — never a
bare ``KeyError``/``JSONDecodeError`` from halfway through a parse.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "BfsCheckpoint",
    "instance_fingerprint",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is corrupted, mismatched or unreadable."""


@dataclass(frozen=True, slots=True)
class BfsCheckpoint:
    """Progress of one BFS search at a stratum boundary.

    Attributes:
        fingerprint: :func:`instance_fingerprint` of the instance the
            search ran on.
        next_size: the first stratum not yet fully scanned.
        candidates_checked: cumulative candidates checked through every
            completed stratum.
        elapsed: wall-clock seconds spent before the checkpoint (kept
            for reporting; not folded into the resumed result).
        cache_keys: sorted component-set fingerprints whose base worlds
            had been built (pre-warmed on resume).
    """

    fingerprint: str
    next_size: int
    candidates_checked: int
    elapsed: float
    cache_keys: tuple[tuple[int, ...], ...] = ()

    def body(self) -> dict:
        """The JSON body (everything but the checksum)."""
        return {
            "version": CHECKPOINT_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "next_size": self.next_size,
            "candidates_checked": self.candidates_checked,
            "elapsed": self.elapsed,
            "cache_keys": [list(key) for key in self.cache_keys],
        }


def _checksum(body: dict) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def instance_fingerprint(instance) -> str:
    """SHA-256 binding a checkpoint to one exact DA-MS instance.

    Covers the universe's token → HT labels, the full ring history
    (rid, tokens, claim, seq), the target token and the requirement —
    anything that changes the candidate enumeration or the constraint
    checks changes the fingerprint.
    """
    universe = instance.universe
    document = {
        "target": instance.target_token,
        "c": instance.c,
        "ell": instance.ell,
        "tokens": {token: universe.ht_of(token) for token in sorted(universe)},
        "rings": [
            {
                "rid": ring.rid,
                "tokens": sorted(ring.tokens),
                "c": ring.c,
                "ell": ring.ell,
                "seq": ring.seq,
            }
            for ring in instance.rings
        ],
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def save_checkpoint(path: str | os.PathLike, checkpoint: BfsCheckpoint) -> Path:
    """Write ``checkpoint`` atomically (write + rename) to ``path``."""
    path = Path(path)
    body = checkpoint.body()
    body["checksum"] = _checksum(checkpoint.body())
    scratch = path.with_suffix(path.suffix + ".tmp")
    scratch.write_text(json.dumps(body, indent=1, sort_keys=True) + "\n")
    scratch.replace(path)
    return path


def load_checkpoint(path: str | os.PathLike) -> BfsCheckpoint:
    """Read and validate a checkpoint document.

    Raises:
        CheckpointError: unreadable file, bad JSON, version mismatch,
            checksum mismatch, or malformed fields.
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint {path} is not valid JSON") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path} is not a JSON object")
    if payload.get("version") != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version: {payload.get('version')!r}"
        )
    claimed = payload.pop("checksum", None)
    if claimed != _checksum(payload):
        raise CheckpointError(f"checkpoint {path} failed its integrity check")
    try:
        return BfsCheckpoint(
            fingerprint=str(payload["fingerprint"]),
            next_size=int(payload["next_size"]),
            candidates_checked=int(payload["candidates_checked"]),
            elapsed=float(payload["elapsed"]),
            cache_keys=tuple(
                tuple(int(cid) for cid in key) for key in payload["cache_keys"]
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"checkpoint {path} has malformed fields") from exc
