"""Fault tolerance for the exact pipeline (DESIGN.md §10).

Four cooperating pieces, all defaulting to off:

* :mod:`repro.resilience.faults` — a deterministic, serializable
  :class:`FaultPlan` that injects failures (worker death, hung checks,
  cache corruption, clock skew, chain-load I/O errors) at named sites
  via the same hook-slot pattern :mod:`repro.obs.metrics` uses, so the
  production cost when disabled is one load + compare per site.
* :mod:`repro.resilience.supervisor` — retry/backoff supervision of the
  BFS candidate fan-out: a dead or hung worker's chunk is requeued
  (bounded retries, deterministic re-chunking, exponential backoff with
  an injectable clock) and merged results stay byte-identical to serial
  under any single-worker failure.
* :mod:`repro.resilience.ladder` — the degradation ladder: on
  :class:`~repro.core.bfs.SearchBudgetExceeded` or unrecoverable worker
  loss, step exact BFS down to the Progressive solver, then requirement
  relaxation, then a diversity-checked baseline — re-verifying the
  Definition 5 constraints at every rung and failing closed (raising)
  rather than emitting an unverified ring.
* :mod:`repro.resilience.checkpoint` — stratum-boundary checkpoints of
  the BFS search so a budget trip resumes where it left off instead of
  restarting, reproducing the uninterrupted result exactly.

Submodules are loaded lazily (PEP 562) so solver modules can import
``repro.resilience.faults`` from deep inside :mod:`repro.core` without
creating import cycles through the ladder (which imports the solver).
"""

from importlib import import_module

__all__ = [
    "faults",
    "checkpoint",
    "ladder",
    "supervisor",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedIOError",
    "BfsCheckpoint",
    "CheckpointError",
    "RetryPolicy",
    "WorkerLost",
    "DegradedResult",
    "ConstraintViolation",
    "ladder_select",
    "verify_ring",
]

_SUBMODULES = ("faults", "checkpoint", "ladder", "supervisor")

_EXPORTS = {
    "FaultPlan": "faults",
    "FaultSpec": "faults",
    "InjectedFault": "faults",
    "InjectedIOError": "faults",
    "BfsCheckpoint": "checkpoint",
    "CheckpointError": "checkpoint",
    "RetryPolicy": "supervisor",
    "WorkerLost": "supervisor",
    "DegradedResult": "ladder",
    "ConstraintViolation": "ladder",
    "ladder_select": "ladder",
    "verify_ring": "ladder",
}


def __getattr__(name: str):
    if name in _SUBMODULES:
        return import_module(f".{name}", __name__)
    owner = _EXPORTS.get(name)
    if owner is not None:
        return getattr(import_module(f".{owner}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
