"""Deterministic fault injection behind a hook slot.

A :class:`FaultPlan` is a seeded, serializable list of
:class:`FaultSpec` entries, each naming an injection *site* and an
*action*.  Call sites in the pipeline ask the active plan whether to
misbehave::

    plan = faults.active()
    if plan is not None:
        plan.check("bfs.candidate")

Like :mod:`repro.obs.metrics`, the plan lives in one module-global
slot, so the production cost with injection disabled is a single global
load plus a ``None`` comparison per site.  Forked pool workers inherit
the controller's plan (each with its own copy of the per-process hit
counters), which is exactly what lets a plan kill a worker process.

Sites wired into the pipeline (the closed vocabulary of
:data:`KNOWN_SITES`):

============================ ==============================================
``bfs.candidate``            start of every per-candidate feasibility check
``parallel.worker_chunk``    start of every worker chunk scan (``index`` is
                             the global chunk index, ``attempt`` the retry)
``cache.worlds``             every base-world cache lookup
``chain.load``               every dataset load from disk
``chain.clock``              every block-timestamp read (cooperative skew)
``shard.batch``              start of every shard-worker batch dispatch
                             (``index`` is the router's global dispatch
                             sequence, ``attempt`` the retry)
``journal.append``           every write-ahead frame append (``index`` is
                             the frame's commit epoch)
``journal.fsync``            every journal fsync batch flush
``journal.replay``           every frame replayed during recovery
                             (``index`` is the frame's epoch)
``client.reconnect``         every client reconnect attempt (``attempt``
                             is the retry number)
============================ ==============================================

Actions:

* ``die`` — ``os._exit`` the current process (worker-death chaos);
* ``hang`` / ``delay`` — sleep ``payload`` seconds (hung/slow checks);
* ``error`` — raise :class:`InjectedFault`;
* ``io_error`` — raise :class:`InjectedIOError` (an ``OSError``);
* ``corrupt`` — cooperative: the call site receives the spec back and
  corrupts (discards) its own state, e.g. a cache entry;
* ``skew`` — cooperative: the call site adds ``payload`` seconds to a
  clock reading.

Firing is deterministic: a spec fires on an explicit hit number
(``at_hit``, 1-based per-process counter), on an explicit call-site
index (``at_index`` + ``on_attempt``), with a seeded per-site
probability, or on every visit when no trigger is given — always capped
by ``max_fires`` per process.
"""

from __future__ import annotations

import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..obs import events

__all__ = [
    "KNOWN_ACTIONS",
    "KNOWN_SITES",
    "FAULT_PLAN_FORMAT_VERSION",
    "InjectedFault",
    "InjectedIOError",
    "FaultSpec",
    "FaultPlan",
    "active",
    "set_plan",
    "injecting",
]

FAULT_PLAN_FORMAT_VERSION = 1

KNOWN_ACTIONS = ("die", "hang", "delay", "error", "io_error", "corrupt", "skew")

#: The sites the pipeline actually checks (documentation + validation).
KNOWN_SITES = (
    "bfs.candidate",
    "parallel.worker_chunk",
    "cache.worlds",
    "chain.load",
    "chain.clock",
    "shard.batch",
    "journal.append",
    "journal.fsync",
    "journal.replay",
    "client.reconnect",
)


class InjectedFault(RuntimeError):
    """A failure raised on purpose by an active :class:`FaultPlan`."""

    def __init__(self, site: str, action: str) -> None:
        super().__init__(f"injected {action!r} fault at site {site!r}")
        self.site = site
        self.action = action


class InjectedIOError(InjectedFault, OSError):
    """An injected I/O failure (``io_error`` action) — also an OSError."""


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One fault to inject.

    Attributes:
        site: injection site name (see :data:`KNOWN_SITES`).
        action: what to do when firing (see :data:`KNOWN_ACTIONS`).
        at_hit: fire on the Nth visit of the site (1-based, counted per
            process); ``None`` disables this trigger.
        at_index: fire when the call site passes this explicit index
            (e.g. the global chunk index) — retry-aware together with
            ``on_attempt``.
        on_attempt: with ``at_index``, fire only on this attempt number
            (0 = first try), so a requeued chunk survives its retry.
        probability: fire with this probability per visit, drawn from a
            per-site stream seeded by the plan seed (deterministic).
        payload: seconds for ``hang``/``delay``/``skew``.
        max_fires: cap on fires per process (``None`` = unlimited).

    When ``at_hit``, ``at_index`` and ``probability`` are all unset the
    spec fires on every visit of its site.
    """

    site: str
    action: str
    at_hit: int | None = None
    at_index: int | None = None
    on_attempt: int = 0
    probability: float = 0.0
    payload: float = 0.0
    max_fires: int | None = 1

    def __post_init__(self) -> None:
        if self.action not in KNOWN_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; known: "
                f"{', '.join(KNOWN_ACTIONS)}"
            )
        if not self.site:
            raise ValueError("fault site must be a non-empty string")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.payload < 0:
            raise ValueError("payload must be >= 0 seconds")


class FaultPlan:
    """A seeded, serializable set of faults plus per-process counters.

    The plan object is mutable state (hit counters, fire counts, RNG
    streams); the spec list and seed are what serializes.  Two plans
    deserialized from the same document behave identically given the
    same sequence of ``check`` calls.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._hits: dict[str, int] = {}
        self._fires: dict[int, int] = {}
        self._rngs: dict[str, random.Random] = {}

    # -- the injection decision ---------------------------------------------

    def check(
        self, site: str, index: int | None = None, attempt: int = 0
    ) -> FaultSpec | None:
        """Visit ``site``; fire the first matching spec, if any.

        Side-effecting actions (``die``, ``hang``, ``delay``, ``error``,
        ``io_error``) are executed here; cooperative actions
        (``corrupt``, ``skew``) only return the spec so the call site
        can interpret the payload.  Returns ``None`` when nothing fired.
        """
        self._hits[site] = hit = self._hits.get(site, 0) + 1
        for spec_index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            fires = self._fires.get(spec_index, 0)
            if spec.max_fires is not None and fires >= spec.max_fires:
                continue
            if spec.at_index is not None:
                if index != spec.at_index or attempt != spec.on_attempt:
                    continue
            elif spec.at_hit is not None:
                if hit != spec.at_hit:
                    continue
            elif spec.probability > 0.0:
                if self._stream(site).random() >= spec.probability:
                    continue
            self._fires[spec_index] = fires + 1
            return self._execute(spec)
        return None

    def skew(self, site: str) -> float:
        """Clock-skew convenience: seconds to add to a clock reading."""
        spec = self.check(site)
        if spec is not None and spec.action == "skew":
            return spec.payload
        return 0.0

    def _stream(self, site: str) -> random.Random:
        stream = self._rngs.get(site)
        if stream is None:
            # str seeding hashes via sha512 — stable across processes,
            # unlike tuple seeds which go through randomized hash().
            stream = self._rngs[site] = random.Random(f"{self.seed}:{site}")
        return stream

    def _execute(self, spec: FaultSpec) -> FaultSpec | None:
        if events.enabled():
            events.emit(events.FaultInjected(site=spec.site, action=spec.action))
        if spec.action == "die":
            os._exit(17)
        if spec.action in ("hang", "delay"):
            time.sleep(spec.payload)
            return spec
        if spec.action == "io_error":
            raise InjectedIOError(spec.site, spec.action)
        if spec.action == "error":
            raise InjectedFault(spec.site, spec.action)
        return spec  # cooperative: "corrupt" / "skew"

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": FAULT_PLAN_FORMAT_VERSION,
            "seed": self.seed,
            "faults": [asdict(spec) for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        version = payload.get("version")
        if version != FAULT_PLAN_FORMAT_VERSION:
            raise ValueError(f"unsupported fault-plan version: {version!r}")
        raw_specs = payload.get("faults", [])
        if not isinstance(raw_specs, list):
            raise ValueError("fault plan 'faults' must be a list")
        specs = []
        for entry in raw_specs:
            try:
                specs.append(FaultSpec(**entry))
            except TypeError as exc:
                raise ValueError(f"malformed fault spec {entry!r}") from exc
        return cls(specs, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path


# -- the active-plan slot ----------------------------------------------------

_active: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The installed plan, or ``None`` when injection is disabled."""
    return _active


def set_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` (``None`` disables); returns it for chaining."""
    global _active
    _active = plan
    return plan


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    previous = _active
    set_plan(plan)
    try:
        yield plan
    finally:
        set_plan(previous)
