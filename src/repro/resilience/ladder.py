"""The degradation ladder: always a verified ring, or a typed refusal.

DA-MS is #P-hard (Theorem 3.1), so at production scale the exact
pipeline *will* trip its budget or lose workers.  Aborting loses all
search progress; silently falling back to a ring-size-only selector
emits exactly the rings traceability analyses exploit.  The ladder
threads the middle path: step down through progressively cheaper
solvers, but **re-verify the Definition 5 constraints at every rung**
— (c, l)-diversity of the ring and all its DTRSs, non-elimination over
the closure, immutability of every prior ring — and fail closed
(raise :class:`ConstraintViolation`) rather than return a ring that
violates what it claims.

Rungs, in order::

    exact        bfs_select — minimum-cardinality optimum
    progressive  Algorithm 4 under the practical configurations
    relaxation   progressive across the Section-4 relaxation schedule
    baseline     smallest-module baseline across the same schedule

The exact rung degrades on :class:`~repro.core.bfs.SearchBudgetExceeded`
or :class:`~repro.core.perf.parallel.WorkerLost` (resource exhaustion);
later rungs degrade on :class:`~repro.core.problem.InfeasibleError` or
a failed re-verification.  An :class:`InfeasibleError` from the *exact*
rung is a proof that no feasible ring exists at the requirement, so it
propagates — degradation cannot conjure one.  Relaxed rungs verify
against the relaxed requirement they claim (``claimed_c``,
``claimed_ell`` on the result), never silently against the original.

Every step down emits a typed
:class:`~repro.obs.events.DegradationStepped` event, and the accepted
ring comes back in a :class:`DegradedResult` wrapper recording the
rung, the trigger, the claimed requirement and the verified
constraints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.baselines import smallest_select  # noqa: F401 - registers "smallest"
from ..core.bfs import SearchBudgetExceeded, bfs_select
from ..core.modules import ModuleUniverse
from ..core.perf.parallel import WorkerLost
from ..core.problem import (
    DamsInstance,
    InfeasibleError,
    check_diversity_constraint,
    check_immutability_constraint,
    check_non_eliminated_constraint,
)
from ..core.progressive import progressive_select
from ..core.relaxation import select_with_relaxation
from ..core.selector import SelectionResult
from ..obs import events, trace
from .supervisor import RetryPolicy

__all__ = [
    "RUNGS",
    "CONSTRAINTS",
    "ConstraintViolation",
    "DegradedResult",
    "verify_ring",
    "ladder_select",
]

#: Ladder rungs, strongest first.
RUNGS = ("exact", "progressive", "relaxation", "baseline")

#: The Definition 5 constraints every rung re-verifies.
CONSTRAINTS = ("diversity", "non_eliminated", "immutability")


class ConstraintViolation(RuntimeError):
    """A rung produced a ring violating Definition 5 — fail closed.

    Attributes:
        rung: the rung whose output failed verification (for the
            terminal error: the last rung tried).
        failed: names of the violated constraints.
    """

    def __init__(self, rung: str, failed: tuple[str, ...]) -> None:
        super().__init__(
            f"ring from rung {rung!r} violates constraint(s): "
            f"{', '.join(failed)} — refusing to emit it"
        )
        self.rung = rung
        self.failed = failed


@dataclass(frozen=True, slots=True)
class DegradedResult:
    """A verified selection plus the resilience story behind it.

    Attributes:
        result: the accepted selection (``result.algorithm`` names the
            concrete selector that produced it).
        rung: the ladder rung that produced the ring.
        trigger: exception class name that forced the last step down
            (``None`` when the exact rung succeeded directly).
        claimed_c: the c the ring is verified against (relaxed rungs
            may claim weaker than requested — never unverified).
        claimed_ell: the l the ring is verified against.
        relaxation_level: 0 unless a relaxation schedule was walked.
        verified: the constraint names re-checked on the accepted ring.
    """

    result: SelectionResult
    rung: str
    trigger: str | None
    claimed_c: float
    claimed_ell: int
    relaxation_level: int
    verified: tuple[str, ...]

    @property
    def degraded(self) -> bool:
        return self.rung != "exact"


def verify_ring(
    instance: DamsInstance, tokens: frozenset[str]
) -> tuple[str, ...]:
    """Exact Definition 5 re-verification of one candidate ring.

    One candidate's check, not a search — cheap relative to the budget
    that tripped the exact rung.  Returns the verified constraint
    names; raises :class:`ConstraintViolation` (rung "verify") listing
    every violated one.
    """
    mixins = set(tokens) - {instance.target_token}
    candidate = instance.make_ring(mixins)
    related = instance.related_rings(candidate)
    closure = related + [candidate]
    failed = []
    if not check_diversity_constraint(candidate, closure, instance.universe):
        failed.append("diversity")
    if not check_non_eliminated_constraint(closure):
        failed.append("non_eliminated")
    if not check_immutability_constraint(candidate, closure, instance.universe):
        failed.append("immutability")
    if failed:
        raise ConstraintViolation("verify", tuple(failed))
    return CONSTRAINTS


def _verified_at(
    instance: DamsInstance, tokens: frozenset[str], c: float, ell: int, rung: str
) -> tuple[str, ...]:
    """Verify ``tokens`` against the (possibly relaxed) claim (c, ell)."""
    if (c, ell) == (instance.c, instance.ell):
        probe = instance
    else:
        probe = DamsInstance(
            instance.universe, list(instance.rings), instance.target_token,
            c=c, ell=ell,
        )
    try:
        return verify_ring(probe, tokens)
    except ConstraintViolation as exc:
        raise ConstraintViolation(rung, exc.failed) from None


def ladder_select(
    instance: DamsInstance,
    modules: ModuleUniverse | None = None,
    time_budget: float | None = None,
    max_mixins: int | None = None,
    workers: int = 0,
    supervision: RetryPolicy | None = None,
    checkpoint_path=None,
    resume_from=None,
    rng: random.Random | None = None,
    rungs: tuple[str, ...] = RUNGS,
    cache=None,
) -> DegradedResult:
    """Run the ladder on ``instance`` and return a verified ring.

    Args:
        modules: the practical-configuration decomposition used by the
            non-exact rungs (built from the instance when omitted).
        time_budget / max_mixins / workers / supervision /
            checkpoint_path / resume_from: forwarded to the exact rung's
            :func:`~repro.core.bfs.bfs_select`.
        cache: a :class:`~repro.core.perf.cache.SolverCache` shared with
            other selections over the same (universe, ring history)
            snapshot — the service layer passes its per-epoch warm
            cache here.  Purely a work-sharing handle: results are
            identical with or without it.
        rng: randomness for the degraded selectors (the exact rung is
            deterministic).
        rungs: which rungs to try, in order — tests force individual
            rungs; production keeps the default.

    Raises:
        InfeasibleError: the exact rung proved no feasible ring exists,
            or every degraded rung was infeasible even relaxed.
        ConstraintViolation: the last rung tried produced a ring that
            failed re-verification (fail closed).
        CheckpointError: ``resume_from`` was corrupted or mismatched.

    Example — when nothing fails the ladder is just the exact solver
    plus a re-verification, and reports itself undegraded:

        >>> from repro.core.problem import DamsInstance
        >>> from repro.core.ring import Ring, TokenUniverse
        >>> universe = TokenUniverse(
        ...     {"t1": "h1", "t2": "h2", "t3": "h1", "t4": "h3"})
        >>> history = [
        ...     Ring("r1", frozenset({"t1", "t2"}), c=2.0, ell=2, seq=0)]
        >>> outcome = ladder_select(
        ...     DamsInstance(universe, history, "t3", c=2.0, ell=2))
        >>> (outcome.rung, outcome.degraded)
        ('exact', False)
        >>> sorted(outcome.result.tokens)
        ['t3', 't4']
    """
    if modules is None:
        modules = ModuleUniverse(instance.universe, instance.rings)
    target = instance.target_token
    c, ell = instance.c, instance.ell
    trigger: str | None = None
    last_error: Exception | None = None

    with trace.span(
        "resilience.ladder", target=target, rungs=",".join(rungs)
    ) as span:
        for position, rung in enumerate(rungs):
            try:
                outcome = _run_rung(
                    rung,
                    instance,
                    modules,
                    trigger,
                    time_budget=time_budget,
                    max_mixins=max_mixins,
                    workers=workers,
                    supervision=supervision,
                    checkpoint_path=checkpoint_path,
                    resume_from=resume_from,
                    rng=rng,
                    cache=cache,
                )
            except (SearchBudgetExceeded, WorkerLost) as exc:
                trigger = type(exc).__name__
                last_error = exc
            except InfeasibleError as exc:
                if rung == "exact":
                    raise  # exact proof: no ring exists at (c, ell)
                trigger = type(exc).__name__
                last_error = exc
            except ConstraintViolation as exc:
                trigger = type(exc).__name__
                last_error = exc
                if rung == rungs[-1]:
                    if events.enabled():
                        events.emit(events.LadderFailClosed(rung=rung))
                    raise
            else:
                if span is not None:
                    span.attrs["rung"] = rung
                    span.attrs["degraded"] = outcome.degraded
                if events.enabled():
                    events.emit(
                        events.RungServed(rung=rung, degraded=outcome.degraded)
                    )
                return outcome
            if rung != rungs[-1]:
                next_rung = rungs[position + 1]
                if events.enabled():
                    events.emit(
                        events.DegradationStepped(rung=next_rung, trigger=trigger)
                    )

    if isinstance(last_error, ConstraintViolation):
        if events.enabled():
            events.emit(events.LadderFailClosed(rung=rungs[-1]))
        raise last_error
    raise InfeasibleError(
        f"every ladder rung failed for token {target!r} under ({c}, {ell})-"
        f"diversity (last trigger: {trigger})"
    ) from last_error


def _run_rung(
    rung: str,
    instance: DamsInstance,
    modules: ModuleUniverse,
    trigger: str | None,
    time_budget: float | None,
    max_mixins: int | None,
    workers: int,
    supervision: RetryPolicy | None,
    checkpoint_path,
    resume_from,
    rng: random.Random | None,
    cache=None,
) -> DegradedResult:
    """Produce + verify one rung's ring, or raise its failure."""
    target = instance.target_token
    c, ell = instance.c, instance.ell

    if rung == "exact":
        solved = bfs_select(
            instance,
            time_budget=time_budget,
            max_mixins=max_mixins,
            workers=workers,
            supervision=supervision,
            checkpoint_path=checkpoint_path,
            resume_from=resume_from,
            cache=cache,
        )
        result = SelectionResult(
            tokens=solved.ring.tokens,
            target_token=target,
            modules=(),
            elapsed=solved.elapsed,
            algorithm="bfs",
        )
        verified = _verified_at(instance, result.tokens, c, ell, rung)
        return DegradedResult(
            result=result, rung=rung, trigger=trigger,
            claimed_c=c, claimed_ell=ell, relaxation_level=0, verified=verified,
        )

    if rung == "progressive":
        result = progressive_select(modules, target, c, ell, rng=rng)
        verified = _verified_at(instance, result.tokens, c, ell, rung)
        return DegradedResult(
            result=result, rung=rung, trigger=trigger,
            claimed_c=c, claimed_ell=ell, relaxation_level=0, verified=verified,
        )

    if rung in ("relaxation", "baseline"):
        algorithm = "progressive" if rung == "relaxation" else "smallest"
        result, step = select_with_relaxation(
            modules, target, c, ell, algorithm=algorithm, rng=rng
        )
        verified = _verified_at(instance, result.tokens, step.c, step.ell, rung)
        return DegradedResult(
            result=result, rung=rung, trigger=trigger,
            claimed_c=step.c, claimed_ell=step.ell,
            relaxation_level=step.level, verified=verified,
        )

    raise ValueError(f"unknown ladder rung {rung!r}; known: {', '.join(RUNGS)}")
