"""Worker supervision for the BFS candidate fan-out.

:mod:`repro.core.perf.parallel` used to push chunks through
``Pool.imap``: a worker that died mid-chunk (or hung forever) left the
controller blocked on a result that would never arrive.  This module
replaces that consume loop with a *windowed* ``apply_async`` engine
that keeps per-chunk result handles, so it can

* **detect** a lost chunk — a sentinel timeout per chunk, tightened to
  a short grace period the moment a child-process death is observed on
  the pool — and surface it as the typed
  :class:`~repro.core.perf.parallel.WorkerLost` instead of hanging;
* **recover** from it (``supervised_scan``) — requeue exactly the same
  chunk (deterministic re-chunking: chunks are identified by their
  global index and rebuilt from the same lexicographic stream) with
  exponential backoff, bounded by :class:`RetryPolicy.max_retries`.

Determinism: results are consumed strictly in chunk-submission order
and the first ``found``/``budget`` outcome wins, so the reported winner
— and the worker metrics snapshots merged into the controller recorder
— are byte-identical to a serial scan no matter which workers died,
hung, or were retried along the way.  A retried chunk's failed attempt
never contributes snapshots (they were lost with the worker); only the
attempt that completes is merged, exactly once, in chunk order.

The backoff ``sleep`` and the ``clock`` are injectable so chaos tests
run in virtual time.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.perf import parallel
from ..obs import events, metrics, trace

__all__ = [
    "RetryPolicy",
    "WorkerLost",
    "supervised_call",
    "supervised_scan",
    "windowed_scan",
    "DEFAULT_HANG_TIMEOUT",
]

# Re-exported so callers can catch the error where they import the policy.
WorkerLost = parallel.WorkerLost

#: Sentinel timeout for the unsupervised ``scan_candidates`` path: long
#: enough that no healthy chunk trips it, short enough that a crashed
#: worker surfaces as WorkerLost instead of blocking a service forever.
DEFAULT_HANG_TIMEOUT = 300.0


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How the supervisor waits, retries and backs off.

    Attributes:
        max_retries: requeues allowed per chunk before giving up with
            :class:`WorkerLost` (0 = detect only, never retry).
        base_delay: first backoff sleep in seconds.
        multiplier: backoff growth factor per extra attempt.
        hang_timeout: seconds a submitted chunk may stay unanswered
            before it is declared lost (the sentinel timeout).
        death_grace: once a child-process death is observed, every
            outstanding chunk's deadline is tightened to at most this
            many seconds away — fast recovery without waiting out the
            full sentinel.
        poll_interval: granularity of the result wait loop.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    hang_timeout: float = 30.0
    death_grace: float = 1.0
    poll_interval: float = 0.02

    def backoff(self, attempt: int) -> float:
        """Backoff before submitting attempt ``attempt + 1``."""
        return self.base_delay * self.multiplier**attempt


class _Task:
    """One outstanding chunk: its identity plus the live attempt."""

    __slots__ = ("index", "chunk", "attempt", "handle", "expires")

    def __init__(self, index: int, chunk: list, attempt: int, handle, expires: float):
        self.index = index
        self.chunk = chunk
        self.attempt = attempt
        self.handle = handle
        self.expires = expires


def supervised_scan(
    instance,
    candidate_stream: Iterable[tuple[str, ...]],
    workers: int,
    deadline: float | None = None,
    chunk_size: int = parallel.BFS_CHUNK_SIZE,
    policy: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
) -> tuple[str, int, tuple[str, ...] | None]:
    """:func:`~repro.core.perf.parallel.scan_candidates` with recovery.

    Same contract — ``("found" | "none" | "budget", index, mixins)``
    with serial-identical winners and merged metrics — but a dead or
    hung worker's chunk is requeued under ``policy`` instead of
    aborting the scan.  Raises :class:`WorkerLost` only after a chunk
    failed ``policy.max_retries + 1`` times.
    """
    return windowed_scan(
        instance,
        candidate_stream,
        workers,
        deadline=deadline,
        chunk_size=chunk_size,
        policy=policy if policy is not None else RetryPolicy(),
        sleep=sleep,
        clock=clock,
    )


def supervised_call(
    pool,
    func: Callable,
    make_args: Callable[[int], tuple],
    policy: RetryPolicy,
    index: int = 0,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
    on_retry: Callable[[int, str], None] | None = None,
):
    """One supervised RPC against a process pool.

    The single-call sibling of :func:`windowed_scan`, reused by the
    shard router for its worker dispatches: submit ``func(*make_args
    (attempt))`` via ``apply_async``, watch the handle under
    ``policy``'s sentinel timeout, tighten the deadline to
    ``death_grace`` the moment a child death is observed on the pool,
    and requeue with exponential backoff on timeout or a worker-raised
    exception.  ``make_args`` receives the attempt number so retries
    can attach recovery context (the router sends a full state sync on
    attempt > 0 — a respawned worker starts from the original
    ``initargs`` and must be caught up).

    ``index`` identifies the call in :class:`WorkerLost` /
    retry events (the router passes its global dispatch sequence, the
    same value its ``shard.batch`` fault site sees).  ``on_retry`` is
    called with ``(next_attempt, reason)`` before each backoff sleep.

    Returns the call's result; raises :class:`WorkerLost` after
    ``policy.max_retries + 1`` failed attempts.
    """
    attempt = 0
    handle = pool.apply_async(func, make_args(attempt))
    expires = clock() + policy.hang_timeout
    death_seen = False
    while True:
        while not handle.ready():
            if not death_seen:
                procs = getattr(pool, "_pool", None) or ()
                if any(proc.exitcode is not None for proc in procs):
                    death_seen = True
                    expires = min(expires, clock() + policy.death_grace)
            if clock() > expires:
                break
            handle.wait(policy.poll_interval)
        if handle.ready():
            try:
                return handle.get()
            except Exception as exc:
                reason = f"worker error: {type(exc).__name__}"
        else:
            reason = "no answer before timeout"
        if attempt >= policy.max_retries:
            if events.enabled():
                events.emit(
                    events.WorkerChunkLost(chunk_index=index, attempts=attempt + 1)
                )
            raise WorkerLost(
                f"call {index} lost after {attempt + 1} attempt(s) ({reason})",
                chunk_index=index,
                attempts=attempt + 1,
            )
        if events.enabled():
            events.emit(events.WorkerRetry(chunk_index=index, attempt=attempt + 1))
        if on_retry is not None:
            on_retry(attempt + 1, reason)
        sleep(policy.backoff(attempt))
        attempt += 1
        handle = pool.apply_async(func, make_args(attempt))
        expires = clock() + policy.hang_timeout
        death_seen = False


def windowed_scan(
    instance,
    candidate_stream: Iterable[tuple[str, ...]],
    workers: int,
    deadline: float | None,
    chunk_size: int,
    policy: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
) -> tuple[str, int, tuple[str, ...] | None]:
    """The shared windowed-submission engine (see the module docstring).

    ``scan_candidates`` routes here with ``max_retries=0`` (detection
    only); ``supervised_scan`` with a real :class:`RetryPolicy`.
    """
    recorder = metrics.active()
    record = recorder is not None
    chunk_iter = enumerate(parallel.chunked(candidate_stream, chunk_size))
    window = max(2 * workers, 2)
    offset = 0
    exhausted = False
    death_seen = False
    tasks: deque[_Task] = deque()

    with parallel._pool(
        workers, parallel._init_bfs_worker, (instance, deadline, record)
    ) as pool:

        def submit(index: int, chunk: list, attempt: int) -> _Task:
            handle = pool.apply_async(
                parallel._scan_chunk, ((chunk, index, attempt),)
            )
            return _Task(index, chunk, attempt, handle, clock() + policy.hang_timeout)

        def retry(task: _Task, reason: str) -> _Task:
            if task.attempt >= policy.max_retries:
                if events.enabled():
                    events.emit(
                        events.WorkerChunkLost(
                            chunk_index=task.index, attempts=task.attempt + 1
                        )
                    )
                raise WorkerLost(
                    f"chunk {task.index} lost after {task.attempt + 1} "
                    f"attempt(s) ({reason}); pool of {workers} worker(s)",
                    chunk_index=task.index,
                    attempts=task.attempt + 1,
                )
            if events.enabled():
                events.emit(
                    events.WorkerRetry(
                        chunk_index=task.index, attempt=task.attempt + 1
                    )
                )
            sleep(policy.backoff(task.attempt))
            return submit(task.index, task.chunk, task.attempt + 1)

        def observe_deaths() -> None:
            # A died child never answers; _maintain_pool replaces it
            # quickly, so treat any observed non-None exitcode as the
            # signal to tighten every outstanding deadline.
            nonlocal death_seen
            if death_seen:
                return
            procs = getattr(pool, "_pool", None) or ()
            if any(proc.exitcode is not None for proc in procs):
                death_seen = True
                cutoff = clock() + policy.death_grace
                for task in tasks:
                    task.expires = min(task.expires, cutoff)

        while True:
            while not exhausted and len(tasks) < window:
                try:
                    index, chunk = next(chunk_iter)
                except StopIteration:
                    exhausted = True
                    break
                tasks.append(submit(index, chunk, 0))
            if not tasks:
                return ("none", offset, None)

            head = tasks[0]
            while not head.handle.ready():
                observe_deaths()
                if clock() > head.expires:
                    tasks[0] = head = retry(head, "no answer before timeout")
                    death_seen = False
                    continue
                head.handle.wait(policy.poll_interval)
            try:
                outcome, local, winner, snaps = head.handle.get()
            except Exception as exc:  # worker raised mid-chunk: requeue
                tasks[0] = retry(head, f"worker error: {type(exc).__name__}")
                continue
            tasks.popleft()

            events.merge_worker_snapshots(recorder, snaps)
            if trace.active() is not None:
                trace.instant(
                    "bfs.chunk",
                    index=head.index,
                    outcome=outcome,
                    attempt=head.attempt,
                    candidates=local + (1 if outcome != "none" else 0),
                )
            if outcome in ("found", "budget"):
                pool.terminate()
                return (outcome, offset + local, winner)
            offset += local
