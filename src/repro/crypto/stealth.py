"""Monero-style dual-key stealth addresses.

In the substrate the paper builds on, every transaction output is paid
to a fresh one-time key derived from the receiver's published address,
so outputs are unlinkable to addresses on chain.  The scheme:

* a receiver publishes an address (A, B) = (a*G, b*G) — the *view* and
  *spend* public keys;
* a sender picks a random tx key r, publishes R = r*G, and pays output
  index i to the one-time key  P = Hs(r*A || i)*G + B;
* the receiver scans with the view key:  P' = Hs(a*R || i)*G + B; a
  match means the output is theirs, and the one-time private key is
  x = Hs(a*R || i) + b, which is exactly what the bLSAG signer needs.

This makes wallets realistic: token ownership is *discovered by
scanning*, not assumed.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from .ed25519 import G, L, Point, compress, point_add, scalar_mult
from .hashing import hash_to_scalar
from .keys import KeyPair, PrivateKey, PublicKey

__all__ = [
    "StealthAddress",
    "StealthReceiver",
    "OneTimeOutput",
    "make_receiver",
    "pay_to_address",
]


@dataclass(frozen=True, slots=True)
class StealthAddress:
    """A receiver's published (view, spend) public key pair."""

    view: PublicKey
    spend: PublicKey

    def encode(self) -> bytes:
        return self.view.encode() + self.spend.encode()


@dataclass(frozen=True, slots=True)
class OneTimeOutput:
    """What lands on chain: a one-time key plus the shared tx key R."""

    one_time_key: PublicKey
    tx_public_key: Point
    output_index: int


@dataclass(frozen=True, slots=True)
class StealthReceiver:
    """A receiver's secret half: view/spend private scalars."""

    view_private: PrivateKey
    spend_private: PrivateKey

    @property
    def address(self) -> StealthAddress:
        return StealthAddress(
            view=self.view_private.public_key(),
            spend=self.spend_private.public_key(),
        )

    def scan(self, output: OneTimeOutput) -> KeyPair | None:
        """Check whether ``output`` pays this receiver.

        Returns the one-time key pair controlling the output (ready for
        ring signing) or None when the output belongs to someone else.
        """
        derivation = _derivation_scalar(
            scalar_mult(self.view_private.scalar, output.tx_public_key),
            output.output_index,
        )
        candidate = point_add(
            scalar_mult(derivation, G), self.address.spend.point
        )
        if candidate != output.one_time_key.point:
            return None
        one_time_private = (derivation + self.spend_private.scalar) % L
        return KeyPair(PrivateKey(one_time_private))


def _derivation_scalar(shared_point: Point, output_index: int) -> int:
    return hash_to_scalar(
        "repro/stealth-derivation",
        compress(shared_point),
        output_index.to_bytes(4, "little"),
    )


def make_receiver(seed: str | None = None) -> StealthReceiver:
    """Create a receiver; seeded receivers are deterministic (tests)."""
    if seed is None:
        view = (secrets.randbits(256) % (L - 1)) + 1
        spend = (secrets.randbits(256) % (L - 1)) + 1
    else:
        view = hash_to_scalar("repro/stealth-view", seed.encode())
        spend = hash_to_scalar("repro/stealth-spend", seed.encode())
    return StealthReceiver(
        view_private=PrivateKey(view), spend_private=PrivateKey(spend)
    )


def pay_to_address(
    address: StealthAddress,
    output_index: int,
    tx_private_key: int | None = None,
) -> tuple[OneTimeOutput, int]:
    """Derive a one-time output paying ``address``.

    Returns the output and the transaction private key r (one r is
    shared by all outputs of a transaction; pass it back in for the
    second and later outputs).
    """
    if tx_private_key is None:
        tx_private_key = (secrets.randbits(256) % (L - 1)) + 1
    tx_public = scalar_mult(tx_private_key, G)
    derivation = _derivation_scalar(
        scalar_mult(tx_private_key, address.view.point), output_index
    )
    one_time = point_add(scalar_mult(derivation, G), address.spend.point)
    output = OneTimeOutput(
        one_time_key=PublicKey(one_time),
        tx_public_key=tx_public,
        output_index=output_index,
    )
    return output, tx_private_key
