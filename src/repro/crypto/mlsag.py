"""MLSAG: Multilayered Linkable Spontaneous Anonymous Group signatures.

Transactions with several inputs (Figure 1 of the paper shows multiple
input RSs) need one ring *per input* signed jointly, so a verifier
knows the same signer controls the true member at one shared column
index across all layers — without learning which column.  MLSAG
generalizes bLSAG to an m-layer ring of n columns:

    columns j = 0..n-1, layers k = 0..m-1, signer column s
    key images I_k = x_k * Hp(P_{s,k})
    c_{s+1} = H(m, {a_k G, a_k Hp(P_{s,k})}_k)
    for j = s+1, ..., s-1:
        c_{j+1} = H(m, {r_{j,k} G + c_j P_{j,k},
                        r_{j,k} Hp(P_{j,k}) + c_j I_k}_k)
    r_{s,k} = a_k - c_s x_k

Verification replays the challenge chain.  Linkability is per layer:
reusing any one private key reproduces that layer's key image.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from .ed25519 import G, L, Point, compress, multi_scalar_mult
from .hashing import hash_to_point, hash_to_scalar
from .keys import KeyPair, PublicKey
from .lsag import SigningError

__all__ = ["MlsagProof", "mlsag_sign", "mlsag_verify"]


@dataclass(frozen=True, slots=True)
class MlsagProof:
    """An m-layer ring signature over n columns.

    Attributes:
        ring: ``ring[j][k]`` is the layer-k public key of column j.
        c0: initial challenge.
        responses: ``responses[j][k]`` scalars.
        key_images: one key image per layer.
    """

    ring: tuple[tuple[PublicKey, ...], ...]
    c0: int
    responses: tuple[tuple[int, ...], ...]
    key_images: tuple[Point, ...]

    @property
    def columns(self) -> int:
        return len(self.ring)

    @property
    def layers(self) -> int:
        return len(self.ring[0]) if self.ring else 0


def _random_scalar() -> int:
    return (secrets.randbits(256) % (L - 1)) + 1


def _round_challenge(message: bytes, pairs: list[tuple[Point, Point]]) -> int:
    chunks: list[bytes] = [message]
    for left, right in pairs:
        chunks.append(compress(left))
        chunks.append(compress(right))
    return hash_to_scalar("repro/mlsag-challenge", *chunks)


def mlsag_sign(
    message: bytes,
    ring: list[list[PublicKey]],
    signers: list[KeyPair],
) -> MlsagProof:
    """Sign ``message`` with ``signers`` hidden at one shared column.

    Args:
        message: transaction digest.
        ring: ``ring[j][k]`` = column j, layer k public key; all
            columns must have ``len(signers)`` layers.
        signers: one key pair per layer; their public keys must appear
            together at exactly one column.

    Raises:
        SigningError: on ragged rings or when no single column matches
            every signer.
    """
    if not ring or not signers:
        raise SigningError("ring and signers must be non-empty")
    layers = len(signers)
    if any(len(column) != layers for column in ring):
        raise SigningError("all ring columns must have one key per layer")

    signer_encoded = [kp.public.encode() for kp in signers]
    signer_column = None
    for j, column in enumerate(ring):
        if [pk.encode() for pk in column] == signer_encoded:
            signer_column = j
            break
    if signer_column is None:
        raise SigningError("signers' keys do not appear together in any column")

    n = len(ring)
    hp = [[hash_to_point("repro/key-image", pk.encode()) for pk in column]
          for column in ring]
    key_images = tuple(kp.key_image() for kp in signers)

    alphas = [_random_scalar() for _ in range(layers)]
    challenges: list[int | None] = [None] * n
    responses: list[list[int] | None] = [None] * n

    seed_pairs = [
        (
            multi_scalar_mult([(alphas[k], G)]),
            multi_scalar_mult([(alphas[k], hp[signer_column][k])]),
        )
        for k in range(layers)
    ]
    challenges[(signer_column + 1) % n] = _round_challenge(message, seed_pairs)

    j = (signer_column + 1) % n
    while j != signer_column:
        row = [_random_scalar() for _ in range(layers)]
        responses[j] = row
        challenge = challenges[j]
        assert challenge is not None
        pairs = []
        for k in range(layers):
            left = multi_scalar_mult([(row[k], G), (challenge, ring[j][k].point)])
            right = multi_scalar_mult(
                [(row[k], hp[j][k]), (challenge, key_images[k])]
            )
            pairs.append((left, right))
        challenges[(j + 1) % n] = _round_challenge(message, pairs)
        j = (j + 1) % n

    closing = challenges[signer_column]
    assert closing is not None
    responses[signer_column] = [
        (alphas[k] - closing * signers[k].private.scalar) % L
        for k in range(layers)
    ]

    c0 = challenges[0]
    assert c0 is not None
    return MlsagProof(
        ring=tuple(tuple(column) for column in ring),
        c0=c0,
        responses=tuple(tuple(row) for row in responses if row is not None),
        key_images=key_images,
    )


def mlsag_verify(message: bytes, proof: MlsagProof) -> bool:
    """Verify an MLSAG proof by replaying the challenge chain."""
    n, m = proof.columns, proof.layers
    if n == 0 or m == 0 or len(proof.responses) != n:
        return False
    if any(len(row) != m for row in proof.responses):
        return False
    if len(proof.key_images) != m:
        return False
    challenge = proof.c0
    for j in range(n):
        pairs = []
        for k in range(m):
            public = proof.ring[j][k]
            hp = hash_to_point("repro/key-image", public.encode())
            response = proof.responses[j][k]
            left = multi_scalar_mult([(response, G), (challenge, public.point)])
            right = multi_scalar_mult(
                [(response, hp), (challenge, proof.key_images[k])]
            )
            pairs.append((left, right))
        challenge = _round_challenge(message, pairs)
    return challenge == proof.c0
