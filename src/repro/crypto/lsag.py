"""Back's Linkable Spontaneous Anonymous Group signatures (bLSAG).

This implements "Step 2" (signing) and the cryptographic half of "Step 3"
(verification) of the ring-signature scheme described in Section 2.1 of
the paper.  Given a ring of public keys, the signer proves knowledge of
*one* of the corresponding private keys without revealing which, and
publishes a *key image* that is identical across any two signatures made
with the same key — which is what lets the ledger reject double spends
while preserving anonymity.

Scheme (standard bLSAG):

    ring      P_0 .. P_{n-1},  signer index s with private key x
    key image I = x * Hp(P_s)
    pick random a;  c_{s+1} = H(m, a*G, a*Hp(P_s))
    for i = s+1, ..., s-1 (cyclically):
        pick random r_i
        c_{i+1} = H(m, r_i*G + c_i*P_i, r_i*Hp(P_i) + c_i*I)
    close the ring: r_s = a - c_s * x  (mod L)
    signature = (c_0, r_0..r_{n-1}, I)

Verification recomputes the chain of challenges from c_0 and accepts iff
it cycles back to c_0.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from functools import lru_cache

from .ed25519 import G, L, Point, compress, multi_scalar_mult
from .hashing import hash_to_point, hash_to_scalar
from .keys import KeyPair, PublicKey

__all__ = ["RingSignatureProof", "sign", "verify", "is_linked", "SigningError"]


class SigningError(ValueError):
    """Raised when a ring signature cannot be produced from the inputs."""


@dataclass(frozen=True, slots=True)
class RingSignatureProof:
    """The auxiliary data ω of a ring signature.

    Attributes:
        ring: the ordered public keys (the paper's sorted token sequence).
        c0: the initial challenge scalar.
        responses: one response scalar per ring member.
        key_image: the signer's key image I.
    """

    ring: tuple[PublicKey, ...]
    c0: int
    responses: tuple[int, ...]
    key_image: Point

    @property
    def size(self) -> int:
        return len(self.ring)


def _challenge(message: bytes, left: Point, right: Point) -> int:
    return hash_to_scalar("repro/lsag-challenge", message, compress(left), compress(right))


@lru_cache(maxsize=65536)
def _hp(encoded_public: bytes) -> Point:
    """Memoized hash-to-point of a public key (pure function, hot path)."""
    return hash_to_point("repro/key-image", encoded_public)


def _random_scalar() -> int:
    return (secrets.randbits(256) % (L - 1)) + 1


def sign(message: bytes, ring: list[PublicKey], signer: KeyPair) -> RingSignatureProof:
    """Produce a bLSAG signature over ``message`` with ``signer`` hidden in ``ring``.

    Args:
        message: the transaction message being authorized.
        ring: the full ordered ring, which must contain the signer's
            public key exactly once.
        signer: the key pair of the truly-consumed token.

    Raises:
        SigningError: if the signer's key is absent from the ring or the
            ring contains duplicates.
    """
    encoded = [pk.encode() for pk in ring]
    if len(set(encoded)) != len(encoded):
        raise SigningError("ring contains duplicate public keys")
    try:
        signer_index = encoded.index(signer.public.encode())
    except ValueError:
        raise SigningError("signer's public key is not in the ring") from None

    n = len(ring)
    key_image = signer.key_image()
    hp = [_hp(enc) for enc in encoded]

    alpha = _random_scalar()
    challenges: list[int | None] = [None] * n
    responses: list[int | None] = [None] * n

    challenges[(signer_index + 1) % n] = _challenge(
        message,
        multi_scalar_mult([(alpha, G)]),
        multi_scalar_mult([(alpha, hp[signer_index])]),
    )
    index = (signer_index + 1) % n
    while index != signer_index:
        response = _random_scalar()
        responses[index] = response
        current_challenge = challenges[index]
        assert current_challenge is not None
        left = multi_scalar_mult([(response, G), (current_challenge, ring[index].point)])
        right = multi_scalar_mult([(response, hp[index]), (current_challenge, key_image)])
        challenges[(index + 1) % n] = _challenge(message, left, right)
        index = (index + 1) % n

    signer_challenge = challenges[signer_index]
    assert signer_challenge is not None
    responses[signer_index] = (alpha - signer_challenge * signer.private.scalar) % L

    c0 = challenges[0]
    assert c0 is not None
    assert all(r is not None for r in responses)
    return RingSignatureProof(
        ring=tuple(ring),
        c0=c0,
        responses=tuple(r for r in responses if r is not None),
        key_image=key_image,
    )


def verify(message: bytes, proof: RingSignatureProof) -> bool:
    """Verify a bLSAG signature (the cryptographic part of Step 3)."""
    n = proof.size
    if n == 0 or len(proof.responses) != n:
        return False
    challenge = proof.c0
    for index in range(n):
        public = proof.ring[index]
        hp = _hp(public.encode())
        response = proof.responses[index]
        left = multi_scalar_mult([(response, G), (challenge, public.point)])
        right = multi_scalar_mult([(response, hp), (challenge, proof.key_image)])
        challenge = _challenge(message, left, right)
    return challenge == proof.c0


def is_linked(a: RingSignatureProof, b: RingSignatureProof) -> bool:
    """True iff the two signatures were made with the same private key."""
    return a.key_image == b.key_image
