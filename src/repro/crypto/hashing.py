"""Domain-separated hashing utilities for the ring-signature substrate.

All hashes are SHA-512 based (the hash Ed25519 traditionally uses) with an
explicit ASCII domain tag so that scalars, points and transaction digests
can never collide across uses.
"""

from __future__ import annotations

import hashlib

from .ed25519 import L, P, Point, decompress, DecodingError

__all__ = [
    "sha512",
    "hash_to_scalar",
    "hash_to_point",
    "digest_hex",
]


def sha512(domain: str, *chunks: bytes) -> bytes:
    """SHA-512 of ``chunks`` prefixed with a length-framed domain tag."""
    hasher = hashlib.sha512()
    tag = domain.encode("ascii")
    hasher.update(len(tag).to_bytes(2, "little"))
    hasher.update(tag)
    for chunk in chunks:
        hasher.update(len(chunk).to_bytes(8, "little"))
        hasher.update(chunk)
    return hasher.digest()


def hash_to_scalar(domain: str, *chunks: bytes) -> int:
    """Hash arbitrary data to a non-zero scalar modulo the group order L."""
    counter = 0
    while True:
        payload = sha512(domain, *chunks, counter.to_bytes(4, "little"))
        scalar = int.from_bytes(payload, "little") % L
        if scalar != 0:
            return scalar
        counter += 1  # pragma: no cover - probability ~2^-252


def hash_to_point(domain: str, *chunks: bytes) -> Point:
    """Hash arbitrary data to a point in the prime-order subgroup.

    Uses try-and-increment: interpret the hash as a candidate compressed
    point; on success multiply by the cofactor 8 to land in the order-L
    subgroup.  Try-and-increment is slow but dead simple and uniform enough
    for a research substrate (Monero itself uses a fancier but equivalent
    map in spirit).
    """
    counter = 0
    while True:
        candidate = sha512(domain, *chunks, counter.to_bytes(4, "little"))[:32]
        # Clear the sign bit to keep y < P more often.
        raw = bytearray(candidate)
        raw[31] &= 0x7F
        try:
            point = decompress(bytes(raw))
        except DecodingError:
            counter += 1
            continue
        # Multiply by the cofactor to force the point into the L-subgroup.
        cleared = scalar_mult_cofactor(point)
        if cleared.x == 0 and cleared.y == 1:
            counter += 1
            continue
        return cleared


def scalar_mult_cofactor(point: Point) -> Point:
    """Multiply a point by the curve cofactor (8)."""
    doubled = point
    for _ in range(3):
        doubled = doubled + doubled
    return doubled


def digest_hex(domain: str, *chunks: bytes) -> str:
    """Hex digest convenience used for block / transaction ids."""
    return sha512(domain, *chunks)[:32].hex()


# P is re-exported implicitly through ed25519; keep the linter aware we use it.
_ = P
