"""Cryptographic substrate: Ed25519 group, keys, bLSAG ring signatures.

This package realizes "Step 2" (signature generation) and the
cryptographic part of "Step 3" (verification) of the ring-signature
scheme the paper builds on (Section 2.1).  The mixin-selection work of
the paper ("Step 1") lives in :mod:`repro.core` and
:mod:`repro.tokenmagic`.
"""

from .commitment import Commitment, add_commitments, commit, commitments_balance
from .ed25519 import G, IDENTITY, L, P, Point, compress, decompress, is_on_curve
from .keys import KeyPair, PrivateKey, PublicKey, generate_keypair, keypair_from_seed
from .lsag import RingSignatureProof, SigningError, is_linked, sign, verify
from .mlsag import MlsagProof, mlsag_sign, mlsag_verify
from .stealth import (
    OneTimeOutput,
    StealthAddress,
    StealthReceiver,
    make_receiver,
    pay_to_address,
)

__all__ = [
    "G",
    "IDENTITY",
    "L",
    "P",
    "Point",
    "compress",
    "decompress",
    "is_on_curve",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
    "keypair_from_seed",
    "RingSignatureProof",
    "SigningError",
    "sign",
    "verify",
    "is_linked",
    "Commitment",
    "commit",
    "commitments_balance",
    "add_commitments",
    "MlsagProof",
    "mlsag_sign",
    "mlsag_verify",
    "StealthAddress",
    "StealthReceiver",
    "OneTimeOutput",
    "make_receiver",
    "pay_to_address",
]
