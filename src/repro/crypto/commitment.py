"""Pedersen commitments for token amounts (RingCT-flavoured).

The paper abstracts tokens to set elements, but the substrate it sits on
(Monero) hides amounts behind Pedersen commitments C = x*G + a*H.  We
implement them so example transactions can carry committed amounts and the
ledger can verify that a transaction balances without learning amounts.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from .ed25519 import G, L, Point, compress, point_add, scalar_mult
from .hashing import hash_to_point

__all__ = ["H", "Commitment", "commit", "commitments_balance", "add_commitments"]

#: Second generator with unknown discrete log relative to G.
H = hash_to_point("repro/pedersen-H", compress(G))


@dataclass(frozen=True, slots=True)
class Commitment:
    """A Pedersen commitment C = blinding*G + amount*H."""

    point: Point

    def __add__(self, other: "Commitment") -> "Commitment":
        return Commitment(point_add(self.point, other.point))

    def encode(self) -> bytes:
        return compress(self.point)


def commit(amount: int, blinding: int | None = None) -> tuple[Commitment, int]:
    """Commit to ``amount``; returns the commitment and the blinding factor."""
    if amount < 0:
        raise ValueError("amounts must be non-negative")
    if blinding is None:
        blinding = (secrets.randbits(256) % (L - 1)) + 1
    point = point_add(scalar_mult(blinding % L, G), scalar_mult(amount % L, H))
    return Commitment(point), blinding % L


def add_commitments(commitments: list[Commitment]) -> Commitment:
    """Homomorphically sum a non-empty list of commitments."""
    if not commitments:
        raise ValueError("cannot sum zero commitments")
    total = commitments[0]
    for commitment in commitments[1:]:
        total = total + commitment
    return total


def commitments_balance(
    inputs: list[Commitment], outputs: list[Commitment], blinding_delta: int
) -> bool:
    """Check sum(inputs) - sum(outputs) == blinding_delta * G.

    A transaction that knows the blinding factors of all its inputs and
    outputs publishes ``blinding_delta`` (the excess); the relation holds
    iff the committed amounts balance.
    """
    lhs = add_commitments(inputs).point
    rhs = point_add(add_commitments(outputs).point, scalar_mult(blinding_delta % L, G))
    return lhs == rhs
