"""Key pairs for token ownership.

Every token in the UTXO substrate is controlled by a one-time key pair, as
in Monero-style systems: the public key *is* the token's on-chain identity
and the private key authorizes spending it inside a ring signature.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from .ed25519 import G, L, Point, compress, scalar_mult
from .hashing import hash_to_point, hash_to_scalar

__all__ = ["PrivateKey", "PublicKey", "KeyPair", "generate_keypair", "keypair_from_seed"]


@dataclass(frozen=True, slots=True)
class PublicKey:
    """A public key: a point on the Ed25519 curve."""

    point: Point

    def encode(self) -> bytes:
        return compress(self.point)

    @property
    def hex(self) -> str:
        return self.encode().hex()


@dataclass(frozen=True, slots=True)
class PrivateKey:
    """A private scalar in [1, L)."""

    scalar: int

    def __post_init__(self) -> None:
        if not 0 < self.scalar < L:
            raise ValueError("private scalar out of range")

    def public_key(self) -> PublicKey:
        return PublicKey(scalar_mult(self.scalar, G))

    def key_image(self) -> Point:
        """The Monero-style key image I = x * Hp(P).

        The key image is deterministic per key pair, so spending the same
        token twice produces the same image — exactly the double-spend
        guard "Step 3" of the paper's RS scheme checks.
        """
        public = self.public_key()
        base = hash_to_point("repro/key-image", public.encode())
        return scalar_mult(self.scalar, base)


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A private/public key pair controlling one token."""

    private: PrivateKey
    public: PublicKey = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "public", self.private.public_key())

    def key_image(self) -> Point:
        return self.private.key_image()


def generate_keypair() -> KeyPair:
    """Generate a fresh random key pair from the OS entropy pool."""
    scalar = (secrets.randbits(256) % (L - 1)) + 1
    return KeyPair(PrivateKey(scalar))


def keypair_from_seed(seed: bytes | str) -> KeyPair:
    """Deterministically derive a key pair from a seed.

    Used throughout tests and data generators so traces are reproducible.
    """
    if isinstance(seed, str):
        seed = seed.encode("utf-8")
    scalar = hash_to_scalar("repro/keygen", seed)
    return KeyPair(PrivateKey(scalar))
