"""Pure-python Ed25519 group arithmetic.

This module implements the twisted Edwards curve used by Ed25519 (and by
Monero's linkable ring signatures):

    -x^2 + y^2 = 1 + d * x^2 * y^2   over GF(2^255 - 19)

It provides exactly the group operations the :mod:`repro.crypto.lsag`
ring-signature scheme needs:

* point addition / doubling / scalar multiplication,
* point compression / decompression (RFC 8032 encoding),
* the prime group order ``L`` and the base point ``G``.

Internally all arithmetic runs in extended homogeneous coordinates
(X : Y : Z : T) with X*Y = Z*T, so point addition is inversion-free; a
single field inversion normalizes the result back to the affine
:class:`Point` the public API exposes.  The implementation favours
clarity over constant-time discipline: it is a faithful substrate for
the paper's "Step 2 / Step 3" of a ring-signature scheme (signing and
verification), not a production cryptography library.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "P",
    "L",
    "D",
    "Point",
    "G",
    "IDENTITY",
    "point_add",
    "point_double",
    "scalar_mult",
    "multi_scalar_mult",
    "compress",
    "decompress",
    "is_on_curve",
    "DecodingError",
]

# Field prime: 2^255 - 19.
P = 2**255 - 19

# Prime order of the base-point subgroup.
L = 2**252 + 27742317777372353535851937790883648493

# Twisted Edwards curve constant d = -121665/121666 mod P.
D = (-121665 * pow(121666, P - 2, P)) % P

_2D = 2 * D % P

# sqrt(-1) mod P, used during decompression.
_SQRT_M1 = pow(2, (P - 1) // 4, P)


class DecodingError(ValueError):
    """Raised when a 32-byte string does not encode a curve point."""


@dataclass(frozen=True, slots=True)
class Point:
    """An affine point on the Ed25519 curve.

    Points are immutable and hashable so they can be used as dict keys
    (e.g. key images indexing a spent-token set).
    """

    x: int
    y: int

    def __add__(self, other: "Point") -> "Point":
        return point_add(self, other)

    def __mul__(self, scalar: int) -> "Point":
        return scalar_mult(scalar, self)

    __rmul__ = __mul__

    def encode(self) -> bytes:
        """Return the 32-byte RFC 8032 compressed encoding."""
        return compress(self)


#: The neutral element of the group.
IDENTITY = Point(0, 1)

# Extended coordinates (X, Y, Z, T) with x = X/Z, y = Y/Z, T = X*Y/Z.
_ExtPoint = tuple[int, int, int, int]

_EXT_IDENTITY: _ExtPoint = (0, 1, 1, 0)


def _to_extended(point: Point) -> _ExtPoint:
    x, y = point.x % P, point.y % P
    return (x, y, 1, x * y % P)


def _to_affine(ext: _ExtPoint) -> Point:
    x, y, z, _ = ext
    inv_z = pow(z, P - 2, P)
    return Point(x * inv_z % P, y * inv_z % P)


def _ext_add(a: _ExtPoint, b: _ExtPoint) -> _ExtPoint:
    """Unified extended addition (add-2008-hwcd-3, a = -1 variant)."""
    x1, y1, z1, t1 = a
    x2, y2, z2, t2 = b
    aa = (y1 - x1) * (y2 - x2) % P
    bb = (y1 + x1) * (y2 + x2) % P
    cc = t1 * _2D % P * t2 % P
    dd = 2 * z1 * z2 % P
    e = bb - aa
    f = dd - cc
    g = dd + cc
    h = bb + aa
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _ext_double(a: _ExtPoint) -> _ExtPoint:
    return _ext_add(a, a)


def _ext_scalar_mult(scalar: int, ext: _ExtPoint) -> _ExtPoint:
    scalar %= L
    result = _EXT_IDENTITY
    addend = ext
    while scalar:
        if scalar & 1:
            result = _ext_add(result, addend)
        addend = _ext_add(addend, addend)
        scalar >>= 1
    return result


def _field_inv(value: int) -> int:
    """Multiplicative inverse in GF(P) (``value`` must be non-zero)."""
    return pow(value, P - 2, P)


def is_on_curve(point: Point) -> bool:
    """Check the twisted Edwards equation for ``point``."""
    x, y = point.x % P, point.y % P
    left = (-x * x + y * y) % P
    right = (1 + D * x * x % P * y * y) % P
    return left == right


def point_add(a: Point, b: Point) -> Point:
    """Add two affine points."""
    return _to_affine(_ext_add(_to_extended(a), _to_extended(b)))


def point_double(a: Point) -> Point:
    return point_add(a, a)


def scalar_mult(scalar: int, point: Point) -> Point:
    """Compute ``scalar * point`` by double-and-add.

    The scalar is reduced mod ``L`` first; multiplying by 0 yields the
    identity.
    """
    return _to_affine(_ext_scalar_mult(scalar, _to_extended(point)))


def multi_scalar_mult(terms: list[tuple[int, Point]]) -> Point:
    """Compute ``sum(scalar_i * point_i)`` with a single final inversion.

    The ring-signature hot loop computes ``r*G + c*P`` pairs; doing the
    whole combination in extended coordinates keeps it inversion-free.
    """
    total = _EXT_IDENTITY
    for scalar, point in terms:
        total = _ext_add(total, _ext_scalar_mult(scalar, _to_extended(point)))
    return _to_affine(total)


def compress(point: Point) -> bytes:
    """RFC 8032 point compression: y with the sign bit of x in bit 255."""
    encoded = point.y % P | ((point.x % P & 1) << 255)
    return encoded.to_bytes(32, "little")


def decompress(data: bytes) -> Point:
    """Inverse of :func:`compress`.

    Raises:
        DecodingError: if ``data`` is not 32 bytes or does not encode a
            point on the curve.
    """
    if len(data) != 32:
        raise DecodingError(f"expected 32 bytes, got {len(data)}")
    encoded = int.from_bytes(data, "little")
    sign = encoded >> 255
    y = encoded & ((1 << 255) - 1)
    if y >= P:
        raise DecodingError("y coordinate out of range")
    x = _recover_x(y, sign)
    point = Point(x, y)
    if not is_on_curve(point):  # pragma: no cover - _recover_x guarantees this
        raise DecodingError("decoded point not on curve")
    return point


def _recover_x(y: int, sign: int) -> int:
    """Recover the x coordinate from y and the sign bit."""
    # x^2 = (y^2 - 1) / (d*y^2 + 1)
    numerator = (y * y - 1) % P
    denominator = (D * y * y + 1) % P
    x_sq = numerator * _field_inv(denominator) % P
    # Square root via the P = 5 mod 8 trick.
    x = pow(x_sq, (P + 3) // 8, P)
    if (x * x - x_sq) % P != 0:
        x = x * _SQRT_M1 % P
    if (x * x - x_sq) % P != 0:
        raise DecodingError("x^2 has no square root: not a curve point")
    if x == 0 and sign == 1:
        raise DecodingError("invalid sign bit for x = 0")
    if x & 1 != sign:
        x = P - x
    return x


def _base_point() -> Point:
    """Compute the standard Ed25519 base point (y = 4/5)."""
    y = 4 * _field_inv(5) % P
    x = _recover_x(y, 0)
    # RFC 8032 picks the point whose x is "even"; _recover_x(sign=0) does so.
    return Point(x, y)


#: The standard base point generating the order-L subgroup.
G = _base_point()
