"""repro — reproduction of "When the Recursive Diversity Anonymity Meets
the Ring Signature" (Ni, Cheng, Chen, Lin — SIGMOD 2021).

The package implements the paper's diversity-aware mixin selection
(DA-MS) problem and the TokenMagic framework end to end, together with
every substrate the paper depends on:

* :mod:`repro.crypto` — Ed25519 + bLSAG linkable ring signatures
  (the RS scheme's Steps 2 and 3).
* :mod:`repro.chain` — a UTXO blockchain with ring-signature inputs,
  key-image double-spend protection and configuration verification.
* :mod:`repro.core` — privacy semantics (recursive (c, l)-diversity,
  DTRSs), the DA-MS problem, the exact BFS solver, the practical
  configurations and the Progressive / Game-theoretic / baseline
  selectors (the RS scheme's Step 1).
* :mod:`repro.tokenmagic` — the TokenMagic framework: batches,
  per-batch registries, Theorem 4.1 consumed-token inference, the eta
  reserve constraint and Algorithm 1's candidate randomization.
* :mod:`repro.analysis` — the adversary: chain-reaction cascade,
  homogeneity attack, side-information elimination and anonymity
  metrics.
* :mod:`repro.data` — Monero-shaped and synthetic dataset generators
  matching the paper's experimental settings (Tables 2 and 3).
* :mod:`repro.experiments` — the harness that regenerates every figure.
"""

from importlib.metadata import PackageNotFoundError, version

try:
    __version__ = version("repro")
except PackageNotFoundError:  # pragma: no cover - not installed
    __version__ = "0.0.0"

__all__ = ["__version__"]
