"""Setuptools entry point.

The pinned environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs are unavailable; this classic ``setup.py`` keeps
``pip install -e .`` working offline via the legacy develop path.
"""

from setuptools import setup

setup()
