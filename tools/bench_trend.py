#!/usr/bin/env python3
"""Track benchmark headlines across PRs and fail on regressions.

Möser et al.'s empirical methodology (PAPERS.md) argues for tracked
longitudinal measurements rather than one-off numbers; this tool makes
the repo's bench artifacts exactly that.  It reads the current
``benchmarks/results/BENCH_*.json`` artifacts, extracts the headline
metrics registered in :data:`METRICS`, and compares them against the
committed history in ``benchmarks/results/TREND.jsonl`` — one JSON
object per line, ``{"label": ..., "metrics": {name: value}}``, in
chronological order, no wall-clock timestamps (the file must be
byte-stable across reruns of the same code).

Modes (combinable; ``--report`` is the default):

``--report``
    print the metric history plus the current artifact values.
``--check``
    exit 1 if any current metric regressed more than ``--threshold``
    percent against the most recent recorded value (CI runs this
    against the committed artifacts, so a fresh checkout always
    passes and a perf-regressing PR fails its own bench refresh).
``--record LABEL``
    append the current artifact metrics as a new history entry.

Artifacts embed a ``workload`` fingerprint (budgets, sizes, seeds);
``--record`` stores it alongside the metrics and ``--check`` compares
a metric only when the current artifact's fingerprint matches the
recorded one.  A ``make bench-smoke`` run with tight caps therefore
*skips* the full-bench baselines instead of reading as a regression —
like is only ever compared with like.

Zero dependencies, stdlib only, like everything else in ``tools/``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "benchmarks" / "results"
TREND_NAME = "TREND.jsonl"

#: metric name -> (artifact file, path inside the JSON document,
#: direction).  ``higher`` means bigger is better; ``lower`` means the
#: metric is a cost.  Missing files/keys are skipped, not errors, so
#: the tool keeps working while an artifact is being regenerated.
METRICS: dict[str, tuple[str, tuple[str, ...], str]] = {
    "bfs.speedup": ("BENCH_bfs.json", ("headline", "speedup"), "higher"),
    "bfs.optimized_seconds": (
        "BENCH_bfs.json",
        ("headline", "optimized_seconds"),
        "lower",
    ),
    "bfs.ring_index": ("BENCH_bfs.json", ("headline", "ring_index"), "higher"),
    "service.speedup": ("BENCH_service.json", ("speedup",), "higher"),
    "shard.throughput_rps": (
        "BENCH_shard.json",
        ("headline", "throughput_rps"),
        "higher",
    ),
    "shard.speedup_vs_single": (
        "BENCH_shard.json",
        ("headline", "speedup_vs_single"),
        "higher",
    ),
    "epoch.warm_hit_rate": (
        "BENCH_epoch.json",
        ("headline", "warm_hit_rate"),
        "higher",
    ),
    "epoch.p99_speedup": (
        "BENCH_epoch.json",
        ("headline", "p99_speedup"),
        "higher",
    ),
    # Not overhead_pct: it hovers around zero and can go negative
    # (fsync cost inside run-to-run noise), which makes a percentage
    # regression check meaningless.  The journaled throughput carries
    # the same signal with a stable sign.
    "recovery.journal_rps": (
        "BENCH_recovery.json",
        ("headline", "journal_rps"),
        "higher",
    ),
    "recovery.replay_rings_per_s": (
        "BENCH_recovery.json",
        ("headline", "replay_rings_per_s"),
        "higher",
    ),
}


def _dig(doc, path: tuple[str, ...]):
    for key in path:
        if not isinstance(doc, dict) or key not in doc:
            return None
        doc = doc[key]
    return doc


def _load_artifacts(results_dir: Path) -> dict[str, dict | None]:
    cache: dict[str, dict | None] = {}
    for _name, (artifact, _path, _direction) in METRICS.items():
        if artifact in cache:
            continue
        try:
            cache[artifact] = json.loads((results_dir / artifact).read_text())
        except (OSError, ValueError):
            cache[artifact] = None
    return cache


def current_metrics(results_dir: Path) -> dict[str, float]:
    """The registered headline values present in today's artifacts."""
    values: dict[str, float] = {}
    cache = _load_artifacts(results_dir)
    for name, (artifact, path, _direction) in METRICS.items():
        doc = cache[artifact]
        if doc is None:
            continue
        value = _dig(doc, path)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values[name] = float(value)
    return values


def current_workloads(results_dir: Path) -> dict[str, dict]:
    """Each artifact's ``workload`` fingerprint, where present."""
    workloads: dict[str, dict] = {}
    for artifact, doc in _load_artifacts(results_dir).items():
        if isinstance(doc, dict) and isinstance(doc.get("workload"), dict):
            workloads[artifact] = doc["workload"]
    return workloads


def load_history(trend_path: Path) -> list[dict]:
    if not trend_path.exists():
        return []
    entries = []
    for line_no, line in enumerate(
        trend_path.read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError as exc:
            raise SystemExit(
                f"error: {trend_path}:{line_no}: not valid JSON: {exc}"
            )
        if "label" not in entry or not isinstance(entry.get("metrics"), dict):
            raise SystemExit(
                f"error: {trend_path}:{line_no}: entries need a 'label' "
                f"and a 'metrics' object"
            )
        entries.append(entry)
    return entries


def baseline_for(
    history: list[dict], metric: str
) -> tuple[str, float, dict | None] | None:
    """The most recent recorded (label, value, workload) for ``metric``.

    ``workload`` is the fingerprint the entry recorded for the metric's
    artifact, or ``None`` when the entry predates workload recording —
    older entries stay comparable against everything (wildcard).
    """
    artifact = METRICS[metric][0]
    for entry in reversed(history):
        value = entry["metrics"].get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            workload = entry.get("workloads", {}).get(artifact)
            if not isinstance(workload, dict):
                workload = None
            return str(entry["label"]), float(value), workload
    return None


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def report(history: list[dict], current: dict[str, float]) -> None:
    labels = [str(entry["label"]) for entry in history]
    print("bench trend (oldest -> newest, 'now' = current artifacts):")
    width = max((len(name) for name in METRICS), default=10)
    header = "  " + "metric".ljust(width) + "  " + "  ".join(
        f"{label:>10}" for label in labels + ["now"]
    )
    print(header)
    for name, (_artifact, _path, direction) in METRICS.items():
        cells = []
        for entry in history:
            value = entry["metrics"].get(name)
            cells.append(
                f"{_fmt(value):>10}"
                if isinstance(value, (int, float))
                and not isinstance(value, bool)
                else f"{'-':>10}"
            )
        now = current.get(name)
        cells.append(f"{_fmt(now):>10}" if now is not None else f"{'-':>10}")
        arrow = "^" if direction == "higher" else "v"
        print("  " + name.ljust(width) + "  " + "  ".join(cells) + f"  ({arrow} better)")


def check(
    history: list[dict],
    current: dict[str, float],
    threshold_pct: float,
    workloads: dict[str, dict] | None = None,
) -> int:
    """Return the number of metrics regressed beyond ``threshold_pct``."""
    if not history:
        print("check: no TREND.jsonl history; nothing to compare against")
        return 0
    workloads = workloads or {}
    regressions = 0
    for name, (artifact, _path, direction) in METRICS.items():
        now = current.get(name)
        baseline = baseline_for(history, name)
        if now is None or baseline is None:
            continue
        label, base, base_workload = baseline
        now_workload = workloads.get(artifact)
        if (
            base_workload is not None
            and now_workload is not None
            and base_workload != now_workload
        ):
            # A capped smoke run vs. the full bench (or any other
            # parameter change) is not a regression — different work.
            print(
                f"check: {name}: skipped (workload changed since {label}; "
                f"re-record after a full bench run)"
            )
            continue
        if base == 0:
            continue
        if direction == "higher":
            change_pct = (now - base) / base * 100.0
            regressed = change_pct < -threshold_pct
        else:
            change_pct = (base - now) / base * 100.0
            regressed = change_pct < -threshold_pct
        status = "REGRESSED" if regressed else "ok"
        print(
            f"check: {name}: {_fmt(base)} ({label}) -> {_fmt(now)} "
            f"[{change_pct:+.1f}% vs -{threshold_pct:g}% allowed] {status}"
        )
        regressions += regressed
    if regressions:
        print(
            f"check: {regressions} metric(s) regressed beyond the "
            f"{threshold_pct:g}% threshold",
            file=sys.stderr,
        )
    return regressions


def record(
    trend_path: Path,
    label: str,
    current: dict[str, float],
    workloads: dict[str, dict] | None = None,
) -> None:
    if not current:
        raise SystemExit("error: no artifact metrics found; nothing to record")
    entry = {"label": label, "metrics": dict(sorted(current.items()))}
    if workloads:
        entry["workloads"] = dict(sorted(workloads.items()))
    with trend_path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"recorded {len(current)} metric(s) as {label!r} in {trend_path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Track BENCH_*.json headlines across PRs."
    )
    parser.add_argument(
        "--results", metavar="DIR", type=Path, default=DEFAULT_RESULTS,
        help="directory holding BENCH_*.json and TREND.jsonl",
    )
    parser.add_argument(
        "--trend", metavar="PATH", type=Path, default=None,
        help="history file (default: RESULTS/TREND.jsonl)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the metric history table (default action)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 on a regression beyond --threshold",
    )
    parser.add_argument(
        "--record", metavar="LABEL", default=None,
        help="append the current artifact metrics as a history entry",
    )
    parser.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="allowed regression in percent for --check (default 10)",
    )
    args = parser.parse_args(argv)

    trend_path = args.trend or args.results / TREND_NAME
    history = load_history(trend_path)
    current = current_metrics(args.results)
    workloads = current_workloads(args.results)

    did_something = False
    exit_code = 0
    if args.report or not (args.check or args.record):
        report(history, current)
        did_something = True
    if args.check:
        if did_something:
            print()
        exit_code = 1 if check(history, current, args.threshold, workloads) else 0
        did_something = True
    if args.record is not None:
        if did_something:
            print()
        record(trend_path, args.record, current, workloads)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
