#!/usr/bin/env python3
"""Markdown link and anchor checker for the docs tree.

Walks the repo's markdown (README.md, DESIGN.md, EXPERIMENTS.md,
ROADMAP.md, docs/*.md), extracts every inline link, and verifies:

* relative file links resolve to a path that exists (directories ok);
* fragment links — ``#anchor`` or ``file.md#anchor`` — name a heading
  that actually exists in the target file, using GitHub's slug rules
  (lowercase, punctuation dropped, spaces to hyphens, backticks
  stripped);
* external schemes (http/https/mailto) are skipped — this checker is
  offline by design.

Headings and links inside fenced code blocks are ignored.  Exits 0
when everything resolves, 1 with one line per broken link otherwise —
``make docs`` wires it into CI next to the doctest suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The documentation surface the checker owns.
DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]
DOC_GLOBS = ["docs/*.md"]

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")


def doc_paths() -> list[Path]:
    paths = [REPO / name for name in DOC_FILES if (REPO / name).exists()]
    for pattern in DOC_GLOBS:
        paths.extend(sorted(REPO.glob(pattern)))
    return paths


def unfenced_lines(text: str):
    """Yield (line_number, line) outside fenced code blocks."""
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield number, line


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = heading.lstrip("#").strip().replace("`", "")
    out = []
    for ch in text.lower():
        if ch.isalnum() or ch in "_-":
            out.append(ch)
        elif ch == " ":
            out.append("-")
    return "".join(out)


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    for _, line in unfenced_lines(path.read_text(encoding="utf-8")):
        if line.startswith("#"):
            slugs.add(github_slug(line))
    return slugs


def check_file(path: Path, slug_cache: dict[Path, set[str]]) -> list[str]:
    problems = []
    for number, line in unfenced_lines(path.read_text(encoding="utf-8")):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            where = f"{path.relative_to(REPO)}:{number}"
            file_part, _, anchor = target.partition("#")
            resolved = (
                path if not file_part else (path.parent / file_part).resolve()
            )
            if not resolved.exists():
                problems.append(f"{where}: broken link {target!r} "
                                f"(no such file {file_part!r})")
                continue
            if not anchor:
                continue
            if resolved.suffix.lower() != ".md":
                problems.append(f"{where}: anchor on non-markdown "
                                f"target {target!r}")
                continue
            if resolved not in slug_cache:
                slug_cache[resolved] = heading_slugs(resolved)
            if anchor not in slug_cache[resolved]:
                problems.append(f"{where}: broken anchor {target!r} "
                                f"(no heading slug {anchor!r})")
    return problems


def main() -> int:
    paths = doc_paths()
    slug_cache: dict[Path, set[str]] = {}
    problems = []
    for path in paths:
        problems.extend(check_file(path, slug_cache))
    if problems:
        print(f"{len(problems)} broken link(s) in {len(paths)} file(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"docs ok: {len(paths)} file(s), all links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
