#!/usr/bin/env python3
"""Offline integrity checker for a selection-service journal directory.

Walks a journal home (the ``serve --journal DIR`` directory: a
``wal.jsonl`` write-ahead log plus ``snapshot-*.json`` compaction
files), verifies every CRC frame, and replays the state exactly the
way a restarting daemon would — without ever starting one.  The
"Crash recovery" runbook in ``docs/operations.md`` shows where this
fits: inspect first, truncate only once you know what you are cutting.

Modes:

* default — report: per-snapshot validity, WAL frame count, torn-tail
  / corruption diagnosis, and the recovered head (epoch, ring count,
  frames replayed past the snapshot).  Read-only; exits 0 as long as
  the state is recoverable at all.
* ``--check`` — strict CI mode: additionally exit 1 when *any* damage
  is present (torn tail, corrupt frame, unusable snapshot), even
  though recovery would still succeed by cutting the tail.  ``make
  recover-smoke`` runs this over the journal the recovery bench
  leaves behind, so a clean daemon run must produce a byte-perfect
  journal.
* ``--truncate`` — repair: persist the cut at the last valid frame
  (what a recovering daemon does on startup), then re-verify.

Exit codes: 0 clean (or recoverable in report mode), 1 damaged under
``--check`` (or still damaged after ``--truncate``), 2 unrecoverable
(no genesis frame and no usable snapshot).

Zero third-party dependencies; imports :mod:`repro.service.journal`
from ``src/`` directly so it runs from a fresh checkout without an
install step, like everything else in ``tools/``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.journal import (  # noqa: E402
    Journal,
    JournalCorruption,
    JournalError,
    decode_frame,
    scan_frames,
)


def inspect(directory: Path) -> dict:
    """Everything the report prints, as one JSON-ready document."""
    journal = Journal(directory, sync_every=0, snapshot_every=0)
    doc: dict = {"directory": str(directory), "snapshots": [], "wal": None}

    for path in sorted(journal._snapshot_paths()):
        entry: dict = {"file": path.name}
        try:
            body = decode_frame(path.read_text(encoding="utf-8").rstrip("\n"))
            entry["ok"] = True
            entry["epoch"] = body.get("epoch")
            entry["rings"] = len(body.get("data", {}).get("rings", []))
        except (OSError, JournalCorruption) as exc:
            entry["ok"] = False
            entry["error"] = str(exc)
        doc["snapshots"].append(entry)

    wal_path = journal.wal_path
    if wal_path.exists():
        frames, valid_bytes, damage = scan_frames(wal_path)
        doc["wal"] = {
            "file": wal_path.name,
            "bytes": wal_path.stat().st_size,
            "valid_bytes": valid_bytes,
            "frames": len(frames),
            "damage": damage,
        }

    try:
        recovered = journal.recover(truncate=False)
    except JournalError as exc:
        doc["recoverable"] = False
        doc["error"] = str(exc)
        return doc
    doc["recoverable"] = True
    if recovered is None:
        doc["empty"] = True
        return doc
    doc["head"] = {
        "epoch": recovered.epoch,
        "rings": len(recovered.rings),
        "batches": recovered.batches,
    }
    doc["recovery"] = recovered.recovery
    return doc


def damage_lines(doc: dict) -> list[str]:
    """Human-readable reasons this journal is not byte-perfect."""
    reasons = []
    for entry in doc.get("snapshots", []):
        if not entry.get("ok"):
            reasons.append(f"snapshot {entry['file']}: {entry['error']}")
    wal = doc.get("wal")
    if wal and wal.get("damage"):
        lost = wal["bytes"] - wal["valid_bytes"]
        reasons.append(
            f"wal {wal['file']}: {wal['damage']} "
            f"({lost} byte(s) past the last valid frame)"
        )
    recovery = doc.get("recovery") or {}
    for note in recovery.get("notes", []):
        if note not in " ".join(reasons):
            reasons.append(note)
    return reasons


def report(doc: dict) -> None:
    print(f"journal: {doc['directory']}")
    for entry in doc.get("snapshots", []):
        if entry.get("ok"):
            print(
                f"  snapshot {entry['file']}: ok "
                f"(epoch {entry['epoch']}, {entry['rings']} ring(s))"
            )
        else:
            print(f"  snapshot {entry['file']}: BAD ({entry['error']})")
    wal = doc.get("wal")
    if wal is None:
        print("  wal: missing")
    else:
        status = "ok" if wal["damage"] is None else f"DAMAGED ({wal['damage']})"
        print(
            f"  wal {wal['file']}: {wal['frames']} frame(s), "
            f"{wal['valid_bytes']}/{wal['bytes']} valid byte(s), {status}"
        )
    if not doc.get("recoverable"):
        print(f"  head: UNRECOVERABLE ({doc.get('error')})")
    elif doc.get("empty"):
        print("  head: empty directory (fresh start)")
    else:
        head, recovery = doc["head"], doc["recovery"]
        print(
            f"  head: epoch {head['epoch']}, {head['rings']} ring(s) "
            f"(snapshot epoch {recovery['snapshot_epoch']} + "
            f"{recovery['frames_replayed']} replayed frame(s))"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Verify (and optionally repair) a selection-service journal."
    )
    parser.add_argument("directory", type=Path, help="journal home (serve --journal DIR)")
    parser.add_argument(
        "--check", action="store_true",
        help="strict mode: exit 1 on any damage, even if recoverable",
    )
    parser.add_argument(
        "--truncate", action="store_true",
        help="persist the cut at the last valid WAL frame, then re-verify",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    if not args.directory.is_dir():
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return 2

    if args.truncate:
        try:
            Journal(args.directory).recover(truncate=True)
        except JournalError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    doc = inspect(args.directory)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        report(doc)

    if not doc.get("recoverable"):
        return 2
    reasons = damage_lines(doc)
    if reasons:
        for reason in reasons:
            print(f"damage: {reason}", file=sys.stderr)
        if args.check or args.truncate:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
