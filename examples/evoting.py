"""An e-voting station built on ring signatures (paper Section 8).

In a ring-signature e-voting system a "token" is a ballot credential
and a ring hides *who* cast a given vote.  Latency matters at a polling
station, so the paper recommends the Progressive algorithm (TM_P):
near-TM_G ring sizes at a fraction of the time.

The example simulates a queue of voters casting ballots through the
TokenMagic framework, timing each ring generation, then verifies no
voter can be linked to their ballot by exact chain-reaction analysis.

Run:  python examples/evoting.py
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import exact_analysis
from repro.chain import Blockchain, RingInput, Transaction
from repro.core import InfeasibleError
from repro.tokenmagic import TokenMagic, TokenMagicConfig


def register_voters(chain: Blockchain, precincts: int, voters_per_precinct: int) -> None:
    """Each precinct's registration transaction issues ballot credentials.

    The registration transaction is the ballot's historical transaction
    (HT): recursive diversity then guarantees a vote cannot even be
    pinned down to a *precinct*, not just to a voter.
    """
    txs = [
        Transaction(inputs=(), output_count=voters_per_precinct, nonce=i)
        for i in range(precincts)
    ]
    chain.append_block(chain.make_block(txs, timestamp=1.0))


def main() -> None:
    precincts, voters_per_precinct = 12, 8
    chain = Blockchain(verify_signatures=False)
    register_voters(chain, precincts, voters_per_precinct)
    total_ballots = precincts * voters_per_precinct
    print(f"registered {total_ballots} ballots across {precincts} precincts")

    magic = TokenMagic(
        chain,
        TokenMagicConfig(batch_lambda=total_ballots, apply_second_config=True),
    )

    rng = random.Random(2024)
    ballots = sorted(chain.universe.tokens)
    rng.shuffle(ballots)

    cast, times, sizes = 0, [], []
    for voter_index, ballot in enumerate(ballots[:30]):
        try:
            # Diversity across >= 4 precincts per ring (c=1, l=4).
            result = magic.generate_ring(
                ballot, c=1.0, ell=4, algorithm="progressive", rng=rng
            )
        except InfeasibleError:
            print(f"  voter {voter_index}: no eligible ring (reserve exhausted)")
            continue
        magic.commit_ring(result, c=1.0, ell=4)
        tx = Transaction(
            inputs=(
                RingInput(
                    ring_tokens=tuple(sorted(result.tokens)),
                    claimed_c=1.0,
                    claimed_ell=4,
                ),
            ),
            output_count=1,  # the tallied (anonymous) vote
            nonce=1000 + voter_index,
        )
        chain.append_block(chain.make_block([tx], timestamp=10.0 + voter_index))
        cast += 1
        times.append(result.elapsed)
        sizes.append(result.size)

    print(f"\ncast {cast} votes")
    print(f"  mean ring size      : {statistics.fmean(sizes):.1f} ballots")
    print(f"  mean selection time : {statistics.fmean(times) * 1000:.2f} ms")
    print(f"  p95 selection time  : "
          f"{sorted(times)[int(len(times) * 0.95)] * 1000:.2f} ms")
    queue_delay = sum(times)
    print(f"  total queue overhead for {cast} voters: {queue_delay:.2f} s")

    # Coercion resistance check: no ballot-vote link is inferable.
    rings = list(chain.rings)
    analysis = exact_analysis(rings)
    exposed = [rid for rid in analysis.deanonymized]
    print(f"\nchain-reaction analysis over {len(rings)} votes: "
          f"{len(exposed)} linkable ballots")
    worst = min(len(p) for p in analysis.possible.values())
    print(f"  smallest surviving anonymity set: {worst} ballots")


if __name__ == "__main__":
    main()
