"""A cryptocurrency wallet making fully signed, diversity-aware spends.

End to end on the real substrate: mint coins, claim them with one-time
keys, select mixins with the Game-theoretic algorithm (smallest rings =
lowest fees, the paper's recommendation for cryptocurrency workloads),
produce a bLSAG ring signature, and have the ledger verify everything —
including rejecting a double spend.

Run:  python examples/cryptocurrency_wallet.py
"""

from __future__ import annotations

from repro.chain import (
    Blockchain,
    DoubleSpendError,
    Transaction,
    Wallet,
)
from repro.analysis import exact_analysis, population_metrics


def mint_economy() -> tuple[Blockchain, list[Wallet]]:
    """Create a chain with 10 coinbase transactions claimed by 5 wallets."""
    chain = Blockchain(verify_signatures=True)
    wallets = [Wallet(name=f"wallet-{i}") for i in range(5)]

    txs = [Transaction(inputs=(), output_count=3, nonce=i) for i in range(10)]
    chain.append_block(chain.make_block(txs, timestamp=1.0))

    cursor = 0
    for tx in txs:
        owners, pairs = [], []
        for _ in range(tx.output_count):
            wallet = wallets[cursor % len(wallets)]
            keypair = wallet.derive_keypair()
            owners.append(keypair.public)
            pairs.append((wallet, keypair))
            cursor += 1
        outputs = tx.make_outputs(owners=owners)
        chain.register_owned_outputs(outputs)
        for output, (wallet, keypair) in zip(outputs, pairs):
            wallet.claim_output(output, keypair)
    return chain, wallets


def main() -> None:
    chain, wallets = mint_economy()
    print(f"minted {len(chain.universe)} tokens across {chain.height} block(s)")

    alice = wallets[0]
    token = alice.owned_tokens()[0]
    print(f"\nalice spends {token[:20]}... with the Game-theoretic selector")

    plan = alice.plan_spend(chain, token, c=2.0, ell=3, algorithm="game")
    print(f"  ring size {plan.selection.size} "
          f"(fee = {plan.selection.size - 1} units, "
          f"{len(plan.selection.modules)} modules)")

    tx = alice.sign_spend(chain, plan, output_count=2)
    print(f"  signed transaction {tx.tx_id[:16]}..., fee {tx.fee}")

    chain.append_block(chain.make_block([tx], timestamp=2.0))
    print(f"  block accepted; chain height {chain.height}")

    # The ledger's linkability guard stops a second spend of the token.
    retry = alice.sign_spend(chain, plan, output_count=1, nonce=1)
    try:
        chain.append_block(chain.make_block([retry], timestamp=3.0))
    except DoubleSpendError as error:
        print(f"  double spend rejected: {error}")

    # What an adversary sees: the ring on chain, fully ambiguous.
    rings = list(chain.rings)
    analysis = exact_analysis(rings)
    ring = rings[0]
    print(f"\nadversary view of ring {ring.rid[:16]}...:")
    print(f"  {len(analysis.possible[ring.rid])} of {len(ring.tokens)} "
          f"tokens remain possible consumed tokens")
    metrics = population_metrics(rings, chain.universe)
    print(f"  population: deanonymization rate "
          f"{metrics.deanonymization_rate:.0%}, mean anonymity entropy "
          f"{metrics.mean_token_entropy:.2f} bits")


if __name__ == "__main__":
    main()
