"""A week in the life of a diversity-aware blockchain.

Runs the full-stack economy simulation (mint -> TokenMagic selection ->
mempool -> mined blocks) under two spending policies, then replays the
chains through the temporal-anonymity analyzer to show the paper's
central promise in action: under DA-MS selection, *no later ring ever
erodes an earlier ring's anonymity*, while naive selection accumulates
erosion events over time.

Run:  python examples/longitudinal_economy.py
"""

from __future__ import annotations

import random

from repro.analysis import erosion_events, population_metrics
from repro.core import InfeasibleError, ModuleUniverse, Ring, progressive_select
from repro.sim import Economy, EconomyConfig


def run_diversity_aware(ticks: int) -> Economy:
    economy = Economy(
        EconomyConfig(
            mints_per_tick=2,
            outputs_per_mint=3,
            spends_per_tick=2,
            c=1.0,
            ell=3,
            algorithm="progressive",
            seed=42,
        )
    )
    economy.run(ticks)
    return economy


def run_naive_over(
    economy: Economy, window: int = 12, zero_mixin_share: float = 0.35
) -> list[Ring]:
    """Replay the same token universe with historical naive selection.

    Two realistic defects of size-only selection are modelled (both
    documented by the traceability studies the paper cites):

    * *recency bias* — mixins come from the ``window`` most recent
      outputs (Monero draws half its mixins from the last 1.8 days);
    * *zero-mixin spends* — a share of users minimize fees by spending
      with no mixins at all, which deanonymizes them outright and
      cascades into every ring that used their token as a decoy.
    """
    universe = economy.chain.universe
    tokens = sorted(universe.tokens)
    rng = random.Random(42)
    rings: list[Ring] = []
    spent: set[str] = set()
    spend_count = len(list(economy.chain.rings))
    for index in range(spend_count):
        # Interleave with minting: only tokens "so far" are available.
        horizon = min(len(tokens), window + index * 6)
        recent = tokens[max(0, horizon - window) : horizon]
        target = rng.choice([t for t in recent if t not in spent] or recent)
        spent.add(target)
        if rng.random() < zero_mixin_share:
            members = frozenset([target])
        else:
            pool = [t for t in recent if t != target]
            members = frozenset([target, *rng.sample(pool, min(2, len(pool)))])
        rings.append(Ring(rid=f"naive{index}", tokens=members, seq=index))
    return rings


def main() -> None:
    ticks = 10
    economy = run_diversity_aware(ticks)

    print(f"simulated {ticks} ticks "
          f"({economy.chain.height} blocks, {len(economy.chain.universe)} tokens)")
    print(f"{'tick':>5} | {'spends ok':>9} | {'relaxed':>7} | {'mean ring':>9}")
    print("-" * 40)
    for report in economy.reports:
        print(f"{report.tick:>5} | {report.successful_spends:>9} | "
              f"{report.relaxed_spends:>7} | {report.mean_ring_size:>9.1f}")

    dams_rings = sorted(economy.chain.rings, key=lambda r: r.seq)
    naive_rings = run_naive_over(economy)

    print("\ntemporal anonymity (erosion events = a newer ring shrinking an"
          " older ring's anonymity set):")
    for label, rings in (("DA-MS (TM_P)", dams_rings), ("naive (historical)", naive_rings)):
        events = erosion_events(rings)
        fatal = sum(1 for e in events if e.fully_deanonymized)
        print(f"  {label:<14} {len(events):>3} erosion events, "
              f"{fatal} full deanonymizations")

    print("\nfinal population metrics:")
    for label, rings in (("DA-MS (TM_P)", dams_rings), ("naive (historical)", naive_rings)):
        metrics = population_metrics(rings, economy.chain.universe)
        print(f"  {label:<14} mean effective/nominal ring size "
              f"{metrics.mean_effective_size:.2f}/{metrics.mean_nominal_size:.2f}, "
              f"fee {metrics.total_fee}")


if __name__ == "__main__":
    main()
