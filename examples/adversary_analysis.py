"""Attack lab: how much does diversity-aware selection actually buy?

Plays adversary against two worlds built over the same small, busy
token universe (dense enough that rings overlap and chain reactions can
actually fire):

* a *naive* world whose spenders pick mixins uniformly at random by
  count only (size-k rings, Monero-style), and
* a *TokenMagic* world whose spenders run the Progressive algorithm
  under the practical configurations.

The adversary runs cascade + exact chain-reaction analysis and the
homogeneity attack, with growing side information, and reports how many
token-RS pairs it can *infer beyond what was leaked to it*.

Run:  python examples/adversary_analysis.py
"""

from __future__ import annotations

import random

from repro.analysis import (
    cascade_attack,
    exact_analysis,
    homogeneity_attack,
    population_metrics,
)
from repro.analysis.adversary import theorem62_threshold
from repro.core import (
    InfeasibleError,
    ModuleUniverse,
    Ring,
    TokenUniverse,
    progressive_select,
)
from repro.core.combinations import enumerate_combinations


def busy_universe(tokens=48, hts=12, seed=0) -> TokenUniverse:
    """A small batch where many spends will collide."""
    rng = random.Random(seed)
    return TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(hts)}" for i in range(tokens)}
    )


def naive_world(universe, rng, spends, ring_size=3):
    """Monero-style selection: k uniformly random mixins, size only."""
    rings = []
    tokens = sorted(universe.tokens)
    spent = set()
    for index in range(spends):
        target = rng.choice([t for t in tokens if t not in spent])
        spent.add(target)
        mixins = rng.sample([t for t in tokens if t != target], ring_size - 1)
        rings.append(
            Ring(rid=f"naive{index}", tokens=frozenset([target, *mixins]), seq=index)
        )
    return rings


def tokenmagic_world(universe, rng, spends):
    """Diversity-aware selection under the practical configurations."""
    rings: list[Ring] = []
    tokens = sorted(universe.tokens)
    spent = set()
    for index in range(spends):
        target = rng.choice([t for t in tokens if t not in spent])
        spent.add(target)
        modules = ModuleUniverse(universe, rings)
        try:
            result = progressive_select(modules, target, c=1.0, ell=4)
        except InfeasibleError:
            continue
        rings.append(
            Ring(rid=f"tm{index}", tokens=result.tokens, c=1.0, ell=3, seq=len(rings))
        )
    return rings


def attack_report(label, rings, universe, side_pairs):
    weak = cascade_attack(rings, side_pairs)
    strong = exact_analysis(rings, side_pairs)
    homogeneity = homogeneity_attack(rings, universe, side_pairs, strong)
    inferred = {
        rid: token
        for rid, token in strong.deanonymized.items()
        if rid not in side_pairs
    }
    ht_inferred = {
        rid: ht
        for rid, ht in homogeneity.revealed.items()
        if rid not in side_pairs
    }
    print(
        f"  {label:<22} cascade hits {len(weak.deanonymized) - len(side_pairs):>2}   "
        f"exact-inferred pairs {len(inferred):>2}   "
        f"HT leaks beyond SI {len(ht_inferred):>2}"
    )


def main() -> None:
    universe = busy_universe()
    spends = 26

    naive = naive_world(universe, random.Random(1), spends, ring_size=3)
    magic = tokenmagic_world(universe, random.Random(1), spends)

    naive_mean = sum(len(r) for r in naive) / len(naive)
    magic_mean = sum(len(r) for r in magic) / max(len(magic), 1)
    print(
        f"worlds over {len(universe)} tokens: {len(naive)} naive rings "
        f"(mean size {naive_mean:.1f}) vs {len(magic)} TokenMagic rings "
        f"(mean size {magic_mean:.1f})\n"
    )

    print("no side information:")
    attack_report("naive (size-only)", naive, universe, {})
    attack_report("TokenMagic (TM_P)", magic, universe, {})

    # Leak a growing number of true token-RS pairs (Definition 3).
    for leaked in (3, 6, 12):
        print(f"\nside information: {leaked} revealed token-RS pairs")
        for label, rings in (("naive (size-only)", naive), ("TokenMagic (TM_P)", magic)):
            world = next(enumerate_combinations(rings, limit=1), {})
            truth = {rid: world[rid] for rid in list(world)[:leaked]}
            attack_report(label, rings, universe, truth)

    print("\npopulation anonymity (no side information):")
    for label, rings in (("naive", naive), ("TokenMagic", magic)):
        metrics = population_metrics(rings, universe)
        print(
            f"  {label:<12} mean effective ring size "
            f"{metrics.mean_effective_size:5.2f} / "
            f"{metrics.mean_nominal_size:5.2f} nominal, "
            f"HT entropy {metrics.mean_ht_entropy:.2f} bits, "
            f"total fee {metrics.total_fee}"
        )

    if magic:
        ring = magic[0]
        threshold = theorem62_threshold(ring, universe)
        print(
            f"\nTheorem 6.2: ring {ring.rid} resists HT confirmation while "
            f"|SI| < {threshold}"
        )


if __name__ == "__main__":
    main()
