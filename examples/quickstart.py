"""Quickstart: diversity-aware mixin selection in five minutes.

Walks the paper's Example 1 with the public API, then runs all four
practical selectors (TM_S / TM_R / TM_P / TM_G) on the Monero-shaped
data set and compares ring sizes.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import (
    DamsInstance,
    ModuleUniverse,
    Ring,
    TokenUniverse,
    bfs_select,
    game_select,
    get_selector,
    is_feasible_exact,
    progressive_select,
)
from repro.data import generate_monero_hour


def example_1() -> None:
    """The paper's motivating example, solved exactly."""
    print("=" * 64)
    print("Example 1 (paper Section 1): which mixins for t3?")
    print("=" * 64)

    # Four tokens: t1 and t3 come from the same historical transaction
    # h1; t2 from h2; t4 from h3.  Two identical rings already exist.
    universe = TokenUniverse({"t1": "h1", "t2": "h2", "t3": "h1", "t4": "h3"})
    r1 = Ring("r1", frozenset({"t1", "t2"}), c=2.0, ell=2, seq=0)
    r2 = Ring("r2", frozenset({"t1", "t2"}), c=2.0, ell=2, seq=1)
    instance = DamsInstance(universe, [r1, r2], "t3", c=2.0, ell=2)

    for mixins, label in [
        ({"t1"}, "{t1, t3}  (homogeneity attack: both from h1)"),
        ({"t2"}, "{t2, t3}  (chain-reaction: t2 is provably spent)"),
        ({"t4"}, "{t3, t4}  (the paper's good solution)"),
    ]:
        verdict = "feasible" if is_feasible_exact(instance, mixins) else "REJECTED"
        print(f"  candidate {label:<50} -> {verdict}")

    result = bfs_select(instance)
    print(f"  exact BFS optimum: {sorted(result.ring.tokens)} "
          f"(size {len(result.ring.tokens)})\n")


def compare_selectors() -> None:
    """All four practical approaches on the Monero-shaped hour."""
    print("=" * 64)
    print("Selector comparison on the Monero-shaped data set")
    print("(633 tokens, 57 super RSs of size 11, 6 fresh tokens)")
    print("=" * 64)

    hour = generate_monero_hour(seed=7)
    modules: ModuleUniverse = hour.module_universe()
    target = hour.fresh_tokens[0]
    c, ell = 0.6, 40  # Table 2 defaults

    rng = random.Random(42)
    for name in ("smallest", "random", "progressive", "game"):
        selector = get_selector(name)
        result = selector(modules, target, c, ell, rng=rng)
        print(
            f"  {name:>12}: ring size {result.size:>3}, "
            f"{len(result.modules):>2} modules, "
            f"{result.elapsed * 1000:7.2f} ms"
        )
    print()

    # The two paper algorithms head-to-head over several targets.
    game_total = progressive_total = 0
    targets = sorted(modules.universe.tokens)[::97]  # a spread of targets
    for token in targets:
        game_total += game_select(modules, token, c, ell).size
        progressive_total += progressive_select(modules, token, c, ell).size
    print(
        f"  over {len(targets)} targets: mean TM_G size "
        f"{game_total / len(targets):.1f} vs TM_P "
        f"{progressive_total / len(targets):.1f}"
    )
    print("  (TM_G trades extra runtime for smaller rings -> lower fees)\n")


if __name__ == "__main__":
    example_1()
    compare_selectors()
