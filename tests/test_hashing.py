"""Unit tests for domain-separated hashing."""

from repro.crypto.ed25519 import IDENTITY, L, is_on_curve, scalar_mult
from repro.crypto.hashing import digest_hex, hash_to_point, hash_to_scalar, sha512


class TestSha512:
    def test_deterministic(self):
        assert sha512("d", b"x") == sha512("d", b"x")

    def test_domain_separation(self):
        assert sha512("a", b"x") != sha512("b", b"x")

    def test_chunk_framing_prevents_concatenation_collisions(self):
        assert sha512("d", b"ab", b"c") != sha512("d", b"a", b"bc")

    def test_output_length(self):
        assert len(sha512("d", b"")) == 64


class TestHashToScalar:
    def test_in_range(self):
        scalar = hash_to_scalar("d", b"payload")
        assert 0 < scalar < L

    def test_deterministic(self):
        assert hash_to_scalar("d", b"p") == hash_to_scalar("d", b"p")

    def test_different_inputs_differ(self):
        assert hash_to_scalar("d", b"p") != hash_to_scalar("d", b"q")

    def test_domain_separation(self):
        assert hash_to_scalar("d1", b"p") != hash_to_scalar("d2", b"p")


class TestHashToPoint:
    def test_on_curve(self):
        point = hash_to_point("d", b"payload")
        assert is_on_curve(point)

    def test_in_prime_subgroup(self):
        point = hash_to_point("d", b"payload")
        assert scalar_mult(L, point) == IDENTITY

    def test_not_identity(self):
        assert hash_to_point("d", b"payload") != IDENTITY

    def test_deterministic(self):
        assert hash_to_point("d", b"p") == hash_to_point("d", b"p")

    def test_different_inputs_differ(self):
        assert hash_to_point("d", b"p") != hash_to_point("d", b"q")


class TestDigestHex:
    def test_hex_format(self):
        digest = digest_hex("d", b"p")
        assert len(digest) == 64
        int(digest, 16)  # must parse as hex

    def test_deterministic(self):
        assert digest_hex("d", b"p") == digest_hex("d", b"p")
