"""Crash safety: the journal, recovery replay, and idempotent retry.

Four layers of pinning:

* the WAL framing is tamper-evident and replayable — CRC framing,
  strict (epoch, seq) monotonicity, torn-tail truncation at the last
  valid frame, snapshot compaction bounding the tail;
* a daemon rebuilt from snapshot + WAL answers **byte-identically** to
  an uncrashed twin that applied the same commits (the
  test_service_equivalence convention, minus execution coordinates);
* the client turns transport loss into exactly-once semantics: typed
  :class:`~repro.service.client.ServiceUnavailable` (never a bare
  ``BrokenPipeError``), deadline-aware reconnect with seeded backoff,
  idempotency-key resend that survives a commit applied-but-unacked;
* the seeded SIGKILL soak: a real ``serve --journal`` subprocess is
  killed at seeded points under commit-interleaved load, restarted,
  and must come back with every acknowledged ring present and every
  replayed response byte-identical to the uncrashed reference.
"""

from __future__ import annotations

import os
import random
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.resilience import faults
from repro.service import (
    Journal,
    JournalCorruption,
    JournalError,
    PidFile,
    AlreadyRunning,
    RetrySpec,
    RouterConfig,
    SelectionService,
    SelectRequest,
    ServiceClient,
    ServiceConfig,
    ServiceUnavailable,
    ShardRouter,
    TokenPartition,
)
from repro.service.journal import (
    decode_frame,
    encode_frame,
    metrics_lines,
    ring_from_doc,
    ring_to_doc,
    scan_frames,
)
from repro.service.pidfile import pid_alive
from repro.service.server import handle_line
from repro.core.ring import Ring, TokenUniverse

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def recovery_universe(tokens: int = 24, hts: int = 6, seed: int = 3) -> TokenUniverse:
    """Same construction as the CLI's synthetic serve universe."""
    rng = random.Random(seed)
    return TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(hts)}" for i in range(tokens)}
    )


def canon(response) -> dict:
    """A response minus its execution coordinates (shard-test convention)."""
    payload = response.to_dict() if hasattr(response, "to_dict") else dict(response)
    for key in ("elapsed", "batch_id", "batch_size", "warm_cache"):
        payload.pop(key, None)
    attrs = payload.get("attrs")
    if attrs is not None:
        attrs.pop("memo", None)
        if not attrs:
            payload.pop("attrs")
    return payload


# -- framing -----------------------------------------------------------------


def test_frame_roundtrip_and_crc_detection():
    body = {"op": "commit", "epoch": 3, "seq": 2, "token": "r2"}
    line = encode_frame(body)
    assert decode_frame(line) == body
    # Flip one body byte: the CRC catches it before the JSON parser.
    tampered = line[:-2] + ("0" if line[-2] != "0" else "1") + line[-1]
    with pytest.raises(JournalCorruption, match="CRC mismatch"):
        decode_frame(tampered)
    with pytest.raises(JournalCorruption, match="malformed frame header"):
        decode_frame("not a frame")
    with pytest.raises(JournalCorruption, match="bad CRC field"):
        decode_frame("zzzzzzzz " + line[9:])


def test_scan_frames_torn_tail_and_monotonicity(tmp_path):
    wal = tmp_path / "wal.jsonl"
    frames = [
        {"op": "commit", "epoch": 1, "seq": 0},
        {"op": "commit", "epoch": 2, "seq": 1},
    ]
    text = "".join(encode_frame(f) + "\n" for f in frames)
    # A torn final line: valid CRC but no newline terminator.
    wal.write_text(text + encode_frame({"op": "commit", "epoch": 3, "seq": 2}))
    scanned, valid_bytes, damage = scan_frames(wal)
    assert [f["epoch"] for f in scanned] == [1, 2]
    assert valid_bytes == len(text.encode())
    assert "torn tail" in damage

    # A non-monotonic key ends the replay at the last good frame.
    wal.write_text(text + encode_frame({"op": "commit", "epoch": 2, "seq": 1}) + "\n")
    scanned, _, damage = scan_frames(wal)
    assert [f["epoch"] for f in scanned] == [1, 2]
    assert "non-monotonic" in damage

    # Clean file: no damage.
    wal.write_text(text)
    scanned, valid_bytes, damage = scan_frames(wal)
    assert damage is None and valid_bytes == len(text.encode())


def test_ring_doc_roundtrip():
    ring = Ring("r7", frozenset({"t01", "t05"}), c=2.5, ell=3, seq=7)
    assert ring_from_doc(ring_to_doc(ring)) == ring


# -- the journal write/replay cycle ------------------------------------------


def test_journal_genesis_commit_recover_roundtrip(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    journal.append_genesis(universe, (), None)
    rings = [
        Ring(f"r{i}", frozenset({f"t{2*i:02d}", f"t{2*i+1:02d}"}), c=1.0,
             ell=1, seq=i)
        for i in range(4)
    ]
    for i, ring in enumerate(rings):
        journal.append_commit(i + 1, ring)
    journal.close()

    recovered = Journal(tmp_path / "j").recover()
    assert recovered.epoch == 4
    assert list(recovered.rings) == rings
    assert recovered.universe.tokens == universe.tokens
    assert all(
        recovered.universe.ht_of(t) == universe.ht_of(t)
        for t in universe.tokens
    )
    assert recovered.recovery == {
        "snapshot_epoch": 0,
        "frames_replayed": 4,
        "torn_tail": False,
        "truncated_bytes": 0,
        "damage": None,
    }


def test_recover_on_empty_directory_is_fresh_start(tmp_path):
    assert Journal(tmp_path / "nothing").recover() is None


def test_recover_without_genesis_or_snapshot_raises(tmp_path):
    journal = Journal(tmp_path / "j", snapshot_every=0)
    ring = Ring("r0", frozenset({"t00"}), c=1.0, ell=1, seq=0)
    journal.append_commit(1, ring)
    journal.close()
    with pytest.raises(JournalError, match="no genesis frame"):
        Journal(tmp_path / "j").recover()


def test_snapshot_compaction_bounds_wal_and_prunes(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=2)
    journal.append_genesis(universe, (), None)
    rings: list[Ring] = []
    for i in range(7):
        ring = Ring(f"r{i}", frozenset({f"t{(3 * i) % 24:02d}",
                                        f"t{(3 * i + 1) % 24:02d}"}),
                    c=1.0, ell=1, seq=i)
        rings.append(ring)
        journal.append_commit(i + 1, ring)
        journal.maybe_snapshot(i + 1, universe, rings, None)
    journal.close()

    home = tmp_path / "j"
    snapshots = sorted(p.name for p in home.glob("snapshot-*.json"))
    # Compaction every 2 commits, keeping the 2 newest.
    assert snapshots == ["snapshot-00000004.json", "snapshot-00000006.json"]
    # The WAL holds only the post-snapshot tail.
    frames, _, damage = scan_frames(home / "wal.jsonl")
    assert damage is None
    assert [f["epoch"] for f in frames] == [7]

    recovered = Journal(home).recover()
    assert recovered.epoch == 7
    assert list(recovered.rings) == rings
    assert recovered.recovery["snapshot_epoch"] == 6
    assert recovered.recovery["frames_replayed"] == 1


def test_recover_falls_back_past_a_corrupt_snapshot(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    journal.append_genesis(universe, (), None)
    rings: list[Ring] = []
    for i in range(4):
        ring = Ring(f"r{i}", frozenset({f"t{i:02d}"}), c=1.0, ell=1, seq=i)
        rings.append(ring)
        journal.append_commit(i + 1, ring)
        if i == 1:
            journal.write_snapshot(2, universe, rings, None)
    journal.close()
    home = tmp_path / "j"
    # Corrupt the newest snapshot: recovery must skip it and fall back
    # to an older valid one (planted below) instead of aborting.
    path = home / "snapshot-00000002.json"
    good_line = path.read_text()
    (home / "snapshot-00000001.json").write_text(
        encode_frame(
            {
                "version": 1,
                "op": "snapshot",
                "epoch": 1,
                "seq": 0,
                "data": {
                    "universe": {t: universe.ht_of(t) for t in sorted(universe.tokens)},
                    "rings": [ring_to_doc(rings[0])],
                    "batches": None,
                },
            }
        )
        + "\n"
    )
    path.write_text(good_line[:20] + "X" + good_line[21:])  # break the CRC

    recovered = Journal(home).recover()
    # Fallback snapshot is at epoch 1; frames 3 and 4 replay on top.
    assert recovered.epoch == 4
    assert [r.rid for r in recovered.rings] == ["r0", "r2", "r3"]
    assert any("unusable" in note for note in recovered.recovery["notes"])


def test_recover_truncates_torn_tail_and_reports(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    journal.append_genesis(universe, (), None)
    ring = Ring("r0", frozenset({"t00", "t01"}), c=1.0, ell=1, seq=0)
    journal.append_commit(1, ring)
    journal.close()

    wal = tmp_path / "j" / "wal.jsonl"
    clean_size = wal.stat().st_size
    # A crash mid-append: half a frame, no newline.
    with open(wal, "a", encoding="utf-8") as handle:
        handle.write(encode_frame({"op": "commit", "epoch": 2, "seq": 1})[:25])

    recovered = Journal(tmp_path / "j").recover()
    assert recovered.epoch == 1
    assert [r.rid for r in recovered.rings] == ["r0"]
    assert recovered.recovery["torn_tail"] is True
    assert recovered.recovery["truncated_bytes"] > 0
    assert "torn tail" in recovered.recovery["damage"]
    # The truncation persisted: the next recovery sees a clean journal.
    assert wal.stat().st_size == clean_size
    again = Journal(tmp_path / "j").recover()
    assert again.recovery["torn_tail"] is False
    assert again.epoch == 1


def test_recover_stops_at_corrupt_middle_frame(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    journal.append_genesis(universe, (), None)
    for i in range(3):
        journal.append_commit(
            i + 1, Ring(f"r{i}", frozenset({f"t{i:02d}"}), c=1.0, ell=1, seq=i)
        )
    journal.close()
    wal = tmp_path / "j" / "wal.jsonl"
    lines = wal.read_text().splitlines()
    lines[2] = lines[2][:4] + ("0" if lines[2][4] != "0" else "1") + lines[2][5:]
    wal.write_text("\n".join(lines) + "\n")

    recovered = Journal(tmp_path / "j").recover()
    # Frames after the corrupt one are gone too — there is no way to
    # trust anything past the first damage.
    assert recovered.epoch == 1
    assert [r.rid for r in recovered.rings] == ["r0"]
    assert "CRC mismatch" in recovered.recovery["damage"]


def test_double_appended_commit_frame_replays_once(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    journal.append_genesis(universe, (), None)
    ring = Ring("r0", frozenset({"t00", "t01"}), c=1.0, ell=1, seq=0)
    journal.append_commit(1, ring)
    # A retried append that slipped through (same token, later key):
    journal.append(
        {
            "version": 1,
            "op": "commit",
            "epoch": 2,
            "seq": 1,
            "token": ring.rid,
            "data": ring_to_doc(ring),
        }
    )
    journal.close()
    recovered = Journal(tmp_path / "j").recover()
    assert [r.rid for r in recovered.rings] == ["r0"]
    assert recovered.epoch == 1  # the duplicate advanced nothing


def test_journal_fault_sites_fire(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    ring = Ring("r0", frozenset({"t00"}), c=1.0, ell=1, seq=0)

    def plan(site):
        return faults.FaultPlan(
            [faults.FaultSpec(site=site, action="io_error")], seed=0
        )

    with faults.injecting(plan("journal.append")):
        with pytest.raises(faults.InjectedIOError):
            journal.append_genesis(universe, (), None)
    journal.append_genesis(universe, (), None)
    with faults.injecting(plan("journal.fsync")):
        with pytest.raises(faults.InjectedIOError):
            journal.append_commit(1, ring)
    journal.close()
    with faults.injecting(plan("journal.replay")):
        with pytest.raises(faults.InjectedIOError):
            Journal(tmp_path / "j").recover()


def test_journal_stats_and_metrics_lines(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=2, snapshot_every=0)
    journal.append_genesis(universe, (), None)
    journal.append_commit(
        1, Ring("r0", frozenset({"t00"}), c=1.0, ell=1, seq=0)
    )
    stats = journal.stats()
    assert stats["sync_every"] == 2
    assert stats["appends"] == 2
    assert stats["lag_frames"] == 1  # one unsynced frame outstanding
    journal.sync()
    assert journal.stats()["lag_frames"] == 0
    journal.close()

    text = metrics_lines(stats, {"frames_replayed": 3, "snapshot_epoch": 2,
                                 "torn_tail": True, "truncated_bytes": 17})
    assert "repro_service_journal_appends_total 2" in text
    assert "repro_service_recovered_frames_replayed 3" in text
    assert "repro_service_recovered_torn_tail 1" in text
    assert metrics_lines(None, None) == ""


# -- service-level recovery equivalence --------------------------------------


def select_battery(partition: TokenPartition) -> list[SelectRequest]:
    """Exact selects on unconsumed targets, two per batch.

    The commit helpers below consume only the low indexes of each
    batch slice, so slots 4 and 5 stay free — exact solves on the
    6-token batch slices stay cheap (the full 24-token universe in
    exact mode blows up combinatorially once rings accumulate).
    """
    requests = []
    for b in range(partition.batches):
        for j, slot in enumerate((4, 5)):
            requests.append(
                SelectRequest(
                    request_id=f"b{b}-{j}",
                    target=partition.tokens_of(b)[slot],
                    c=2.0, ell=2, mode="exact",
                )
            )
    return requests


def test_daemon_recovery_matches_uncrashed_twin(tmp_path):
    universe = recovery_universe()
    part = TokenPartition(universe, batches=4)
    commits = [
        (f"r{i}", sorted(part.tokens_of(i)[0:3])) for i in range(4)
    ]

    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=3)
    journal.append_genesis(universe, (), 4)
    with SelectionService(
        universe, config=ServiceConfig(journal=journal, partition=4)
    ) as crashed:
        for i, (rid, tokens) in enumerate(commits):
            crashed.submit_wait(
                SelectRequest(request_id=f"w{i}",
                              target=part.tokens_of(i)[4],
                              c=2.0, ell=2, mode="exact"),
                timeout=60.0,
            )
            crashed.commit_ring(tokens, c=1.0, ell=1, rid=rid)
    # "Crash": the journal is simply never closed gracefully by the
    # service; every commit frame is already fsynced.

    recovered = Journal(tmp_path / "j").recover()
    assert recovered.epoch == 4
    assert recovered.batches == 4
    twin = SelectionService(
        recovered.universe,
        recovered.rings,
        ServiceConfig(partition=recovered.batches),
        epoch=recovered.epoch,
        recovered=recovered.recovery,
    )
    uncrashed = SelectionService(universe, config=ServiceConfig(partition=4))
    for rid, tokens in commits:
        uncrashed.commit_ring(tokens, c=1.0, ell=1, rid=rid)
    with twin, uncrashed:
        for request in select_battery(part):
            a = twin.submit_wait(request, timeout=60.0)
            b = uncrashed.submit_wait(request, timeout=60.0)
            assert a.epoch == 4 and b.epoch == 4
            assert canon(a) == canon(b)

        # The typed recovered block reaches stats, health and metrics.
        stats = twin.stats()
        assert stats["recovered"]["snapshot_epoch"] == 3
        assert stats["recovered"]["frames_replayed"] == 1
        assert stats["recovered"]["torn_tail"] is False
        assert twin.health()["recovered"]["frames_replayed"] == 1
        assert "repro_service_recovered_frames_replayed 1" in twin.metrics_text()


def test_recovery_replay_equivalent_in_both_epoch_modes(tmp_path):
    """Journal replay lands on the same answers under replace and delta.

    The WAL records chain growth, not cache policy — ``epoch_mode`` is
    a serving knob of the daemon that replays it.  A crashed delta-mode
    daemon may therefore be recovered into either mode (and vice
    versa): both twins, *and* their post-recovery delta/replace
    commits, must answer byte-identically to the uncrashed reference.
    """
    universe = recovery_universe()
    part = TokenPartition(universe, batches=4)
    commits = [
        (f"r{i}", sorted(part.tokens_of(i)[0:3])) for i in range(4)
    ]

    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    journal.append_genesis(universe, (), 4)
    with SelectionService(
        universe,
        config=ServiceConfig(journal=journal, partition=4, epoch_mode="delta"),
    ) as crashed:
        for i, (rid, tokens) in enumerate(commits):
            # Warm each batch between commits so the delta advances
            # exercised here actually carry state, not empty caches.
            crashed.submit_wait(
                SelectRequest(request_id=f"w{i}",
                              target=part.tokens_of(i)[4],
                              c=2.0, ell=2, mode="exact"),
                timeout=60.0,
            )
            crashed.commit_ring(tokens, c=1.0, ell=1, rid=rid)

    recovered = Journal(tmp_path / "j").recover()
    assert recovered.epoch == 4
    twins = {
        mode: SelectionService(
            recovered.universe,
            recovered.rings,
            ServiceConfig(partition=recovered.batches, epoch_mode=mode),
            epoch=recovered.epoch,
            recovered=recovered.recovery,
        )
        for mode in ("replace", "delta")
    }
    uncrashed = SelectionService(universe, config=ServiceConfig(partition=4))
    for rid, tokens in commits:
        uncrashed.commit_ring(tokens, c=1.0, ell=1, rid=rid)
    extra = ("r4", sorted(part.tokens_of(1)[0:2]))
    with twins["replace"], twins["delta"], uncrashed:
        # One more commit *after* recovery: the delta twin advances its
        # recovered snapshot incrementally, the replace twin rebuilds.
        for service in (*twins.values(), uncrashed):
            service.commit_ring(extra[1], c=1.0, ell=1, rid=extra[0])
        for request in select_battery(part):
            baseline = uncrashed.submit_wait(request, timeout=60.0)
            assert baseline.epoch == 5
            for mode, twin in twins.items():
                answer = twin.submit_wait(request, timeout=60.0)
                assert answer.epoch == 5
                assert canon(answer) == canon(baseline), (
                    f"{mode}-mode recovered twin diverged on "
                    f"{request.request_id}"
                )
        assert twins["delta"].stats()["delta"]["commits"] == 1
        assert twins["replace"].stats()["delta"]["commits"] == 0


def test_journaled_commit_is_idempotent_by_rid(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    journal.append_genesis(universe, (), None)
    service = SelectionService(universe, config=ServiceConfig(journal=journal))
    first = service.commit_ring(["t00", "t01"], c=1.0, ell=1, rid="dup")
    replay = service.commit_ring(["t00", "t01"], c=1.0, ell=1, rid="dup")
    assert first.epoch == 1 and replay.epoch == 1
    assert service.counters["commits.replayed"] == 1
    journal.close()
    # Only one frame landed: the replay never touched the WAL.
    frames, _, _ = scan_frames(tmp_path / "j" / "wal.jsonl")
    assert [f.get("token") for f in frames] == [None, "dup"]


def test_doomed_commit_never_lands_a_wal_frame(tmp_path):
    universe = recovery_universe()
    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    journal.append_genesis(universe, (), 4)
    part = TokenPartition(universe, batches=4)
    spanning = [part.tokens_of(0)[0], part.tokens_of(1)[0]]
    service = SelectionService(
        universe, config=ServiceConfig(journal=journal, partition=4)
    )
    with pytest.raises(ValueError, match="spans batches"):
        service.commit_ring(spanning, c=1.0, ell=1)
    journal.close()
    frames, _, _ = scan_frames(tmp_path / "j" / "wal.jsonl")
    assert len(frames) == 1  # genesis only


def test_router_recovery_matches_uncrashed_twin(tmp_path):
    universe = recovery_universe()
    part = TokenPartition(universe, batches=4)
    commits = [
        (f"r{i}", sorted(part.tokens_of(i % 4)[0:3])) for i in range(4)
    ]
    requests = [
        SelectRequest(request_id=f"q{i}", target=part.tokens_of(i)[4],
                      c=2.0, ell=2, mode="exact")
        for i in range(4)
    ]

    journal = Journal(tmp_path / "j", sync_every=1, snapshot_every=0)
    journal.append_genesis(universe, (), 4)
    with ShardRouter(
        universe, config=RouterConfig(shards=2, batches=4, journal=journal)
    ) as crashed:
        for rid, tokens in commits:
            crashed.commit_ring(tokens, c=1.0, ell=1, rid=rid)

    recovered = Journal(tmp_path / "j").recover()
    assert recovered.epoch == 4 and recovered.batches == 4
    with ShardRouter(
        recovered.universe,
        recovered.rings,
        config=RouterConfig(shards=2, batches=recovered.batches),
        epoch=recovered.epoch,
        recovered=recovered.recovery,
    ) as twin, ShardRouter(
        universe, config=RouterConfig(shards=2, batches=4)
    ) as uncrashed:
        for rid, tokens in commits:
            uncrashed.commit_ring(tokens, c=1.0, ell=1, rid=rid)
        got = twin.submit_wait_many(requests, timeout=60.0)
        want = uncrashed.submit_wait_many(requests, timeout=60.0)
        assert [canon(a) for a in got] == [canon(b) for b in want]
        assert all(r.epoch == 4 for r in got)
        stats = twin.stats()
        assert stats["recovered"]["frames_replayed"] == 4
        assert "repro_service_recovered_frames_replayed 4" in twin.metrics_text()


# -- the pidfile guard -------------------------------------------------------


def test_pidfile_refuses_live_owner_and_reclaims_stale(tmp_path):
    target = tmp_path / "daemon.pid"
    sleeper = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])
    try:
        target.write_text(f"{sleeper.pid}\n")
        with pytest.raises(AlreadyRunning, match=f"pid {sleeper.pid}"):
            PidFile(target).acquire()
    finally:
        sleeper.kill()
        sleeper.wait()
    # The owner is dead now: the stale pidfile is reclaimed silently.
    assert not pid_alive(sleeper.pid)
    guard = PidFile(target).acquire()
    assert guard.read() == os.getpid()
    guard.release()
    assert not target.exists()


def test_pidfile_garbled_content_is_reclaimed(tmp_path):
    target = tmp_path / "daemon.pid"
    target.write_text("not-a-pid\n")
    with PidFile(target) as guard:
        assert guard.read() == os.getpid()
    assert not target.exists()


def test_pidfile_release_spares_a_reclaimed_file(tmp_path):
    target = tmp_path / "daemon.pid"
    guard = PidFile(target).acquire()
    target.write_text("424242\n")  # someone else took over
    guard.release()
    assert target.read_text() == "424242\n"


# -- typed transport loss + idempotent retry ---------------------------------


def test_connect_refused_raises_service_unavailable(tmp_path):
    with pytest.raises(ServiceUnavailable, match="cannot connect"):
        ServiceClient(tmp_path / "nope.sock")


class FlakyServer:
    """A unix-socket server that mistreats its first connections.

    ``crash_mode``:

    * ``"before_apply"`` — read the request, apply nothing, close:
      the daemon died before the commit landed;
    * ``"after_apply"`` — read the request, apply it to the service,
      close *without replying*: the commit landed but the ack was
      lost — the resend must deduplicate.

    Connections after the first ``crashes`` speak the real protocol
    (lockstep, via :func:`repro.service.server.handle_line`).
    """

    def __init__(self, path, service, crashes=1, crash_mode="before_apply"):
        self.path = os.fspath(path)
        self.service = service
        self.crashes = crashes
        self.crash_mode = crash_mode
        self.connections = 0
        self._stop = threading.Event()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(5.0)
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self.thread.join(timeout=5.0)
        if os.path.exists(self.path):
            os.unlink(self.path)

    def _run(self):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as listener:
            listener.bind(self.path)
            listener.listen()
            listener.settimeout(0.1)
            self._ready.set()
            while not self._stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                self.connections += 1
                with conn:
                    if self.connections <= self.crashes:
                        data = conn.recv(65536)
                        if self.crash_mode == "after_apply" and data:
                            line = data.decode().splitlines()[0]
                            handle_line(self.service, line)
                        continue  # close without replying: "crash"
                    buffer = b""
                    conn.settimeout(0.1)
                    while not self._stop.is_set():
                        try:
                            chunk = conn.recv(65536)
                        except socket.timeout:
                            continue
                        except OSError:
                            break
                        if not chunk:
                            break
                        buffer += chunk
                        while b"\n" in buffer:
                            raw, buffer = buffer.split(b"\n", 1)
                            response, _ = handle_line(self.service, raw.decode())
                            conn.sendall((response + "\n").encode())


def test_peer_death_mid_request_raises_typed_error(tmp_path):
    universe = recovery_universe()
    service = SelectionService(universe, config=ServiceConfig(telemetry=False))
    with FlakyServer(tmp_path / "svc.sock", service, crashes=1) as server:
        client = ServiceClient(server.path)  # no retry configured
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.stats()
        # Typed, not a bare BrokenPipeError/ConnectionResetError.
        assert not isinstance(excinfo.value, BrokenPipeError)
        assert "closed the connection" in str(excinfo.value)
        client.close()


def test_retry_resends_after_lost_ack_without_double_commit(tmp_path):
    universe = recovery_universe()
    service = SelectionService(universe, config=ServiceConfig(telemetry=False))
    # The nastier half of exactly-once: the commit APPLIED, the ack
    # was lost.  The resend must be deduplicated by rid.
    with FlakyServer(
        tmp_path / "svc.sock", service, crashes=1, crash_mode="after_apply"
    ) as server:
        client = ServiceClient(
            server.path,
            retry=RetrySpec(deadline_s=10.0, base_delay_s=0.01, seed=1),
        )
        ack = client.commit(["t00", "t01"], c=1.0, ell=1, rid="once")
        assert ack["status"] == "ok"
        assert ack["epoch"] == 1 and ack["rings"] == 1
        assert service.state.epoch == 1  # applied exactly once
        client.close()


def test_retry_applies_commit_lost_before_the_frame(tmp_path):
    universe = recovery_universe()
    service = SelectionService(universe, config=ServiceConfig(telemetry=False))
    with FlakyServer(
        tmp_path / "svc.sock", service, crashes=1, crash_mode="before_apply"
    ) as server:
        client = ServiceClient(
            server.path,
            retry=RetrySpec(deadline_s=10.0, base_delay_s=0.01, seed=1),
        )
        ack = client.commit(["t02", "t03"], c=1.0, ell=1)  # rid auto-generated
        assert ack["status"] == "ok" and ack["epoch"] == 1
        assert service.state.epoch == 1
        client.close()


def test_retry_deadline_exhaustion_reports_attempts(tmp_path):
    with pytest.raises(ServiceUnavailable, match=r"attempt\(s\) within"):
        ServiceClient(
            tmp_path / "never.sock",
            retry=RetrySpec(deadline_s=0.3, base_delay_s=0.05, seed=2),
        )


def test_client_reconnect_fault_site_fires(tmp_path):
    plan = faults.FaultPlan(
        [faults.FaultSpec(site="client.reconnect", action="error",
                          at_index=None, on_attempt=0)],
        seed=0,
    )
    with faults.injecting(plan):
        with pytest.raises(faults.InjectedFault, match="client.reconnect"):
            ServiceClient(
                tmp_path / "never.sock",
                retry=RetrySpec(deadline_s=0.5, base_delay_s=0.01, seed=3),
            )


def test_shutdown_is_never_retried(tmp_path):
    universe = recovery_universe()
    service = SelectionService(universe, config=ServiceConfig(telemetry=False))
    with FlakyServer(tmp_path / "svc.sock", service, crashes=2) as server:
        client = ServiceClient(
            server.path,
            retry=RetrySpec(deadline_s=5.0, base_delay_s=0.01, seed=4),
        )
        with pytest.raises(ServiceUnavailable):
            client.shutdown()
        assert server.connections == 1  # no reconnect attempt
        client.close()


# -- the seeded SIGKILL soak -------------------------------------------------


def serve_command(sock: Path, journal: Path) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli", "serve",
        "--socket", str(sock),
        "--journal", str(journal),
        "--tokens", "24", "--hts", "6", "--seed", "3",
        "--batches", "4",
        "--snapshot-every", "4",
    ]


def start_daemon(sock: Path, journal: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        serve_command(sock, journal),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited early ({proc.returncode}): {proc.stderr.read()}"
            )
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(str(sock))
            probe.close()
            return proc
        except OSError:
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never became ready")


@pytest.mark.slow
def test_sigkill_soak_recovers_byte_identical(tmp_path):
    """SIGKILL the daemon at seeded points under commit-interleaved load.

    Every acknowledged commit must be present after each restart, the
    retrying client must complete all of them exactly once, and the
    recovered daemon's answers must be byte-identical to an uncrashed
    in-process twin that applied the same commits in the same order.
    """
    sock = tmp_path / "soak.sock"
    journal_dir = tmp_path / "journal"
    # Batch-local pairs (the serve partition is 4 contiguous 6-token
    # slices): commit i consumes two low-index tokens of batch i % 4,
    # leaving slots 4 and 5 of every batch free for the selects.
    commits = [
        (f"soak:{i}",
         [f"t{6 * (i % 4) + 2 * (i // 4):02d}",
          f"t{6 * (i % 4) + 2 * (i // 4) + 1:02d}"])
        for i in range(8)
    ]
    rng = random.Random(20260808)
    kill_after = sorted(rng.sample(range(1, len(commits) - 1), 2))

    proc = start_daemon(sock, journal_dir)
    client = ServiceClient(
        sock, timeout=30.0,
        retry=RetrySpec(deadline_s=30.0, base_delay_s=0.05, seed=11),
    )
    acked: list[str] = []
    errors: list[BaseException] = []

    def drive() -> None:
        try:
            for i, (rid, tokens) in enumerate(commits):
                client.select(
                    target=f"t{6 * (i % 4) + 4:02d}", c=2.0, ell=2,
                    mode="exact", request_id=f"load{i}",
                )
                ack = client.commit(tokens, c=1.0, ell=1, rid=rid)
                assert ack["status"] == "ok", ack
                acked.append(rid)
        except BaseException as exc:  # noqa: BLE001 - surfaced by the test
            errors.append(exc)

    driver = threading.Thread(target=drive, daemon=True)
    driver.start()
    try:
        for kill_point in kill_after:
            # Seeded-but-randomized: wait until the driver has acked
            # `kill_point` commits, then SIGKILL mid-traffic after a
            # seeded extra delay (the next commit is likely in flight).
            deadline = time.monotonic() + 60.0
            while len(acked) < kill_point and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(rng.uniform(0.0, 0.1))
            proc.kill()  # SIGKILL — no cleanup, no flush, no goodbye
            proc.wait()
            proc = start_daemon(sock, journal_dir)
        driver.join(timeout=120.0)
        assert not driver.is_alive(), "driver never finished"
        assert not errors, errors
        assert acked == [rid for rid, _ in commits]

        # Every acknowledged commit survived; the epoch counted each
        # exactly once.
        status = client.epoch()
        assert status["epoch"] == len(commits)
        assert status["rings"] == len(commits)

        stats = client.stats()
        assert "journal" in stats
        assert "recovered" in stats  # this daemon was itself a replay
        assert stats["recovered"]["frames_replayed"] >= 0

        # Byte-identical replay: an uncrashed in-process twin applies
        # the same commits in the same order.
        universe = recovery_universe()
        twin = SelectionService(universe, config=ServiceConfig(partition=4))
        for rid, tokens in commits:
            twin.commit_ring(tokens, c=1.0, ell=1, rid=rid)
        with twin:
            for request in select_battery(TokenPartition(universe, batches=4)):
                live = client.select(
                    target=request.target, c=request.c, ell=request.ell,
                    mode=request.mode, request_id=request.request_id,
                )
                local = twin.submit_wait(request, timeout=60.0)
                assert live.epoch == len(commits)
                assert canon(live) == canon(local)
        client.shutdown()
        proc.wait(timeout=30.0)
        proc = None
    finally:
        client.close()
        if proc is not None:
            proc.kill()
            proc.wait()

    # The journal on disk is internally consistent (the fsck pass).
    recovered = Journal(journal_dir).recover(truncate=False)
    assert recovered.epoch == len(commits)
    assert [r.rid for r in recovered.rings] == [rid for rid, _ in commits]


def test_serve_refuses_second_daemon_on_same_journal(tmp_path):
    sock = tmp_path / "one.sock"
    journal_dir = tmp_path / "journal"
    proc = start_daemon(sock, journal_dir)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    try:
        second = subprocess.run(
            serve_command(tmp_path / "two.sock", journal_dir),
            env=env, capture_output=True, text=True, timeout=30.0,
        )
        assert second.returncode == 69  # EX_UNAVAILABLE
        assert "refusing" in second.stderr
        with ServiceClient(sock) as client:
            client.shutdown()
        proc.wait(timeout=30.0)
        proc = None
    finally:
        if proc is not None:
            proc.kill()
            proc.wait()
    # The first daemon exited cleanly: its pidfile is gone, so a
    # restart owns the journal again (and replays genesis).
    third = start_daemon(sock, journal_dir)
    try:
        with ServiceClient(sock) as client:
            assert client.epoch()["epoch"] == 0
            client.shutdown()
        third.wait(timeout=30.0)
        third = None
    finally:
        if third is not None:
            third.kill()
            third.wait()
