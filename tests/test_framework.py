"""Tests for the TokenMagic framework facade (Algorithm 1)."""

import random

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.errors import ConfigurationViolation
from repro.chain.transaction import RingInput, Transaction
from repro.core.diversity import ht_counts_satisfy
from repro.core.problem import InfeasibleError
from repro.tokenmagic.framework import TokenMagic, TokenMagicConfig


def funded_chain(block_output_counts=(4, 4, 4)):
    chain = Blockchain(verify_signatures=False)
    for index, count in enumerate(block_output_counts):
        tx = Transaction(inputs=(), output_count=count, nonce=index)
        chain.append_block(chain.make_block([tx], timestamp=float(index)))
    return chain


class TestGenerateRing:
    def test_direct_mode_generates_valid_ring(self):
        chain = funded_chain()
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=12))
        token = sorted(chain.universe.tokens)[0]
        result = magic.generate_ring(token, c=2.0, ell=2)
        assert token in result.tokens
        counts = chain.universe.ht_counts(result.tokens)
        # Second configuration: ring targets (c, l+1).
        assert ht_counts_satisfy(counts, 2.0, 3)

    def test_second_config_can_be_disabled(self):
        chain = funded_chain()
        magic = TokenMagic(
            chain,
            TokenMagicConfig(batch_lambda=12, apply_second_config=False),
        )
        token = sorted(chain.universe.tokens)[0]
        result = magic.generate_ring(token, c=2.0, ell=2)
        counts = chain.universe.ht_counts(result.tokens)
        assert ht_counts_satisfy(counts, 2.0, 2)

    def test_ring_stays_inside_batch(self):
        chain = funded_chain((4, 4, 4, 4))
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=8))
        batches = magic.batches()
        assert len(batches) == 2
        token = sorted(batches[1].universe.tokens)[0]
        # Each batch spans 2 blocks = 2 HTs, so ask for l = 1 (the
        # second configuration lifts it to 2).
        result = magic.generate_ring(token, c=2.0, ell=1)
        assert result.tokens <= batches[1].universe.tokens

    def test_candidate_mode_randomizes(self):
        chain = funded_chain()
        magic = TokenMagic(
            chain, TokenMagicConfig(batch_lambda=12, candidate_mode=True)
        )
        token = sorted(chain.universe.tokens)[0]
        result = magic.generate_ring(token, c=2.0, ell=2, rng=random.Random(3))
        assert token in result.tokens
        assert result.target_token == token

    def test_selector_can_be_swapped(self):
        chain = funded_chain()
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=12))
        token = sorted(chain.universe.tokens)[0]
        result = magic.generate_ring(token, c=2.0, ell=2, algorithm="smallest")
        assert result.algorithm == "smallest"

    def test_infeasible_requirement_raises(self):
        chain = funded_chain((4,))  # one HT only
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=4))
        token = sorted(chain.universe.tokens)[0]
        with pytest.raises(InfeasibleError):
            magic.generate_ring(token, c=2.0, ell=3)


class TestCommitRing:
    def test_commit_registers_in_batch(self):
        chain = funded_chain()
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=12))
        token = sorted(chain.universe.tokens)[0]
        result = magic.generate_ring(token, c=2.0, ell=2)
        ring = magic.commit_ring(result, c=2.0, ell=2)
        batch = magic.batches()[0]
        registry = magic.registry_for(batch)
        assert ring in registry.rings

    def test_committed_rings_shape_later_selections(self):
        chain = funded_chain()
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=12))
        tokens = sorted(chain.universe.tokens)
        first = magic.generate_ring(tokens[0], c=2.0, ell=2)
        magic.commit_ring(first, c=2.0, ell=2)
        second = magic.generate_ring(tokens[1], c=2.0, ell=2)
        # Configuration 1: the new ring is a superset of or disjoint
        # from the committed one.
        assert (
            first.tokens <= second.tokens
            or first.tokens.isdisjoint(second.tokens)
        )


class TestPolicyVerifier:
    def test_cross_batch_ring_rejected(self):
        chain = funded_chain((4, 4, 4, 4))
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=8))
        verifier = magic.policy_verifier()
        batches = magic.batches()
        mixed = tuple(
            sorted(
                [sorted(batches[0].universe.tokens)[0]]
                + [sorted(batches[1].universe.tokens)[0]]
            )
        )
        with pytest.raises(ConfigurationViolation):
            verifier(chain, RingInput(ring_tokens=mixed))

    def test_partial_overlap_rejected(self):
        chain = funded_chain()
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=12))
        tokens = sorted(chain.universe.tokens)
        # Put an existing ring on chain.
        existing = Transaction(
            inputs=(RingInput(ring_tokens=tuple(sorted(tokens[:3]))),),
            output_count=1,
        )
        chain.append_block(chain.make_block([existing], timestamp=10.0))
        verifier = magic.policy_verifier()
        overlap = tuple(sorted([tokens[2], tokens[4]]))
        with pytest.raises(ConfigurationViolation):
            verifier(chain, RingInput(ring_tokens=overlap))

    def test_superset_accepted(self):
        chain = funded_chain()
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=12))
        tokens = sorted(chain.universe.tokens)
        existing = Transaction(
            inputs=(RingInput(ring_tokens=tuple(sorted(tokens[:3]))),),
            output_count=1,
        )
        chain.append_block(chain.make_block([existing], timestamp=10.0))
        verifier = magic.policy_verifier(check_diversity_claim=False)
        superset = tuple(sorted(tokens[:5]))
        verifier(chain, RingInput(ring_tokens=superset))  # must not raise

    def test_disjoint_accepted(self):
        chain = funded_chain()
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=12))
        tokens = sorted(chain.universe.tokens)
        existing = Transaction(
            inputs=(RingInput(ring_tokens=tuple(sorted(tokens[:3]))),),
            output_count=1,
        )
        chain.append_block(chain.make_block([existing], timestamp=10.0))
        verifier = magic.policy_verifier(check_diversity_claim=False)
        disjoint = tuple(sorted(tokens[4:6]))
        verifier(chain, RingInput(ring_tokens=disjoint))  # must not raise

    def test_diversity_claim_enforced(self):
        # A ring claiming (2.0, 2) whose tokens come from one HT is
        # rejected by the claim check and accepted without it.
        chain = funded_chain()
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=12))
        origin = chain.blocks[0].transactions[0].tx_id
        same_ht = tuple(sorted(f"{origin}:{i}" for i in range(3)))
        ring = RingInput(ring_tokens=same_ht, claimed_c=2.0, claimed_ell=2)
        lax = magic.policy_verifier(check_diversity_claim=False)
        lax(chain, ring)  # locality/config-1 alone passes
        strict = magic.policy_verifier(check_diversity_claim=True)
        with pytest.raises(ConfigurationViolation, match="diversity"):
            strict(chain, ring)

    def test_honest_framework_ring_passes_claim_check(self):
        chain = funded_chain()
        magic = TokenMagic(chain, TokenMagicConfig(batch_lambda=12))
        token = sorted(chain.universe.tokens)[0]
        result = magic.generate_ring(token, c=2.0, ell=2)
        ring = RingInput(
            ring_tokens=tuple(sorted(result.tokens)),
            claimed_c=2.0,
            claimed_ell=2,
        )
        verifier = magic.policy_verifier()
        verifier(chain, ring)  # must not raise

    def test_eta_reserve_enforced_by_verifier(self):
        chain = funded_chain((4,))
        magic = TokenMagic(
            chain, TokenMagicConfig(batch_lambda=4, eta=1.0)
        )
        tokens = sorted(chain.universe.tokens)
        first = Transaction(
            inputs=(RingInput(ring_tokens=tuple(sorted(tokens[:2]))),),
            output_count=1,
        )
        chain.append_block(chain.make_block([first], timestamp=10.0))
        verifier = magic.policy_verifier(check_diversity_claim=False)
        duplicate = RingInput(ring_tokens=tuple(sorted(tokens[:2])))
        with pytest.raises(ConfigurationViolation, match="reserve"):
            verifier(chain, duplicate)
