"""Unit tests for DTRS enumeration (Definition 2 / Algorithm 3)."""

import pytest

from repro.core.dtrs import Dtrs, get_dtrss, ring_is_recursive_diverse_exact
from repro.core.ring import Ring, TokenUniverse


def ring(rid, tokens, seq=0, c=1.0, ell=1):
    return Ring(rid=rid, tokens=frozenset(tokens), c=c, ell=ell, seq=seq)


class TestPaperExample2:
    """Example 2: five rings; t5, t6 share HT h1."""

    def setup_method(self):
        self.universe = TokenUniverse(
            {"t1": "ha", "t2": "hb", "t3": "hc", "t4": "hd", "t5": "h1", "t6": "h1"}
        )
        self.r1 = ring("r1", {"t1", "t2", "t5"}, seq=0)
        self.r2 = ring("r2", {"t1", "t3"}, seq=1)
        self.r3 = ring("r3", {"t1", "t3"}, seq=2)
        self.r4 = ring("r4", {"t2", "t4"}, seq=3)
        self.r5 = ring("r5", {"t4", "t5", "t6"}, seq=4)
        self.rings = [self.r1, self.r2, self.r3, self.r4, self.r5]

    def test_t2_r1_is_dtrs_of_r5(self):
        # The paper: {<t2, r1>} is a DTRS of r5 — knowing r1 consumed t2
        # forces r4 -> t4, so r5 consumes t5 or t6, both from h1.
        dtrss = get_dtrss(self.r5, self.rings, self.universe)
        pair_sets = {d.pairs for d in dtrss}
        assert frozenset({("t2", "r1")}) in pair_sets
        match = next(d for d in dtrss if d.pairs == frozenset({("t2", "r1")}))
        assert match.determined_ht == "h1"

    def test_r4_has_three_single_pair_dtrss(self):
        # The paper lists {<t4,r5>}, {<t5,r5>} and {<t2,r1>}... wait,
        # the last determines r4 -> t4 too; d1/d2 pin r4 via r5's token.
        dtrss = get_dtrss(self.r4, self.rings, self.universe)
        singletons = {d.pairs for d in dtrss if len(d.pairs) == 1}
        assert frozenset({("t4", "r5")}) in singletons
        assert frozenset({("t5", "r5")}) in singletons

    def test_minimality_no_dtrs_contains_another(self):
        for target in self.rings:
            dtrss = get_dtrss(target, self.rings, self.universe)
            for a in dtrss:
                for b in dtrss:
                    if a is not b:
                        assert not (a.pairs < b.pairs)


class TestDtrsSemantics:
    def test_no_dtrs_for_isolated_diverse_ring(self):
        universe = TokenUniverse({"a": "h1", "b": "h2"})
        r = ring("r", {"a", "b"})
        assert get_dtrss(r, [r], universe) == []

    def test_empty_dtrs_when_ht_already_determined(self):
        # All tokens share one HT: the empty pair set already determines it.
        universe = TokenUniverse({"a": "h1", "b": "h1"})
        r = ring("r", {"a", "b"})
        dtrss = get_dtrss(r, [r], universe)
        assert len(dtrss) == 1
        assert dtrss[0].pairs == frozenset()
        assert dtrss[0].determined_ht == "h1"

    def test_target_must_be_in_ring_set(self):
        universe = TokenUniverse({"a": "h1"})
        with pytest.raises(ValueError):
            get_dtrss(ring("r", {"a"}), [], universe)

    def test_pairs_never_include_target(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3"})
        r1 = ring("r1", {"a", "b"})
        r2 = ring("r2", {"b", "c"})
        for dtrs in get_dtrss(r1, [r1, r2], universe):
            assert all(rid != "r1" for _, rid in dtrs.pairs)

    def test_token_property(self):
        d = Dtrs(pairs=frozenset({("t1", "r1"), ("t2", "r2")}), determined_ht="h")
        assert d.tokens == frozenset({"t1", "t2"})
        assert len(d) == 2

    def test_max_size_caps_enumeration(self):
        universe = TokenUniverse({c: f"h{c}" for c in "abcdef"})
        rings = [
            ring("r1", {"a", "b"}),
            ring("r2", {"b", "c"}),
            ring("r3", {"c", "d"}),
        ]
        capped = get_dtrss(rings[0], rings, universe, max_size=1)
        assert all(len(d) <= 1 for d in capped)


class TestRecursiveDiverseExact:
    def test_paper_section_2_5_example(self):
        # r1={t1,t2}, r2={t2,t3}, r3={t1,t3,t4}; t1,t3 from h1, t4 from h2.
        universe = TokenUniverse({"t1": "h1", "t2": "h3", "t3": "h1", "t4": "h2"})
        r1 = ring("r1", {"t1", "t2"}, seq=0)
        r2 = ring("r2", {"t2", "t3"}, seq=1)
        r3 = ring("r3", {"t1", "t3", "t4"}, seq=2)
        rings = [r1, r2, r3]
        # (2,1): both conditions hold (2 < 2*(2+1) and 2 < 2*2).
        assert ring_is_recursive_diverse_exact(r3, rings, universe, c=2, ell=1)
        # (3,2): first condition holds (2 < 3*1) but the DTRS fails (2 >= 3*0).
        assert not ring_is_recursive_diverse_exact(r3, rings, universe, c=3, ell=2)

    def test_uses_ring_claim_by_default(self):
        universe = TokenUniverse({"a": "h1", "b": "h2"})
        r = ring("r", {"a", "b"}, c=2.0, ell=2)
        assert ring_is_recursive_diverse_exact(r, [r], universe)

    def test_fails_own_ht_condition(self):
        universe = TokenUniverse({"a": "h1", "b": "h1"})
        r = ring("r", {"a", "b"}, c=5.0, ell=2)
        assert not ring_is_recursive_diverse_exact(r, [r], universe)
