"""Unit tests for Pedersen commitments."""

import pytest

from repro.crypto.commitment import (
    H,
    add_commitments,
    commit,
    commitments_balance,
)
from repro.crypto.ed25519 import G, L


class TestCommit:
    def test_deterministic_given_blinding(self):
        a, _ = commit(5, blinding=99)
        b, _ = commit(5, blinding=99)
        assert a.point == b.point

    def test_hiding_with_fresh_blinding(self):
        a, _ = commit(5)
        b, _ = commit(5)
        assert a.point != b.point

    def test_binding_to_amount(self):
        a, _ = commit(5, blinding=1)
        b, _ = commit(6, blinding=1)
        assert a.point != b.point

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            commit(-1)

    def test_h_differs_from_g(self):
        assert H != G


class TestHomomorphism:
    def test_sum_of_commitments(self):
        a, ba = commit(3, blinding=10)
        b, bb = commit(4, blinding=20)
        combined, _ = commit(7, blinding=30)
        assert (a + b).point == combined.point
        assert (ba + bb) % L == 30

    def test_add_commitments_helper(self):
        a, _ = commit(1, blinding=5)
        b, _ = commit(2, blinding=6)
        assert add_commitments([a, b]).point == (a + b).point

    def test_add_commitments_empty_rejected(self):
        with pytest.raises(ValueError):
            add_commitments([])


class TestBalance:
    def test_balanced_transaction_accepted(self):
        in1, b1 = commit(5)
        in2, b2 = commit(7)
        out, b3 = commit(12)
        assert commitments_balance([in1, in2], [out], (b1 + b2 - b3) % L)

    def test_inflated_transaction_rejected(self):
        in1, b1 = commit(5)
        out, b2 = commit(6)
        assert not commitments_balance([in1], [out], (b1 - b2) % L)

    def test_split_outputs_balance(self):
        incoming, b0 = commit(10)
        out_a, b1 = commit(4)
        out_b, b2 = commit(6)
        assert commitments_balance([incoming], [out_a, out_b], (b0 - b1 - b2) % L)
