"""Unit tests for the DA-MS problem definition and exact constraints."""

import pytest

from repro.core.problem import (
    DamsInstance,
    check_diversity_constraint,
    check_immutability_constraint,
    check_non_eliminated_constraint,
    is_feasible_exact,
)
from repro.core.ring import Ring, TokenUniverse


def ring(rid, tokens, seq=0, c=1.0, ell=1):
    return Ring(rid=rid, tokens=frozenset(tokens), c=c, ell=ell, seq=seq)


def example1_instance():
    """Paper Example 1: t1,t3 from h1; t2 from h2; t4 from h3."""
    universe = TokenUniverse({"t1": "h1", "t2": "h2", "t3": "h1", "t4": "h3"})
    r1 = ring("r1", {"t1", "t2"}, seq=0, c=2.0, ell=2)
    r2 = ring("r2", {"t1", "t2"}, seq=1, c=2.0, ell=2)
    return DamsInstance(universe, [r1, r2], "t3", c=2.0, ell=2)


class TestDamsInstance:
    def test_candidate_mixins_excludes_target(self):
        instance = example1_instance()
        assert instance.candidate_mixins() == frozenset({"t1", "t2", "t4"})

    def test_make_ring_includes_target(self):
        instance = example1_instance()
        candidate = instance.make_ring({"t4"})
        assert candidate.tokens == frozenset({"t3", "t4"})
        assert candidate.c == 2.0
        assert candidate.ell == 2

    def test_make_ring_seq_after_existing(self):
        instance = example1_instance()
        assert instance.make_ring({"t4"}).seq == 2

    def test_unknown_target_rejected(self):
        universe = TokenUniverse({"a": "h"})
        with pytest.raises(ValueError):
            DamsInstance(universe, [], "zz", c=1.0, ell=1)

    def test_invalid_requirement_rejected(self):
        universe = TokenUniverse({"a": "h"})
        with pytest.raises(ValueError):
            DamsInstance(universe, [], "a", c=0, ell=1)
        with pytest.raises(ValueError):
            DamsInstance(universe, [], "a", c=1, ell=0)

    def test_related_rings(self):
        instance = example1_instance()
        candidate = instance.make_ring({"t1"})
        assert {r.rid for r in instance.related_rings(candidate)} == {"r1", "r2"}
        lonely = instance.make_ring({"t4"})
        assert instance.related_rings(lonely) == []


class TestExample1Solutions:
    """The four solutions the paper walks through in Example 1."""

    def test_good_solution(self):
        assert is_feasible_exact(example1_instance(), {"t4"})

    def test_homogeneity_attack_solution_rejected(self):
        assert not is_feasible_exact(example1_instance(), {"t1"})

    def test_chain_reaction_solution_rejected(self):
        assert not is_feasible_exact(example1_instance(), {"t2"})

    def test_full_universe_ring_eliminates_tokens(self):
        # {t1..t4}: t1, t2 cannot be consumed in the new ring in any
        # world (they are taken by r1/r2), so Algorithm 2's ST != r_k
        # check formally rejects it even though the paper's narrative
        # calls it "safe but large".
        assert not is_feasible_exact(example1_instance(), {"t1", "t2", "t4"})


class TestConstraintCheckers:
    def test_diversity_constraint_own_hts(self):
        universe = TokenUniverse({"a": "h1", "b": "h1"})
        candidate = ring("new", {"a", "b"}, c=2.0, ell=2)
        assert not check_diversity_constraint(candidate, [candidate], universe)

    def test_diversity_constraint_passes(self):
        universe = TokenUniverse({"a": "h1", "b": "h2"})
        candidate = ring("new", {"a", "b"}, c=2.0, ell=2)
        assert check_diversity_constraint(candidate, [candidate], universe)

    def test_non_eliminated_detects_cascade(self):
        r1 = ring("r1", {"a", "b"})
        r2 = ring("r2", {"a", "b"})
        r3 = ring("r3", {"b", "c"})
        assert not check_non_eliminated_constraint([r1, r2, r3])

    def test_non_eliminated_passes_independent(self):
        r1 = ring("r1", {"a", "b"})
        r2 = ring("r2", {"c", "d"})
        assert check_non_eliminated_constraint([r1, r2])

    def test_immutability_ignores_already_broken_rings(self):
        # r1 requires (1,1) which a 1-HT DTRS can never satisfy; it is
        # broken with or without the candidate, so it must not veto.
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3", "d": "h4"})
        r1 = ring("r1", {"a", "b"}, seq=0, c=1.0, ell=1)
        r2 = ring("r2", {"a", "b"}, seq=1, c=1.0, ell=1)
        candidate = ring("new", {"c", "d"}, seq=2, c=2.0, ell=2)
        assert check_immutability_constraint(
            candidate, [r1, r2, candidate], universe
        )

    def test_immutability_detects_breakage(self):
        # Before: r1 = {a, b} alone has no DTRS and satisfies (2, 2).
        # After new = {b, c}: revealing <b, new> forces r1 -> a, so
        # {(b, new)} becomes a DTRS of r1 whose token HT multiset [1]
        # violates (2, 2) (1 >= 2 * 0).  The newcomer broke r1's claim.
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h2", "d": "h3"})
        r1 = ring("r1", {"a", "b"}, seq=0, c=2.0, ell=2)
        candidate = ring("new", {"b", "c"}, seq=1, c=2.0, ell=2)
        assert not check_immutability_constraint(
            candidate, [r1, candidate], universe
        )

    def test_immutability_holds_for_disjoint_candidate(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h2", "d": "h3"})
        r1 = ring("r1", {"a", "b"}, seq=0, c=2.0, ell=2)
        candidate = ring("new", {"c", "d"}, seq=1, c=2.0, ell=2)
        assert check_immutability_constraint(candidate, [r1, candidate], universe)
