"""Unit tests for the Smallest (TM_S) and Random (TM_R) baselines."""

import random

import pytest

from repro.core.baselines import random_select, smallest_select
from repro.core.diversity import ht_counts_satisfy
from repro.core.modules import ModuleUniverse
from repro.core.problem import InfeasibleError
from repro.core.ring import TokenUniverse

from helpers import example3_modules


class TestSmallest:
    def test_result_eligible(self):
        modules = example3_modules()
        result = smallest_select(modules, "t11", c=1.0, ell=4)
        assert ht_counts_satisfy(modules.universe.ht_counts(result.tokens), 1.0, 4)

    def test_picks_smallest_first(self):
        modules = example3_modules()
        result = smallest_select(modules, "t11", c=1.0, ell=4)
        # s3 (anchor), then s4 (size 3) before s2 (size 4), s1 (size 6).
        assert result.modules[0] == "s:s3"
        assert result.modules[1] == "s:s4"

    def test_deterministic(self):
        modules = example3_modules()
        assert (
            smallest_select(modules, "t11", c=1.0, ell=4).tokens
            == smallest_select(modules, "t11", c=1.0, ell=4).tokens
        )

    def test_infeasible_when_exhausted(self):
        universe = TokenUniverse({"a": "h1", "b": "h1"})
        modules = ModuleUniverse(universe, [])
        with pytest.raises(InfeasibleError):
            smallest_select(modules, "a", c=1.0, ell=2)

    def test_anchor_included(self):
        modules = example3_modules()
        result = smallest_select(modules, "t7", c=1.0, ell=4)
        assert "t7" in result.tokens

    def test_algorithm_label(self):
        result = smallest_select(example3_modules(), "t11", c=1.0, ell=4)
        assert result.algorithm == "smallest"


class TestRandom:
    def test_result_eligible(self):
        modules = example3_modules()
        result = random_select(modules, "t11", c=1.0, ell=4, rng=random.Random(1))
        assert ht_counts_satisfy(modules.universe.ht_counts(result.tokens), 1.0, 4)

    def test_seeded_rng_reproducible(self):
        modules = example3_modules()
        a = random_select(modules, "t11", c=1.0, ell=4, rng=random.Random(5))
        b = random_select(modules, "t11", c=1.0, ell=4, rng=random.Random(5))
        assert a.tokens == b.tokens

    def test_different_seeds_can_differ(self):
        modules = example3_modules()
        outcomes = {
            random_select(modules, "t11", c=1.0, ell=4, rng=random.Random(seed)).tokens
            for seed in range(12)
        }
        assert len(outcomes) > 1

    def test_unseeded_runs(self):
        modules = example3_modules()
        result = random_select(modules, "t11", c=1.0, ell=4)
        assert "t11" in result.tokens

    def test_infeasible_when_exhausted(self):
        universe = TokenUniverse({"a": "h1", "b": "h1"})
        modules = ModuleUniverse(universe, [])
        with pytest.raises(InfeasibleError):
            random_select(modules, "a", c=1.0, ell=2, rng=random.Random(0))

    def test_algorithm_label(self):
        result = random_select(example3_modules(), "t11", c=1.0, ell=4)
        assert result.algorithm == "random"


class TestRegistry:
    def test_all_selectors_registered(self):
        from repro.core.selector import SELECTORS, get_selector

        for name in ("progressive", "game", "smallest", "random"):
            assert name in SELECTORS
            assert callable(get_selector(name))

    def test_unknown_selector_rejected(self):
        from repro.core.selector import get_selector

        with pytest.raises(KeyError, match="progressive"):
            get_selector("definitely-not-a-selector")
