"""Unit tests for the batch registry: Theorem 4.1 closure and eta rule."""

import pytest

from repro.core.ring import Ring, TokenUniverse
from repro.tokenmagic.batch import Batch
from repro.tokenmagic.registry import BatchRegistry, ReserveViolation, consumed_closure


def make_ring(rid, tokens, seq=0):
    return Ring(rid=rid, tokens=frozenset(tokens), seq=seq)


def make_batch(token_to_ht, complete=True):
    return Batch(
        index=0,
        first_height=0,
        last_height=0,
        universe=TokenUniverse(token_to_ht),
        complete=complete,
    )


class TestConsumedClosure:
    def test_theorem41_base_case(self):
        # Two rings over the same two tokens: both tokens consumed.
        rings = [make_ring("r1", {"a", "b"}), make_ring("r2", {"a", "b"})]
        assert consumed_closure(rings) == frozenset({"a", "b"})

    def test_three_ring_group(self):
        rings = [
            make_ring("r1", {"a", "b"}),
            make_ring("r2", {"b", "c"}),
            make_ring("r3", {"a", "c"}),
        ]
        assert consumed_closure(rings) == frozenset({"a", "b", "c"})

    def test_no_inference_when_slack(self):
        rings = [make_ring("r1", {"a", "b"}), make_ring("r2", {"b", "c"})]
        assert consumed_closure(rings) == frozenset()

    def test_singleton_ring_consumed(self):
        rings = [make_ring("r1", {"a"})]
        assert consumed_closure(rings) == frozenset({"a"})

    def test_empty_ring_set(self):
        assert consumed_closure([]) == frozenset()

    def test_partial_group_in_larger_population(self):
        rings = [
            make_ring("r1", {"a", "b"}),
            make_ring("r2", {"a", "b"}),
            make_ring("r3", {"c", "d", "e"}),
        ]
        assert consumed_closure(rings) == frozenset({"a", "b"})


class TestReserveRule:
    def test_reserve_allows_under_threshold(self):
        batch = make_batch({t: f"h{t}" for t in "abcdef"})
        registry = BatchRegistry(batch=batch, eta=0.1)
        registry.admit(make_ring("r1", {"a", "b", "c"}))
        assert len(registry.rings) == 1

    def test_reserve_blocks_exhaustion(self):
        # eta = 1 demands i - mu >= |T| - i; a pair of mutually
        # determining rings (mu = 2, i = 2) over 4 tokens fails:
        # 0 >= 2 is false.
        batch = make_batch({t: f"h{t}" for t in "abcd"})
        registry = BatchRegistry(batch=batch, eta=1.0)
        registry.rings.append(make_ring("r1", {"a", "b"}))
        with pytest.raises(ReserveViolation):
            registry.admit(make_ring("r2", {"a", "b"}))

    def test_eta_zero_disables_rule(self):
        batch = make_batch({t: f"h{t}" for t in "ab"})
        registry = BatchRegistry(batch=batch, eta=0.0)
        registry.admit(make_ring("r1", {"a", "b"}))
        registry.admit(make_ring("r2", {"a", "b"}))
        assert len(registry.rings) == 2

    def test_out_of_batch_token_rejected(self):
        batch = make_batch({"a": "h1"})
        registry = BatchRegistry(batch=batch)
        with pytest.raises(KeyError):
            registry.admit(make_ring("r1", {"a", "zz"}))

    def test_incomplete_batch_uses_effective_lambda(self):
        batch = make_batch({"a": "h1", "b": "h2"}, complete=False)
        registry = BatchRegistry(batch=batch, eta=0.5, lambda_effective=9)
        assert registry.universe_size == 9

    def test_complete_batch_uses_true_size(self):
        batch = make_batch({"a": "h1", "b": "h2"}, complete=True)
        registry = BatchRegistry(batch=batch, eta=0.5, lambda_effective=9)
        assert registry.universe_size == 2

    def test_consumed_tokens_view(self):
        batch = make_batch({t: f"h{t}" for t in "abcd"})
        registry = BatchRegistry(batch=batch)
        registry.admit(make_ring("r1", {"a", "b"}))
        registry.admit(make_ring("r2", {"a", "b"}))
        assert registry.consumed_tokens() == frozenset({"a", "b"})
