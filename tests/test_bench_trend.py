"""tools/bench_trend.py: record/report/check over BENCH_*.json history.

The committed ``benchmarks/results/TREND.jsonl`` must always agree
with the committed artifacts (that is what CI checks on every PR), and
the regression math must actually fail when a headline regresses.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "bench_trend.py"

_spec = importlib.util.spec_from_file_location("bench_trend", TOOL)
bench_trend = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_trend", bench_trend)
_spec.loader.exec_module(bench_trend)


def write_artifacts(
    results: Path,
    bfs_speedup: float,
    service_speedup: float,
    bfs_workload: dict | None = None,
):
    results.mkdir(parents=True, exist_ok=True)
    bfs_doc = {
        "headline": {
            "speedup": bfs_speedup,
            "optimized_seconds": 10.0 / bfs_speedup,
            "ring_index": 6,
        }
    }
    if bfs_workload is not None:
        bfs_doc["workload"] = bfs_workload
    (results / "BENCH_bfs.json").write_text(json.dumps(bfs_doc))
    (results / "BENCH_service.json").write_text(
        json.dumps({"speedup": service_speedup})
    )
    (results / "BENCH_shard.json").write_text(
        json.dumps(
            {
                "headline": {
                    "shards": 8,
                    "throughput_rps": 50.0 * service_speedup,
                    "speedup_vs_single": service_speedup,
                }
            }
        )
    )


def test_current_metrics_reads_registered_headlines(tmp_path):
    write_artifacts(tmp_path, bfs_speedup=100.0, service_speedup=4.0)
    values = bench_trend.current_metrics(tmp_path)
    assert values == {
        "bfs.speedup": 100.0,
        "bfs.optimized_seconds": 0.1,
        "bfs.ring_index": 6.0,
        "service.speedup": 4.0,
        "shard.throughput_rps": 200.0,
        "shard.speedup_vs_single": 4.0,
    }


def test_missing_artifacts_are_skipped_not_errors(tmp_path):
    assert bench_trend.current_metrics(tmp_path) == {}


def test_record_then_check_round_trips(tmp_path, capsys):
    write_artifacts(tmp_path, bfs_speedup=100.0, service_speedup=4.0)
    assert bench_trend.main(["--results", str(tmp_path), "--record", "v1"]) == 0
    trend = tmp_path / "TREND.jsonl"
    entries = [json.loads(line) for line in trend.read_text().splitlines()]
    assert [entry["label"] for entry in entries] == ["v1"]
    # Unchanged artifacts pass the check.
    assert bench_trend.main(["--results", str(tmp_path), "--check"]) == 0
    out = capsys.readouterr().out
    assert "REGRESSED" not in out


def test_check_fails_on_a_regression_beyond_threshold(tmp_path, capsys):
    write_artifacts(tmp_path, bfs_speedup=100.0, service_speedup=4.0)
    bench_trend.main(["--results", str(tmp_path), "--record", "v1"])
    # bfs.speedup collapses by 50%: well past the 10% default threshold.
    write_artifacts(tmp_path, bfs_speedup=50.0, service_speedup=4.0)
    assert bench_trend.main(["--results", str(tmp_path), "--check"]) == 1
    out = capsys.readouterr().out
    assert "bfs.speedup" in out and "REGRESSED" in out
    # A permissive threshold lets the same numbers through (the fixture
    # also doubles optimized_seconds, a -100% lower-is-better change).
    assert bench_trend.main(
        ["--results", str(tmp_path), "--check", "--threshold", "150"]
    ) == 0


def test_lower_is_better_metrics_regress_upward(tmp_path):
    write_artifacts(tmp_path, bfs_speedup=100.0, service_speedup=4.0)
    bench_trend.main(["--results", str(tmp_path), "--record", "v1"])
    # Same speedup, but the absolute optimized time got 5x slower.
    (tmp_path / "BENCH_bfs.json").write_text(
        json.dumps(
            {
                "headline": {
                    "speedup": 100.0,
                    "optimized_seconds": 0.5,
                    "ring_index": 6,
                }
            }
        )
    )
    assert bench_trend.main(["--results", str(tmp_path), "--check"]) == 1


def test_improvements_never_fail_the_check(tmp_path):
    write_artifacts(tmp_path, bfs_speedup=100.0, service_speedup=4.0)
    bench_trend.main(["--results", str(tmp_path), "--record", "v1"])
    write_artifacts(tmp_path, bfs_speedup=400.0, service_speedup=9.0)
    assert bench_trend.main(["--results", str(tmp_path), "--check"]) == 0


def test_check_skips_metrics_whose_workload_changed(tmp_path, capsys):
    """A capped smoke run must not read as a regression of the full bench."""
    full = {"ref_budget_s": 90.0, "seed": 3}
    write_artifacts(
        tmp_path, bfs_speedup=200.0, service_speedup=4.0, bfs_workload=full
    )
    bench_trend.main(["--results", str(tmp_path), "--record", "full"])
    entries = [
        json.loads(line)
        for line in (tmp_path / "TREND.jsonl").read_text().splitlines()
    ]
    assert entries[0]["workloads"]["BENCH_bfs.json"] == full
    # Now a smoke run: far lower speedup, but a different fingerprint.
    write_artifacts(
        tmp_path,
        bfs_speedup=50.0,
        service_speedup=4.0,
        bfs_workload={"ref_budget_s": 15.0, "seed": 3},
    )
    capsys.readouterr()
    assert bench_trend.main(["--results", str(tmp_path), "--check"]) == 0
    out = capsys.readouterr().out
    assert "bfs.speedup: skipped (workload changed" in out
    # The service artifact (fingerprint untouched) is still compared.
    assert "service.speedup" in out and "REGRESSED" not in out
    # Same fingerprint again -> the comparison is back on and fails.
    write_artifacts(
        tmp_path, bfs_speedup=50.0, service_speedup=4.0, bfs_workload=full
    )
    assert bench_trend.main(["--results", str(tmp_path), "--check"]) == 1


def test_entries_without_workloads_compare_against_everything(tmp_path):
    """Pre-fingerprint history entries stay comparable (wildcard)."""
    write_artifacts(tmp_path, bfs_speedup=100.0, service_speedup=4.0)
    bench_trend.main(["--results", str(tmp_path), "--record", "old"])
    write_artifacts(
        tmp_path,
        bfs_speedup=50.0,
        service_speedup=4.0,
        bfs_workload={"ref_budget_s": 15.0},
    )
    assert bench_trend.main(["--results", str(tmp_path), "--check"]) == 1


def test_check_with_no_history_passes(tmp_path):
    write_artifacts(tmp_path, bfs_speedup=100.0, service_speedup=4.0)
    assert bench_trend.main(["--results", str(tmp_path), "--check"]) == 0


def test_report_renders_history_and_now_columns(tmp_path, capsys):
    write_artifacts(tmp_path, bfs_speedup=100.0, service_speedup=4.0)
    bench_trend.main(["--results", str(tmp_path), "--record", "v1"])
    capsys.readouterr()
    assert bench_trend.main(["--results", str(tmp_path), "--report"]) == 0
    out = capsys.readouterr().out
    assert "v1" in out and "now" in out
    assert "bfs.speedup" in out and "service.speedup" in out


def test_malformed_history_is_a_clear_error(tmp_path):
    write_artifacts(tmp_path, bfs_speedup=100.0, service_speedup=4.0)
    (tmp_path / "TREND.jsonl").write_text("{not json}\n")
    try:
        bench_trend.main(["--results", str(tmp_path), "--check"])
    except SystemExit as exc:
        assert "not valid JSON" in str(exc)
    else:
        raise AssertionError("expected SystemExit on malformed history")


def test_committed_trend_agrees_with_committed_artifacts(capsys):
    """The repo invariant CI enforces: a fresh checkout always passes."""
    results = REPO / "benchmarks" / "results"
    assert (results / "TREND.jsonl").exists()
    assert bench_trend.main(["--results", str(results), "--check"]) == 0
    out = capsys.readouterr().out
    assert "REGRESSED" not in out
