"""Unit tests for full-node / light-node views."""

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.errors import ChainError
from repro.chain.node import FullNode, LightNode
from repro.chain.transaction import RingInput, Transaction


def funded_chain(block_output_counts=(3, 3, 3, 3)):
    chain = Blockchain(verify_signatures=False)
    for index, count in enumerate(block_output_counts):
        tx = Transaction(inputs=(), output_count=count, nonce=index)
        chain.append_block(chain.make_block([tx], timestamp=float(index)))
    return chain


class TestFullNode:
    def test_batch_list(self):
        node = FullNode(funded_chain(), batch_lambda=6)
        batches = node.batch_list()
        assert len(batches) == 2
        assert all(b.token_count == 6 for b in batches)

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            FullNode(funded_chain(), batch_lambda=0)

    def test_batch_of_token(self):
        node = FullNode(funded_chain(), batch_lambda=6)
        token = sorted(node.batch_list()[1].universe.tokens)[0]
        assert node.batch_of_token(token).index == 1

    def test_unknown_token_raises(self):
        node = FullNode(funded_chain(), batch_lambda=6)
        with pytest.raises(ChainError):
            node.batch_of_token("ghost:0")

    def test_batch_universe_bounds(self):
        node = FullNode(funded_chain(), batch_lambda=6)
        assert len(node.batch_universe(0)) == 6
        with pytest.raises(ChainError):
            node.batch_universe(9)

    def test_rings_over_universe(self):
        chain = funded_chain()
        node = FullNode(chain, batch_lambda=6)
        batch = node.batch_list()[0]
        members = tuple(sorted(batch.universe.tokens))[:2]
        spend = Transaction(
            inputs=(RingInput(ring_tokens=tuple(sorted(members))),),
            output_count=1,
        )
        chain.append_block(chain.make_block([spend], timestamp=99.0))
        rings = node.rings_over(batch.universe)
        assert len(rings) == 1


class TestLightNode:
    def test_queries_peer(self):
        full = FullNode(funded_chain(), batch_lambda=6)
        light = LightNode(peer=full)
        token = sorted(full.batch_list()[0].universe.tokens)[0]
        assert light.batch_for(token).index == 0
        assert token in light.mixin_universe(token)

    def test_light_and_full_agree(self):
        # Consensus property: the light node's batch view equals the
        # full node's for every token.
        full = FullNode(funded_chain(), batch_lambda=6)
        light = LightNode(peer=full)
        for batch in full.batch_list():
            for token in batch.universe.tokens:
                assert light.batch_for(token).index == batch.index
