"""Unit tests for the exact BFS solver (Algorithm 2)."""

import pytest

from repro.core.bfs import SearchBudgetExceeded, bfs_select
from repro.core.problem import DamsInstance, InfeasibleError, is_feasible_exact
from repro.core.ring import Ring, TokenUniverse


def ring(rid, tokens, seq=0, c=1.0, ell=1):
    return Ring(rid=rid, tokens=frozenset(tokens), c=c, ell=ell, seq=seq)


class TestOptimality:
    def test_example1_optimum(self):
        universe = TokenUniverse({"t1": "h1", "t2": "h2", "t3": "h1", "t4": "h3"})
        r1 = ring("r1", {"t1", "t2"}, seq=0, c=2.0, ell=2)
        r2 = ring("r2", {"t1", "t2"}, seq=1, c=2.0, ell=2)
        instance = DamsInstance(universe, [r1, r2], "t3", c=2.0, ell=2)
        result = bfs_select(instance)
        assert result.ring.tokens == frozenset({"t3", "t4"})
        assert result.mixins == frozenset({"t4"})

    def test_empty_history_minimal_ring(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3", "d": "h4"})
        instance = DamsInstance(universe, [], "a", c=2.0, ell=2)
        result = bfs_select(instance)
        # Two tokens from two HTs suffice: 1 < 2 * 1.
        assert len(result.ring.tokens) == 2

    def test_result_is_feasible(self):
        universe = TokenUniverse(
            {f"t{i}": f"h{i % 3}" for i in range(6)}
        )
        instance = DamsInstance(universe, [], "t0", c=2.0, ell=3)
        result = bfs_select(instance)
        assert is_feasible_exact(instance, result.mixins)

    def test_never_larger_than_any_feasible_set(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3", "d": "h4"})
        instance = DamsInstance(universe, [], "a", c=1.0, ell=2)
        result = bfs_select(instance)
        # Any feasible competitor must be at least as large.
        from itertools import combinations

        for size in range(len(result.mixins)):
            for mixins in combinations(sorted(instance.candidate_mixins()), size):
                assert not is_feasible_exact(instance, set(mixins))

    def test_counts_candidates(self):
        universe = TokenUniverse({"a": "h1", "b": "h2"})
        instance = DamsInstance(universe, [], "a", c=2.0, ell=2)
        result = bfs_select(instance)
        assert result.candidates_checked >= 1
        assert result.elapsed >= 0


class TestFailureModes:
    def test_infeasible_raises(self):
        # Only one HT available: no l=2 requirement can ever hold.
        universe = TokenUniverse({"a": "h1", "b": "h1", "c": "h1"})
        instance = DamsInstance(universe, [], "a", c=5.0, ell=2)
        with pytest.raises(InfeasibleError):
            bfs_select(instance)

    def test_time_budget_enforced(self):
        # Only 3 distinct HTs but l = 5: infeasible, so the search must
        # enumerate all 2^21 candidates — the tiny budget trips first.
        universe = TokenUniverse({f"t{i:02d}": f"h{i % 3}" for i in range(22)})
        rings = [
            ring(f"r{i}", {f"t{j:02d}" for j in range(i, i + 4)}, seq=i, c=5.0, ell=2)
            for i in range(6)
        ]
        instance = DamsInstance(universe, rings, "t21", c=5.0, ell=5)
        with pytest.raises(SearchBudgetExceeded):
            bfs_select(instance, time_budget=0.01)

    def test_budget_trip_reports_stratum_and_progress(self):
        # Same infeasible workload: the exception must say which size-k
        # stratum tripped and how far into it the scan had got.
        universe = TokenUniverse({f"t{i:02d}": f"h{i % 3}" for i in range(22)})
        rings = [
            ring(f"r{i}", {f"t{j:02d}" for j in range(i, i + 4)}, seq=i, c=5.0, ell=2)
            for i in range(6)
        ]
        instance = DamsInstance(universe, rings, "t21", c=5.0, ell=5)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            bfs_select(instance, time_budget=0.01)
        exc = excinfo.value
        assert exc.size is not None and exc.size >= 4  # sizes start at l-1
        assert exc.scanned_in_size is not None and exc.scanned_in_size >= 0
        assert exc.margin_s is not None
        assert f"size {exc.size}" in str(exc)
        assert "candidates" in str(exc)

    def test_max_mixins_cap(self):
        universe = TokenUniverse({"a": "h1", "b": "h1", "c": "h1", "d": "h2"})
        instance = DamsInstance(universe, [], "a", c=0.5, ell=2)
        with pytest.raises(InfeasibleError):
            bfs_select(instance, max_mixins=1)


class TestAgainstBruteForce:
    def test_matches_exhaustive_minimum(self):
        from itertools import combinations

        universe = TokenUniverse(
            {"a": "h1", "b": "h2", "c": "h1", "d": "h3", "e": "h2"}
        )
        existing = [ring("r1", {"a", "b"}, seq=0, c=2.0, ell=2)]
        instance = DamsInstance(universe, existing, "c", c=2.0, ell=2)
        result = bfs_select(instance)

        best = None
        candidates = sorted(instance.candidate_mixins())
        for size in range(len(candidates) + 1):
            for mixins in combinations(candidates, size):
                if is_feasible_exact(instance, set(mixins)):
                    best = size
                    break
            if best is not None:
                break
        assert best is not None
        assert len(result.mixins) == best
