"""Multi-input spends and stealth-wallet integration."""

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.errors import DoubleSpendError, ValidationError
from repro.chain.token import TokenOutput
from repro.chain.transaction import Transaction
from repro.chain.wallet import Wallet
from repro.crypto.stealth import make_receiver, pay_to_address

from test_wallet import funded_chain_and_wallets


class TestMultiSpend:
    def test_two_input_transaction_verifies(self):
        chain, wallets = funded_chain_and_wallets(user_count=4, outputs_per_user=2)
        wallet = wallets[0]
        token_a, token_b = wallet.owned_tokens()[:2]
        plan_a = wallet.plan_spend(chain, token_a, c=2.0, ell=2)
        plan_b = wallet.plan_spend(chain, token_b, c=2.0, ell=2)
        tx = wallet.sign_multi_spend(chain, [plan_a, plan_b], output_count=2)
        assert len(tx.inputs) == 2
        chain.append_block(chain.make_block([tx], timestamp=2.0))
        assert chain.height == 2
        assert len(list(chain.rings)) == 2

    def test_multi_spend_fee_counts_all_mixins(self):
        chain, wallets = funded_chain_and_wallets()
        wallet = wallets[0]
        token_a, token_b = wallet.owned_tokens()[:2]
        plan_a = wallet.plan_spend(chain, token_a, c=2.0, ell=2)
        plan_b = wallet.plan_spend(chain, token_b, c=2.0, ell=2)
        tx = wallet.sign_multi_spend(chain, [plan_a, plan_b])
        expected = (plan_a.selection.size - 1) + (plan_b.selection.size - 1)
        assert tx.fee == expected

    def test_same_token_twice_rejected(self):
        chain, wallets = funded_chain_and_wallets()
        wallet = wallets[0]
        token = wallet.owned_tokens()[0]
        plan = wallet.plan_spend(chain, token, c=2.0, ell=2)
        with pytest.raises(ValidationError):
            wallet.sign_multi_spend(chain, [plan, plan])

    def test_empty_plans_rejected(self):
        chain, wallets = funded_chain_and_wallets()
        with pytest.raises(ValidationError):
            wallets[0].sign_multi_spend(chain, [])

    def test_double_spend_across_multi_and_single(self):
        chain, wallets = funded_chain_and_wallets()
        wallet = wallets[0]
        token_a, token_b = wallet.owned_tokens()[:2]
        plan_a = wallet.plan_spend(chain, token_a, c=2.0, ell=2)
        plan_b = wallet.plan_spend(chain, token_b, c=2.0, ell=2)
        multi = wallet.sign_multi_spend(chain, [plan_a, plan_b], nonce=0)
        chain.append_block(chain.make_block([multi], timestamp=2.0))
        retry = wallet.sign_spend(chain, plan_a, nonce=1)
        with pytest.raises(DoubleSpendError):
            chain.append_block(chain.make_block([retry], timestamp=3.0))


class TestStealthWalletFlow:
    def test_scan_claim_spend(self):
        # A full receiver flow: outputs paid to a stealth address are
        # discovered by scanning, claimed into a wallet, and spent with
        # a verifying ring signature.
        chain = Blockchain(verify_signatures=True)
        receiver = make_receiver(seed="stealth-user")
        decoy_receivers = [make_receiver(seed=f"stealth-decoy{i}") for i in range(3)]

        coinbase = Transaction(inputs=(), output_count=4)
        chain.append_block(chain.make_block([coinbase], timestamp=1.0))
        raw_outputs = coinbase.make_outputs()

        one_time = []
        tx_key = None
        for index, stealth_receiver in enumerate([receiver, *decoy_receivers]):
            paid, tx_key = pay_to_address(
                stealth_receiver.address, output_index=index, tx_private_key=tx_key
            )
            one_time.append(paid)

        owned = [
            TokenOutput(
                token_id=raw.token_id,
                origin_tx=raw.origin_tx,
                index=raw.index,
                owner=paid.one_time_key,
            )
            for raw, paid in zip(raw_outputs, one_time)
        ]
        chain.register_owned_outputs(owned)

        # Scanning: only output 0 belongs to the receiver.
        matches = [
            (index, receiver.scan(paid)) for index, paid in enumerate(one_time)
        ]
        mine = [(i, kp) for i, kp in matches if kp is not None]
        assert len(mine) == 1
        index, keypair = mine[0]

        wallet = Wallet(name="stealth-wallet")
        wallet.claim_output(owned[index], keypair)
        plan = wallet.plan_spend(chain, owned[index].token_id, c=2.0, ell=1)
        tx = wallet.sign_spend(chain, plan)
        chain.append_block(chain.make_block([tx], timestamp=2.0))
        assert chain.height == 2
