"""Unit tests for TokenMagic batch partitioning."""

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.transaction import Transaction
from repro.tokenmagic.batch import batch_of_token, build_batches


def chain_with_blocks(tokens_per_block, start_nonce=0):
    """A chain with one coinbase per block, given output counts."""
    chain = Blockchain(verify_signatures=False)
    for index, count in enumerate(tokens_per_block):
        tx = Transaction(inputs=(), output_count=count, nonce=start_nonce + index)
        chain.append_block(chain.make_block([tx], timestamp=float(index)))
    return chain


class TestBuildBatches:
    def test_single_batch_exact_lambda(self):
        chain = chain_with_blocks([3, 3])
        batches = build_batches(chain, batch_lambda=6)
        assert len(batches) == 1
        assert batches[0].token_count == 6
        assert batches[0].complete

    def test_batch_closes_when_threshold_met(self):
        chain = chain_with_blocks([2, 2, 2, 2])
        batches = build_batches(chain, batch_lambda=3)
        # Blocks of 2: batch closes at 4 tokens (>= 3), twice.
        assert [b.token_count for b in batches] == [4, 4]
        assert all(b.complete for b in batches)

    def test_tail_batch_incomplete(self):
        chain = chain_with_blocks([2, 2, 1])
        batches = build_batches(chain, batch_lambda=4)
        assert len(batches) == 2
        assert batches[0].complete
        assert not batches[1].complete
        assert batches[1].token_count == 1

    def test_batches_are_disjoint_and_cover(self):
        chain = chain_with_blocks([3, 1, 4, 2, 5])
        batches = build_batches(chain, batch_lambda=5)
        seen = set()
        for batch in batches:
            assert seen.isdisjoint(batch.universe.tokens)
            seen |= batch.universe.tokens
        assert seen == chain.universe.tokens

    def test_block_ranges_are_sequential(self):
        chain = chain_with_blocks([2, 2, 2, 2, 2])
        batches = build_batches(chain, batch_lambda=4)
        for earlier, later in zip(batches, batches[1:]):
            assert later.first_height == earlier.last_height + 1

    def test_invalid_lambda_rejected(self):
        chain = chain_with_blocks([2])
        with pytest.raises(ValueError):
            build_batches(chain, batch_lambda=0)

    def test_empty_chain(self):
        chain = Blockchain(verify_signatures=False)
        assert build_batches(chain, batch_lambda=5) == []

    def test_deterministic_consensus(self):
        # Two nodes replaying the same blocks derive the same batches.
        chain_a = chain_with_blocks([3, 2, 4])
        chain_b = chain_with_blocks([3, 2, 4])
        batches_a = build_batches(chain_a, batch_lambda=5)
        batches_b = build_batches(chain_b, batch_lambda=5)
        assert [b.universe.tokens for b in batches_a] == [
            b.universe.tokens for b in batches_b
        ]


class TestBatchLookup:
    def test_batch_of_token(self):
        chain = chain_with_blocks([2, 2])
        batches = build_batches(chain, batch_lambda=2)
        token = next(iter(batches[1].universe.tokens))
        assert batch_of_token(batches, token).index == 1

    def test_missing_token_raises(self):
        chain = chain_with_blocks([2])
        batches = build_batches(chain, batch_lambda=2)
        with pytest.raises(KeyError):
            batch_of_token(batches, "ghost:0")

    def test_contains(self):
        chain = chain_with_blocks([2])
        batch = build_batches(chain, batch_lambda=2)[0]
        token = next(iter(batch.universe.tokens))
        assert token in batch
        assert "ghost:0" not in batch
