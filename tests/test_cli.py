"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for name in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                     "fig9", "fig10", "sim"):
            args = parser.parse_args(
                [name] if name in ("fig3", "fig4", "sim") else [name, "--instances", "1"]
            )
            assert args.command == name

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_fig3_runs(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "outputs/tx" in out
        assert "285 transactions" in out

    def test_sweep_runs_small(self, capsys):
        assert main(["fig7", "--instances", "2"]) == 0
        out = capsys.readouterr().out
        assert "TM_P" in out
        assert "Mean ring size" in out

    def test_sim_runs(self, capsys):
        assert main(["sim", "--ticks", "2"]) == 0
        out = capsys.readouterr().out
        assert "tick" in out
        assert "final population" in out

    def test_sim_algorithm_choice(self, capsys):
        assert main(["sim", "--ticks", "1", "--algorithm", "smallest"]) == 0


class TestObservabilityFlags:
    def test_every_subcommand_accepts_obs_flags(self):
        parser = build_parser()
        for name in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                     "fig9", "fig10", "sim"):
            args = parser.parse_args([name, "--metrics", "--trace-out", "x.jsonl"])
            assert args.metrics is True
            assert args.trace_out == "x.jsonl"

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["fig4"])
        assert args.metrics is False
        assert args.trace_out is None

    def test_metrics_flag_prints_summary(self, capsys):
        assert main(["fig4", "--budget", "2", "--max-rings", "2",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "bfs.candidates" in out
        assert "cache worlds hit rate" in out

    def test_trace_out_writes_parseable_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(["fig4", "--budget", "2", "--max-rings", "2",
                     "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"spans to {path}" in out
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records
        assert any(r["name"] == "bfs.select" for r in records)
        ends = [r["end"] for r in records]
        assert ends == sorted(ends)

    def test_without_flags_no_summary(self, capsys):
        assert main(["fig4", "--budget", "2", "--max-rings", "1"]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" not in out


class TestSelectCommand:
    def test_select_registered_with_resilience_flags(self):
        args = build_parser().parse_args(
            ["select", "--rings", "2", "--budget", "1",
             "--checkpoint", "cp.json", "--fault-plan", "plan.json"]
        )
        assert args.command == "select"
        assert args.checkpoint == "cp.json"
        assert args.fault_plan == "plan.json"

    def test_every_subcommand_accepts_fault_plan(self):
        parser = build_parser()
        for name in ("fig3", "fig4", "sim", "select"):
            args = parser.parse_args([name, "--fault-plan", "p.json"])
            assert args.fault_plan == "p.json"

    def test_select_runs_clean(self, capsys):
        assert main(["select", "--rings", "2", "--tokens", "12",
                     "--hts", "6", "--c", "2.0", "--ell", "2"]) == 0
        out = capsys.readouterr().out
        assert "rung" in out
        assert "exact" in out

    def test_exact_only_budget_trip_exits_75(self, capsys):
        assert main(["select", "--rings", "1", "--budget", "0",
                     "--exact-only"]) == 75
        err = capsys.readouterr().err
        assert "exceeded" in err

    def test_degraded_run_exits_zero_with_notice(self, capsys):
        assert main(["select", "--rings", "1", "--budget", "0"]) == 0
        captured = capsys.readouterr()
        assert "degraded" in captured.err
        assert "progressive" in captured.out

    def test_fault_plan_flag_installs_plan(self, tmp_path, capsys):
        from repro.resilience.faults import FaultPlan, FaultSpec

        plan_path = FaultPlan(
            [FaultSpec(site="bfs.candidate", action="delay", payload=0.0)]
        ).save(tmp_path / "plan.json")
        assert main(["select", "--rings", "1", "--tokens", "10",
                     "--hts", "5", "--c", "2.0", "--ell", "2",
                     "--fault-plan", str(plan_path), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "resilience.faults" in out

    def test_checkpoint_flag_writes_resumable_file(self, tmp_path, capsys):
        from repro.resilience.checkpoint import load_checkpoint

        cp = tmp_path / "cp.json"
        # All-distinct HTs at (1.0, 2): the first stratum always fails
        # (1 < 1.0 * 1), so a checkpoint lands on disk before the win.
        flags = ["--rings", "1", "--tokens", "8", "--hts", "999",
                 "--c", "1.0", "--ell", "2"]
        assert main(["select", *flags, "--checkpoint", str(cp)]) == 0
        assert load_checkpoint(cp).next_size >= 2
        assert main(["select", *flags, "--resume", str(cp)]) == 0
