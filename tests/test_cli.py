"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for name in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                     "fig9", "fig10", "sim"):
            args = parser.parse_args(
                [name] if name in ("fig3", "fig4", "sim") else [name, "--instances", "1"]
            )
            assert args.command == name

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_fig3_runs(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "outputs/tx" in out
        assert "285 transactions" in out

    def test_sweep_runs_small(self, capsys):
        assert main(["fig7", "--instances", "2"]) == 0
        out = capsys.readouterr().out
        assert "TM_P" in out
        assert "Mean ring size" in out

    def test_sim_runs(self, capsys):
        assert main(["sim", "--ticks", "2"]) == 0
        out = capsys.readouterr().out
        assert "tick" in out
        assert "final population" in out

    def test_sim_algorithm_choice(self, capsys):
        assert main(["sim", "--ticks", "1", "--algorithm", "smallest"]) == 0
