"""Unit tests for recursive (c, l)-diversity."""

from collections import Counter

import pytest

from repro.core.diversity import (
    diversity_deficit,
    ht_counts_deficit,
    ht_counts_satisfy,
    most_frequent_count,
    satisfies_recursive_diversity,
    sorted_frequencies,
)


class TestSortedFrequencies:
    def test_from_counter(self):
        assert sorted_frequencies(Counter({"a": 3, "b": 1, "c": 2})) == [3, 2, 1]

    def test_from_iterable(self):
        assert sorted_frequencies([1, 5, 2]) == [5, 2, 1]

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            sorted_frequencies([1, 0])


class TestRecursiveDiversity:
    def test_paper_example_passes_2_1(self):
        # r3's HTs: h1 x2, h2 x1 -> q=[2,1]; (2,1): 2 < 2*(2+1).
        assert satisfies_recursive_diversity([2, 1], c=2, ell=1)

    def test_paper_dtrs_example_passes_2_2(self):
        # DTRS tokens {t1, t3} both from h1... the paper checks 2 < 2*2
        # on the ring's own HTs under (2, 1)... here the (2,2) variant:
        assert satisfies_recursive_diversity([2, 2], c=2, ell=2)

    def test_paper_example_fails_3_2(self):
        # (3,2) on q=[2]: 2 >= 3*0 -> fails (the paper's example).
        assert not satisfies_recursive_diversity([2], c=3, ell=2)

    def test_ell_beyond_theta_fails(self):
        assert not satisfies_recursive_diversity([1, 1], c=10, ell=3)

    def test_ell_one_counts_whole_tail(self):
        # q1 < c * (q1 + ... + q_theta): 3 < 1 * (3+2+1).
        assert satisfies_recursive_diversity([3, 2, 1], c=1, ell=1)

    def test_singleton_fails_1_1(self):
        assert not satisfies_recursive_diversity([1], c=1, ell=1)

    def test_strict_inequality(self):
        # 2 < 1*2 is false: boundary must fail.
        assert not satisfies_recursive_diversity([2, 2], c=1, ell=2)

    def test_fractional_c(self):
        assert satisfies_recursive_diversity([1, 1, 1, 1], c=0.6, ell=2)
        assert not satisfies_recursive_diversity([2, 1, 1], c=0.6, ell=2)

    def test_empty_fails(self):
        assert not satisfies_recursive_diversity([], c=1, ell=1)

    def test_invalid_ell_rejected(self):
        with pytest.raises(ValueError):
            satisfies_recursive_diversity([1], c=1, ell=0)

    def test_monotone_in_c(self):
        freqs = [3, 2, 2, 1]
        satisfied = [satisfies_recursive_diversity(freqs, c, 2) for c in (0.5, 1, 2, 5)]
        # Once satisfied at some c, stays satisfied at larger c.
        assert satisfied == sorted(satisfied)

    def test_antitone_in_ell(self):
        freqs = [2, 2, 2, 2]
        results = [satisfies_recursive_diversity(freqs, 1.5, ell) for ell in (1, 2, 3, 4, 5)]
        # Once violated at some l, stays violated at larger l.
        assert results == sorted(results, reverse=True)


class TestDeficit:
    def test_negative_iff_satisfied(self):
        for freqs in ([2, 1], [3, 3, 1], [1, 1, 1, 1], [5]):
            for c in (0.2, 0.6, 1.0, 2.0):
                for ell in (1, 2, 3):
                    deficit = diversity_deficit(freqs, c, ell)
                    satisfied = satisfies_recursive_diversity(freqs, c, ell)
                    assert (deficit < 0) == satisfied

    def test_exact_value(self):
        # q=[3,2,1], c=1, l=2: 3 - (2+1) = 0.
        assert diversity_deficit([3, 2, 1], c=1, ell=2) == 0

    def test_empty_is_infinite(self):
        assert diversity_deficit([], c=1, ell=1) == float("inf")

    def test_invalid_ell_rejected(self):
        with pytest.raises(ValueError):
            diversity_deficit([1], c=1, ell=0)


class TestCounterHelpers:
    def test_ht_counts_satisfy(self):
        counts = Counter({"h1": 2, "h2": 1, "h3": 1})
        assert ht_counts_satisfy(counts, c=2, ell=2)
        assert not ht_counts_satisfy(counts, c=0.5, ell=3)

    def test_ht_counts_satisfy_empty(self):
        assert not ht_counts_satisfy(Counter(), c=1, ell=1)

    def test_ht_counts_deficit_matches(self):
        counts = Counter({"h1": 3, "h2": 2, "h3": 1})
        assert ht_counts_deficit(counts, c=1, ell=2) == diversity_deficit([3, 2, 1], 1, 2)

    def test_ht_counts_deficit_empty(self):
        assert ht_counts_deficit(Counter(), c=1, ell=1) == float("inf")

    def test_most_frequent_count(self):
        assert most_frequent_count(Counter({"h1": 4, "h2": 2})) == 4
        assert most_frequent_count(Counter()) == 0
