"""Paper-scale sanity checks: the analyses at 633-token scale.

The matching-based analyses must stay practical at the size of the
paper's real data set (633 tokens, 57 rings of size 11), or the
adversary substrate would be toothless exactly where it matters.
"""

import time

from repro.analysis.chain_reaction import cascade_attack, exact_analysis
from repro.analysis.metrics import population_metrics
from repro.core.modules import ModuleUniverse
from repro.data.monero import generate_monero_hour
from repro.tokenmagic.registry import consumed_closure


class TestMoneroScaleAnalysis:
    def setup_method(self):
        self.hour = generate_monero_hour(seed=5)
        self.rings = self.hour.rings
        self.universe = self.hour.universe

    def test_exact_analysis_completes_fast(self):
        start = time.perf_counter()
        analysis = exact_analysis(self.rings)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0
        # Disjoint super RSs: nothing eliminable, nothing deanonymized.
        assert analysis.deanonymization_rate == 0.0
        assert all(
            analysis.possible[r.rid] == r.tokens for r in self.rings
        )

    def test_cascade_matches_exact_on_disjoint_population(self):
        weak = cascade_attack(self.rings)
        strong = exact_analysis(self.rings)
        for ring in self.rings:
            assert weak.possible[ring.rid] == strong.possible[ring.rid]

    def test_population_metrics_at_scale(self):
        metrics = population_metrics(self.rings, self.universe)
        assert metrics.ring_count == 57
        assert metrics.mean_nominal_size == 11.0
        assert metrics.mean_effective_size == 11.0
        assert metrics.total_fee == 57 * 10

    def test_consumed_closure_at_scale(self):
        start = time.perf_counter()
        consumed = consumed_closure(list(self.rings))
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0
        assert consumed == frozenset()  # 57 disjoint 11-rings: no proof

    def test_module_decomposition_at_scale(self):
        start = time.perf_counter()
        modules = ModuleUniverse(self.universe, self.rings)
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0
        assert len(modules.modules) == 57 + 6

    def test_selector_throughput_at_scale(self):
        # One selection per algorithm stays well under a second.
        from repro.core.selector import get_selector

        modules = ModuleUniverse(self.universe, self.rings)
        target = self.hour.fresh_tokens[0]
        for name in ("smallest", "random", "progressive", "game"):
            start = time.perf_counter()
            result = get_selector(name)(modules, target, 0.6, 41)
            assert time.perf_counter() - start < 1.0
            assert target in result.tokens
