"""Unit tests for the mempool."""

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.errors import DoubleSpendError, UnknownTokenError, ValidationError
from repro.chain.mempool import Mempool
from repro.chain.transaction import RingInput, Transaction
from repro.crypto.keys import keypair_from_seed


def funded_pool(outputs=6, max_size=10_000):
    chain = Blockchain(verify_signatures=False)
    coinbase = Transaction(inputs=(), output_count=outputs)
    chain.append_block(chain.make_block([coinbase], timestamp=1.0))
    tokens = sorted(chain.universe.tokens)
    return Mempool(chain=chain, max_size=max_size), tokens


def spend(tokens, seed, nonce=0, mixins=1):
    keypair = keypair_from_seed(seed)
    ring = tuple(sorted(tokens[: mixins + 1]))
    return Transaction(
        inputs=(RingInput(ring_tokens=ring, key_image=keypair.key_image()),),
        output_count=1,
        nonce=nonce,
    )


class TestSubmit:
    def test_accepts_valid_transaction(self):
        pool, tokens = funded_pool()
        tx = spend(tokens, "alice")
        pool.submit(tx)
        assert tx.tx_id in pool
        assert len(pool) == 1

    def test_idempotent_resubmission(self):
        pool, tokens = funded_pool()
        tx = spend(tokens, "alice")
        pool.submit(tx)
        pool.submit(tx)
        assert len(pool) == 1

    def test_unknown_token_rejected(self):
        pool, _ = funded_pool()
        ghost = Transaction(
            inputs=(RingInput(ring_tokens=("ghost:0",)),), output_count=1
        )
        with pytest.raises(UnknownTokenError):
            pool.submit(ghost)

    def test_pending_key_image_conflict(self):
        pool, tokens = funded_pool()
        pool.submit(spend(tokens, "alice", nonce=0))
        with pytest.raises(DoubleSpendError):
            pool.submit(spend(tokens, "alice", nonce=1))

    def test_on_chain_key_image_conflict(self):
        pool, tokens = funded_pool()
        tx = spend(tokens, "alice")
        pool.chain.append_block(pool.chain.make_block([tx], timestamp=2.0))
        with pytest.raises(DoubleSpendError):
            pool.submit(spend(tokens, "alice", nonce=1))


class TestEviction:
    def test_full_pool_evicts_cheapest(self):
        pool, tokens = funded_pool(max_size=2)
        cheap = spend(tokens, "a", nonce=0, mixins=1)     # fee 1
        medium = spend(tokens, "b", nonce=1, mixins=2)    # fee 2
        rich = spend(tokens, "c", nonce=2, mixins=3)      # fee 3
        pool.submit(cheap)
        pool.submit(medium)
        pool.submit(rich)
        assert len(pool) == 2
        assert cheap.tx_id not in pool
        assert rich.tx_id in pool

    def test_low_fee_rejected_when_full(self):
        pool, tokens = funded_pool(max_size=1)
        pool.submit(spend(tokens, "a", nonce=0, mixins=3))
        with pytest.raises(ValidationError):
            pool.submit(spend(tokens, "b", nonce=1, mixins=1))


class TestMining:
    def test_select_by_fee(self):
        pool, tokens = funded_pool()
        low = spend(tokens, "a", nonce=0, mixins=1)
        high = spend(tokens, "b", nonce=1, mixins=4)
        pool.submit(low)
        pool.submit(high)
        chosen = pool.select_for_block(limit=1)
        assert chosen == [high]

    def test_mine_block_applies_and_prunes(self):
        pool, tokens = funded_pool()
        tx = spend(tokens, "alice")
        pool.submit(tx)
        block = pool.mine_block(timestamp=2.0)
        assert tx in block.transactions
        assert len(pool) == 0
        assert pool.chain.height == 2

    def test_prune_removes_externally_confirmed(self):
        pool, tokens = funded_pool()
        tx = spend(tokens, "alice")
        pool.submit(tx)
        # The same key image lands on chain via another path.
        other = spend(tokens, "alice", nonce=7)
        pool.chain.append_block(pool.chain.make_block([other], timestamp=2.0))
        assert pool.prune() == 1
        assert len(pool) == 0

    def test_mine_empty_block(self):
        pool, _ = funded_pool()
        block = pool.mine_block(timestamp=2.0)
        assert block.transactions == ()
