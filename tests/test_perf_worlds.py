"""WorldSet (compact bitset worlds + memoized DTRS enumeration) vs seed.

Equivalence targets:

* the world set itself equals ``enumerate_combinations`` (as sets of
  rid -> token dicts),
* ``dtrss_of`` produces exactly the seed ``get_dtrss_reference`` DTRSs
  (same (pairs, determined HT) sets),
* ``extend`` (the shared-prefix closure used by the solver cache)
  equals building the closure's WorldSet from scratch,
* deadline enforcement raises inside enumeration, not after it.
"""

import random

import pytest

from repro.core.combinations import enumerate_combinations
from repro.core.dtrs import get_dtrss
from repro.core.perf.reference import get_dtrss_reference
from repro.core.perf.worlds import DeadlineExceeded, WorldSet
from repro.core.ring import Ring, TokenUniverse


def make_ring(rid, tokens, seq=0, c=1.0, ell=1):
    return Ring(rid=rid, tokens=frozenset(tokens), c=c, ell=ell, seq=seq)


def random_system(seed, token_count=8, ring_count=None, max_size=4, ht_count=4):
    rng = random.Random(seed)
    tokens = [f"t{i}" for i in range(token_count)]
    universe = TokenUniverse(
        {token: f"h{rng.randrange(ht_count)}" for token in tokens}
    )
    count = ring_count if ring_count is not None else rng.randint(2, 5)
    rings = [
        make_ring(f"r{i}", rng.sample(tokens, rng.randint(1, max_size)), seq=i)
        for i in range(count)
    ]
    return universe, rings


def world_key(world):
    return frozenset(world.items())


class TestWorldEnumeration:
    @pytest.mark.parametrize("seed", range(15))
    def test_equals_enumerate_combinations(self, seed):
        _, rings = random_system(seed)
        ours = {world_key(w) for w in WorldSet(rings).as_dicts()}
        expected = {world_key(w) for w in enumerate_combinations(rings)}
        assert ours == expected

    def test_duplicate_rids_rejected(self):
        rings = [make_ring("r0", {"a"}), make_ring("r0", {"b"}, seq=1)]
        with pytest.raises(ValueError):
            WorldSet(rings)

    def test_empty_ring_set_has_one_empty_world(self):
        worlds = WorldSet([])
        assert worlds.as_dicts() == [{}]


class TestExtend:
    @pytest.mark.parametrize("seed", range(15))
    def test_extend_equals_rebuild(self, seed):
        _, rings = random_system(600 + seed, token_count=9)
        candidate = make_ring("r_tau", {"t0", "t4", "t7"}, seq=len(rings))
        base = WorldSet(rings)
        extended = {world_key(w) for w in base.extend(candidate).as_dicts()}
        rebuilt = {
            world_key(w) for w in WorldSet(rings + [candidate]).as_dicts()
        }
        assert extended == rebuilt

    def test_extend_empty_base(self):
        candidate = make_ring("r_tau", {"a", "b"})
        worlds = WorldSet([]).extend(candidate)
        assert {world_key(w) for w in worlds.as_dicts()} == {
            frozenset({("r_tau", "a")}),
            frozenset({("r_tau", "b")}),
        }


def dtrs_keys(dtrss):
    return {(dtrs.pairs, dtrs.determined_ht) for dtrs in dtrss}


class TestDtrsEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_dtrss_of_matches_reference(self, seed):
        universe, rings = random_system(700 + seed)
        worlds = WorldSet(rings)
        for target in rings:
            assert dtrs_keys(
                worlds.dtrss_of(target.rid, universe)
            ) == dtrs_keys(get_dtrss_reference(target, rings, universe)), (
                f"DTRS disagreement for {target.rid} (seed {seed})"
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_public_get_dtrss_matches_reference(self, seed):
        universe, rings = random_system(800 + seed)
        for target in rings:
            assert dtrs_keys(get_dtrss(target, rings, universe)) == dtrs_keys(
                get_dtrss_reference(target, rings, universe)
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_max_size_cap_matches_reference(self, seed):
        universe, rings = random_system(900 + seed, ring_count=4)
        target = rings[0]
        for cap in (0, 1, 2):
            assert dtrs_keys(
                WorldSet(rings).dtrss_of(target.rid, universe, max_size=cap)
            ) == dtrs_keys(
                get_dtrss_reference(target, rings, universe, max_size=cap)
            )

    def test_memoized_repeat_query_hits_cache(self):
        universe, rings = random_system(1)
        worlds = WorldSet(rings)
        first = worlds.dtrss_of(rings[0].rid, universe)
        second = worlds.dtrss_of(rings[0].rid, universe)
        # The list is a defensive copy but its entries come straight
        # from the cache — same Dtrs objects, no re-enumeration.
        assert second == first
        assert all(a is b for a, b in zip(first, second))


class TestDeadline:
    def test_deadline_trips_inside_enumeration(self):
        # 10 rings over 11 tokens, all full: ~10^7-world blow-up.  A
        # deadline in the past must abort the backtracking immediately
        # instead of enumerating to completion first.
        tokens = {f"t{i}" for i in range(11)}
        rings = [make_ring(f"r{i}", tokens, seq=i) for i in range(10)]
        with pytest.raises(DeadlineExceeded):
            WorldSet(rings, deadline=0.0)
