"""Unit tests for the Game-theoretic Algorithm (Algorithm 5)."""

import pytest

from repro.core.diversity import ht_counts_satisfy
from repro.core.game import game_select
from repro.core.modules import ModuleUniverse
from repro.core.problem import InfeasibleError
from repro.core.ring import TokenUniverse

from helpers import example3_modules


class TestPaperExample3:
    def test_equilibrium_matches_paper(self):
        # Paper: TM_G converges to r_tau = s1 ∪ s3, size 8.
        result = game_select(example3_modules(), "t11", c=1.0, ell=4)
        assert set(result.modules) == {"s:s3", "s:s1"}
        assert result.size == 8

    def test_beats_progressive_on_example3(self):
        from repro.core.progressive import progressive_select

        modules = example3_modules()
        game = game_select(modules, "t11", c=1.0, ell=4)
        progressive = progressive_select(modules, "t11", c=1.0, ell=4)
        assert game.size <= progressive.size


class TestEquilibriumProperties:
    def test_result_satisfies_requirement(self):
        modules = example3_modules()
        result = game_select(modules, "t11", c=1.0, ell=4)
        counts = modules.universe.ht_counts(result.tokens)
        assert ht_counts_satisfy(counts, 1.0, 4)

    def test_one_removal_minimality(self):
        # At a Nash equilibrium no single selected module (other than
        # the anchor) can leave while preserving feasibility.
        modules = example3_modules()
        result = game_select(modules, "t11", c=1.0, ell=4)
        anchor_mid = modules.module_of("t11").mid
        chosen = [mid for mid in result.modules if mid != anchor_mid]
        for dropped in chosen:
            tokens = set()
            for mid in result.modules:
                if mid == dropped:
                    continue
                module = next(m for m in modules.modules if m.mid == mid)
                tokens |= module.tokens
            counts = modules.universe.ht_counts(tokens)
            assert not ht_counts_satisfy(counts, 1.0, 4)

    def test_anchor_always_included(self):
        modules = example3_modules()
        result = game_select(modules, "t7", c=1.0, ell=4)
        assert "t7" in result.tokens

    def test_deterministic(self):
        modules = example3_modules()
        assert (
            game_select(modules, "t11", c=1.0, ell=4).tokens
            == game_select(modules, "t11", c=1.0, ell=4).tokens
        )

    def test_algorithm_label(self):
        result = game_select(example3_modules(), "t11", c=1.0, ell=4)
        assert result.algorithm == "game"


class TestInfeasibility:
    def test_full_universe_infeasible_detected_fast(self):
        universe = TokenUniverse({f"t{i}": "h1" for i in range(5)})
        modules = ModuleUniverse(universe, [])
        with pytest.raises(InfeasibleError):
            game_select(modules, "t0", c=1.0, ell=2)

    def test_error_message_mentions_requirement(self):
        universe = TokenUniverse({"a": "h1", "b": "h1"})
        modules = ModuleUniverse(universe, [])
        with pytest.raises(InfeasibleError, match="diversity"):
            game_select(modules, "a", c=1.0, ell=3)


class TestFreshTokenPlay:
    def test_fresh_tokens_usable_as_players(self):
        universe = TokenUniverse(
            {"a": "h1", "b": "h2", "c": "h3", "d": "h4", "e": "h5"}
        )
        modules = ModuleUniverse(universe, [])
        result = game_select(modules, "a", c=1.0, ell=2)
        counts = universe.ht_counts(result.tokens)
        assert ht_counts_satisfy(counts, 1.0, 2)
        # With all-singleton modules the equilibrium is tight.
        assert result.size <= 3
