"""Tests for the experiment harness and per-figure drivers."""

import math


from repro.experiments.figures import (
    fig3_output_distribution,
    fig4_bfs_scaling,
    fig5_vary_c,
    fig7_vary_sigma,
)
from repro.experiments.harness import (
    DEFAULT_APPROACHES,
    ApproachResult,
    format_table,
    run_sweep,
)
from repro.experiments.tables import settings_banner
from repro.data.synthetic import SyntheticConfig, generate_synthetic


class TestFig3:
    def test_distribution_totals(self):
        dist = fig3_output_distribution(seed=0)
        assert sum(dist.values()) == 285
        assert sum(count * n for n, count in dist.items()) == 633

    def test_two_output_mode(self):
        dist = fig3_output_distribution(seed=0)
        assert dist.most_common(1)[0][0] == 2


class TestFig4:
    def test_sequential_generation_runs(self):
        measurements = fig4_bfs_scaling(
            token_count=8, ht_count=4, c=2.0, ell=2, max_rings=3, time_budget=5.0
        )
        assert measurements
        assert all(m.ring_index == i + 1 for i, m in enumerate(measurements))
        assert all(m.elapsed >= 0 for m in measurements)

    def test_budget_cuts_off(self):
        measurements = fig4_bfs_scaling(
            token_count=20, ht_count=10, c=5.0, ell=3, max_rings=8, time_budget=0.3
        )
        # Either all rings completed fast or the last record flags the cut.
        if measurements and measurements[-1].budget_exceeded:
            assert measurements[-1].ring_size == 0


class TestSweeps:
    def test_fig5_shape(self):
        sweep = fig5_vary_c(instances_per_point=4, seed=0)
        assert sweep.points == [0.2, 0.4, 0.6, 0.8, 1.0]
        for point in sweep.points:
            approaches = {r.approach for r in sweep.results[point]}
            assert approaches == set(DEFAULT_APPROACHES)

    def test_fig5_sizes_decrease_with_c(self):
        sweep = fig5_vary_c(instances_per_point=8, seed=1)
        sizes = sweep.series("progressive", "mean_size")
        assert sizes[0] >= sizes[-1]

    def test_fig7_sizes_decrease_with_sigma(self):
        sweep = fig7_vary_sigma(instances_per_point=8, seed=1)
        sizes = sweep.series("progressive", "mean_size")
        assert sizes[0] >= sizes[-1]

    def test_series_extraction(self):
        sweep = fig5_vary_c(instances_per_point=2, seed=0)
        series = sweep.series("game", "mean_time")
        assert len(series) == len(sweep.points)
        assert all(t >= 0 or math.isnan(t) for t in series)


class TestHarnessPlumbing:
    def test_run_sweep_custom(self):
        def make_modules(_value):
            return generate_synthetic(
                SyntheticConfig(super_count=8, fresh_count=2, seed=0)
            ).module_universe()

        sweep = run_sweep(
            parameter="x",
            values=[1, 2],
            make_modules=make_modules,
            c_of=lambda _v: 1.0,
            ell_of=lambda _v: 3,
            instances_per_point=3,
            approaches=("smallest",),
        )
        assert sweep.points == [1, 2]
        result = sweep.results[1][0]
        assert result.approach == "smallest"
        assert result.instances + result.failures == 3

    def test_format_table_contains_labels(self):
        sweep = fig5_vary_c(instances_per_point=2, seed=0)
        table = format_table(sweep, "mean_size")
        for label in ("TM_S", "TM_R", "TM_P", "TM_G"):
            assert label in table

    def test_approach_labels(self):
        assert ApproachResult("progressive", 0, 0, 0, 0).label == "TM_P"
        assert ApproachResult("bfs", 0, 0, 0, 0).label == "TM_B"
        assert ApproachResult("custom", 0, 0, 0, 0).label == "custom"

    def test_settings_banner(self):
        banner = settings_banner("Fig 5", c="0.2..1")
        assert "Fig 5" in banner
        assert "c=0.2..1" in banner
