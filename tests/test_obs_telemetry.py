"""The telemetry primitives: exact quantiles, bounded windows, rolling
rates and Prometheus rendering — all deterministic (no clock reads
inside :mod:`repro.obs.telemetry`; every timestamped op takes an
explicit ``now``)."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MemoryRecorder
from repro.obs.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    FanoutRecorder,
    FixedBucketHistogram,
    RollingCounter,
    Telemetry,
    format_bound,
    render_prometheus,
)


# -- FixedBucketHistogram ----------------------------------------------------


def test_quantiles_are_exact_nearest_rank():
    hist = FixedBucketHistogram()
    for value in range(1, 101):
        hist.observe(float(value))
    assert hist.quantile(0.50) == 50.0
    assert hist.quantile(0.95) == 95.0
    assert hist.quantile(0.99) == 99.0
    assert hist.quantile(1.00) == 100.0


def test_quantile_of_empty_histogram_is_none():
    assert FixedBucketHistogram().quantile(0.5) is None


def test_quantile_rejects_out_of_range_q():
    hist = FixedBucketHistogram()
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.quantile(0.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_bounds_must_be_strictly_increasing():
    with pytest.raises(ValueError):
        FixedBucketHistogram(bounds=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        FixedBucketHistogram(bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        FixedBucketHistogram(bounds=())


def test_buckets_are_cumulative_with_inf_tail():
    hist = FixedBucketHistogram(bounds=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["buckets"][format_bound(0.01)] == 1
    assert snap["buckets"][format_bound(0.1)] == 2
    assert snap["buckets"][format_bound(1.0)] == 3
    assert snap["buckets"]["+Inf"] == 4
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(5.555)
    assert snap["min"] == 0.005
    assert snap["max"] == 5.0


def test_quantile_window_is_bounded_but_totals_are_not():
    hist = FixedBucketHistogram(window=4)
    for value in (100.0, 1.0, 2.0, 3.0, 4.0):
        hist.observe(value)
    # 100.0 fell out of the quantile window, not out of the totals.
    assert hist.window_len == 4
    assert hist.quantile(1.0) == 4.0
    assert hist.count == 5
    assert hist.max == 100.0


def test_default_buckets_cover_sub_millisecond_to_a_minute():
    assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
    assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


# -- RollingCounter ----------------------------------------------------------


def test_rolling_counter_prunes_outside_the_window():
    counter = RollingCounter(window_s=10.0)
    counter.add(0.0)
    counter.add(5.0, value=2)
    counter.add(12.0)
    assert counter.total == 4
    assert counter.in_window(12.0) == 3  # the t=0 hit aged out
    assert counter.rate(12.0) == pytest.approx(0.3)
    # Pruning follows the (monotonic) clock forward.
    assert counter.in_window(23.0) == 0
    assert counter.total == 4


# -- Telemetry registry ------------------------------------------------------


def test_snapshot_is_deterministic_and_sorted():
    tele = Telemetry()
    tele.observe("b_hist", 0.5)
    tele.observe("a_hist", 0.25)
    tele.count("zeta", now=1.0)
    tele.count("alpha", now=2.0, value=3)
    tele.gauge("depth", 7)
    snap = tele.snapshot(now=3.0)
    assert list(snap["histograms"]) == ["a_hist", "b_hist"]
    assert list(snap["counters"]) == ["alpha", "zeta"]
    assert snap["counters"]["alpha"] == {
        "total": 3,
        "in_window": 3,
        "rate_per_s": 3 / tele.rate_window_s,
    }
    assert snap["gauges"] == {"depth": 7}
    assert snap == tele.snapshot(now=3.0)


def test_read_accessors_never_create_registry_entries():
    tele = Telemetry()
    assert tele.counter_total("missing") == 0
    assert tele.counter_in_window("missing", now=0.0) == 0
    assert tele.quantile("missing", 0.5) is None
    snap = tele.snapshot(now=0.0)
    assert snap["counters"] == {}
    assert snap["histograms"] == {}


def test_totals_filters_by_prefix():
    tele = Telemetry()
    tele.count("rung.exact", now=0.0, value=2)
    tele.count("rung.relaxation", now=0.0)
    tele.count("requests", now=0.0)
    assert tele.totals("rung.") == {"rung.exact": 2, "rung.relaxation": 1}


# -- FanoutRecorder ----------------------------------------------------------


def test_fanout_forwards_to_every_sink_and_skips_none():
    first, second = MemoryRecorder(), MemoryRecorder()
    fan = FanoutRecorder(first, None, second)
    fan.count("hits", 2)
    fan.gauge("depth", 3)
    fan.observe("lat", 0.5)
    for sink in (first, second):
        assert sink.counters["hits"] == 2
        assert sink.gauges["depth"] == 3
        assert sink.histograms["lat"]["count"] == 1
        assert sink.histograms["lat"]["sum"] == 0.5


# -- Prometheus rendering ----------------------------------------------------


def test_render_prometheus_exposition_shape():
    tele = Telemetry()
    tele.histogram("request_s", bounds=(0.1, 1.0)).observe(0.5)
    tele.count("requests", now=0.0)
    tele.gauge("queue_depth", 4)
    text = render_prometheus(tele.snapshot(now=0.0), prefix="repro_service")
    assert text.endswith("\n")
    assert "# TYPE repro_service_request_s histogram" in text
    assert 'repro_service_request_s_bucket{le="0.1"} 0' in text
    assert 'repro_service_request_s_bucket{le="1.0"} 1' in text
    assert 'repro_service_request_s_bucket{le="+Inf"} 1' in text
    assert "repro_service_request_s_sum 0.5" in text
    assert "repro_service_request_s_count 1" in text
    assert "repro_service_request_s_p99 0.5" in text
    assert "# TYPE repro_service_requests_total counter" in text
    assert "repro_service_requests_total 1" in text
    assert "repro_service_queue_depth 4" in text


def test_render_prometheus_sanitizes_names_and_takes_extra_counters():
    tele = Telemetry()
    tele.count("status.ok", now=0.0)
    text = render_prometheus(
        tele.snapshot(now=0.0),
        prefix="repro",
        extra_counters={"memo.hits": 5},
    )
    assert "repro_status_ok_total 1" in text
    assert "repro_memo_hits_total 5" in text
