"""Unit tests for the bLSAG linkable ring signatures."""

import pytest

from repro.crypto.keys import keypair_from_seed
from repro.crypto.lsag import RingSignatureProof, SigningError, is_linked, sign, verify


def make_ring(size: int, signer_position: int, signer_seed: str = "signer"):
    signer = keypair_from_seed(signer_seed)
    ring = [keypair_from_seed(f"decoy-{i}").public for i in range(size - 1)]
    ring.insert(signer_position, signer.public)
    return ring, signer


class TestSignVerify:
    def test_round_trip(self):
        ring, signer = make_ring(5, 2)
        proof = sign(b"message", ring, signer)
        assert verify(b"message", proof)

    def test_signer_position_hidden_everywhere(self):
        for position in range(4):
            ring, signer = make_ring(4, position)
            proof = sign(b"m", ring, signer)
            assert verify(b"m", proof)

    def test_minimum_ring_of_two(self):
        ring, signer = make_ring(2, 0)
        proof = sign(b"m", ring, signer)
        assert verify(b"m", proof)

    def test_singleton_ring(self):
        ring, signer = make_ring(1, 0)
        proof = sign(b"m", ring, signer)
        assert verify(b"m", proof)

    def test_tampered_message_fails(self):
        ring, signer = make_ring(4, 1)
        proof = sign(b"message", ring, signer)
        assert not verify(b"massage", proof)

    def test_tampered_response_fails(self):
        ring, signer = make_ring(4, 1)
        proof = sign(b"m", ring, signer)
        tampered = RingSignatureProof(
            ring=proof.ring,
            c0=proof.c0,
            responses=(proof.responses[0] + 1,) + proof.responses[1:],
            key_image=proof.key_image,
        )
        assert not verify(b"m", tampered)

    def test_tampered_c0_fails(self):
        ring, signer = make_ring(4, 1)
        proof = sign(b"m", ring, signer)
        tampered = RingSignatureProof(
            ring=proof.ring,
            c0=proof.c0 + 1,
            responses=proof.responses,
            key_image=proof.key_image,
        )
        assert not verify(b"m", tampered)

    def test_swapped_key_image_fails(self):
        ring, signer = make_ring(4, 1)
        other = keypair_from_seed("someone-else")
        proof = sign(b"m", ring, signer)
        tampered = RingSignatureProof(
            ring=proof.ring,
            c0=proof.c0,
            responses=proof.responses,
            key_image=other.key_image(),
        )
        assert not verify(b"m", tampered)

    def test_response_count_mismatch_fails(self):
        ring, signer = make_ring(4, 1)
        proof = sign(b"m", ring, signer)
        truncated = RingSignatureProof(
            ring=proof.ring,
            c0=proof.c0,
            responses=proof.responses[:-1],
            key_image=proof.key_image,
        )
        assert not verify(b"m", truncated)


class TestSigningErrors:
    def test_signer_not_in_ring(self):
        ring = [keypair_from_seed(f"decoy-{i}").public for i in range(3)]
        with pytest.raises(SigningError):
            sign(b"m", ring, keypair_from_seed("outsider"))

    def test_duplicate_ring_members_rejected(self):
        signer = keypair_from_seed("signer")
        ring = [signer.public, signer.public]
        with pytest.raises(SigningError):
            sign(b"m", ring, signer)


class TestLinkability:
    def test_same_key_links(self):
        ring, signer = make_ring(4, 0)
        proof_a = sign(b"first", ring, signer)
        proof_b = sign(b"second", ring, signer)
        assert is_linked(proof_a, proof_b)

    def test_different_keys_do_not_link(self):
        ring, signer = make_ring(4, 0)
        proof_a = sign(b"m", ring, signer)
        decoy_keypair = keypair_from_seed("decoy-0")
        proof_b = sign(b"m", ring, decoy_keypair)
        assert not is_linked(proof_a, proof_b)

    def test_link_independent_of_ring(self):
        signer = keypair_from_seed("signer")
        ring_a = [signer.public] + [keypair_from_seed(f"a{i}").public for i in range(3)]
        ring_b = [signer.public] + [keypair_from_seed(f"b{i}").public for i in range(5)]
        proof_a = sign(b"m", ring_a, signer)
        proof_b = sign(b"n", ring_b, signer)
        assert is_linked(proof_a, proof_b)


class TestProofShape:
    def test_size_property(self):
        ring, signer = make_ring(6, 3)
        proof = sign(b"m", ring, signer)
        assert proof.size == 6
        assert len(proof.responses) == 6

    def test_signatures_are_randomized(self):
        ring, signer = make_ring(3, 0)
        assert sign(b"m", ring, signer) != sign(b"m", ring, signer)
