"""Unit and integration tests for the ledger."""

import pytest

from repro.chain.block import GENESIS_HASH, Block
from repro.chain.blockchain import Blockchain
from repro.chain.errors import (
    DoubleSpendError,
    UnknownTokenError,
    ValidationError,
)
from repro.chain.transaction import RingInput, Transaction
from repro.crypto.keys import keypair_from_seed
from repro.crypto.lsag import sign


def chain_with_coinbase(outputs=4, verify_signatures=False):
    chain = Blockchain(verify_signatures=verify_signatures)
    tx = Transaction(inputs=(), output_count=outputs)
    chain.append_block(chain.make_block([tx], timestamp=1.0))
    return chain, tx


class TestAppend:
    def test_genesis_append(self):
        chain, tx = chain_with_coinbase()
        assert chain.height == 1
        assert chain.has_token(f"{tx.tx_id}:0")
        assert len(chain.universe) == 4

    def test_height_mismatch_rejected(self):
        chain, _ = chain_with_coinbase()
        bad = Block(height=5, prev_hash=chain.tip_hash, timestamp=2.0, transactions=())
        with pytest.raises(ValidationError):
            chain.append_block(bad)

    def test_prev_hash_mismatch_rejected(self):
        chain, _ = chain_with_coinbase()
        bad = Block(height=1, prev_hash=GENESIS_HASH, timestamp=2.0, transactions=())
        with pytest.raises(ValidationError):
            chain.append_block(bad)

    def test_unknown_token_rejected(self):
        chain, _ = chain_with_coinbase()
        tx = Transaction(
            inputs=(RingInput(ring_tokens=("ghost:0",)),), output_count=1
        )
        with pytest.raises(UnknownTokenError):
            chain.append_block(chain.make_block([tx], timestamp=2.0))

    def test_state_unchanged_after_rejection(self):
        chain, _ = chain_with_coinbase()
        height_before = chain.height
        tx = Transaction(
            inputs=(RingInput(ring_tokens=("ghost:0",)),), output_count=1
        )
        with pytest.raises(UnknownTokenError):
            chain.append_block(chain.make_block([tx], timestamp=2.0))
        assert chain.height == height_before

    def test_rings_view_tracks_inputs(self):
        chain, coinbase = chain_with_coinbase()
        members = tuple(sorted(f"{coinbase.tx_id}:{i}" for i in range(2)))
        spend = Transaction(
            inputs=(RingInput(ring_tokens=members, claimed_c=2.0, claimed_ell=2),),
            output_count=1,
        )
        chain.append_block(chain.make_block([spend], timestamp=2.0))
        rings = list(chain.rings)
        assert len(rings) == 1
        assert rings[0].tokens == frozenset(members)
        assert rings[0].c == 2.0
        assert rings[0].ell == 2

    def test_universe_maps_tokens_to_origin(self):
        chain, coinbase = chain_with_coinbase()
        assert chain.universe.ht_of(f"{coinbase.tx_id}:0") == coinbase.tx_id


class TestDoubleSpend:
    def _spend(self, chain, coinbase, keypair, nonce=0):
        members = tuple(sorted(f"{coinbase.tx_id}:{i}" for i in range(2)))
        return Transaction(
            inputs=(
                RingInput(ring_tokens=members, key_image=keypair.key_image()),
            ),
            output_count=1,
            nonce=nonce,
        )

    def test_same_key_image_rejected_across_blocks(self):
        chain, coinbase = chain_with_coinbase()
        keypair = keypair_from_seed("spender")
        chain.append_block(
            chain.make_block([self._spend(chain, coinbase, keypair)], timestamp=2.0)
        )
        with pytest.raises(DoubleSpendError):
            chain.append_block(
                chain.make_block(
                    [self._spend(chain, coinbase, keypair, nonce=1)], timestamp=3.0
                )
            )

    def test_same_key_image_rejected_within_block(self):
        chain, coinbase = chain_with_coinbase()
        keypair = keypair_from_seed("spender")
        tx_a = self._spend(chain, coinbase, keypair, nonce=0)
        tx_b = self._spend(chain, coinbase, keypair, nonce=1)
        with pytest.raises(DoubleSpendError):
            chain.append_block(chain.make_block([tx_a, tx_b], timestamp=2.0))

    def test_key_image_seen(self):
        chain, coinbase = chain_with_coinbase()
        keypair = keypair_from_seed("spender")
        tx = self._spend(chain, coinbase, keypair)
        chain.append_block(chain.make_block([tx], timestamp=2.0))
        assert chain.key_image_seen(keypair.key_image().encode())


class TestSignatureVerification:
    def test_valid_proof_accepted_and_invalid_rejected(self):
        chain = Blockchain(verify_signatures=True)
        owners = [keypair_from_seed(f"user{i}") for i in range(3)]
        coinbase = Transaction(inputs=(), output_count=3)
        chain.append_block(chain.make_block([coinbase], timestamp=1.0))
        outputs = coinbase.make_outputs(owners=[kp.public for kp in owners])
        chain.register_owned_outputs(outputs)

        spender = owners[1]
        members = tuple(sorted(o.token_id for o in outputs))
        ring_keys = [chain.token(t).owner for t in members]
        unsigned = Transaction(
            inputs=(
                RingInput(ring_tokens=members, key_image=spender.key_image()),
            ),
            output_count=1,
        )
        message = Blockchain._message_for(unsigned)
        proof = sign(message, ring_keys, spender)
        signed = Transaction(
            inputs=(
                RingInput(
                    ring_tokens=members,
                    key_image=spender.key_image(),
                    proof=proof,
                ),
            ),
            output_count=1,
        )
        chain.append_block(chain.make_block([signed], timestamp=2.0))
        assert chain.height == 2

        # A proof whose key image does not match the declared one fails.
        outsider = keypair_from_seed("outsider")
        bad = Transaction(
            inputs=(
                RingInput(
                    ring_tokens=members,
                    key_image=outsider.key_image(),
                    proof=proof,
                ),
            ),
            output_count=1,
            nonce=9,
        )
        with pytest.raises(ValidationError):
            chain.append_block(chain.make_block([bad], timestamp=3.0))

    def test_missing_owner_key_rejected(self):
        chain, coinbase = chain_with_coinbase(verify_signatures=True)
        spender = keypair_from_seed("spender")
        members = tuple(sorted(f"{coinbase.tx_id}:{i}" for i in range(2)))
        ring_keys = [keypair_from_seed(f"x{i}").public for i in range(2)]
        proof = sign(b"whatever", ring_keys, keypair_from_seed("x0"))
        tx = Transaction(
            inputs=(
                RingInput(
                    ring_tokens=members,
                    key_image=spender.key_image(),
                    proof=proof,
                ),
            ),
            output_count=1,
        )
        with pytest.raises(ValidationError):
            chain.append_block(chain.make_block([tx], timestamp=2.0))


class TestPolicyVerifiers:
    def test_policy_called_and_can_reject(self):
        calls = []

        def policy(chain, ring_input):
            calls.append(ring_input)
            raise ValidationError("rejected by policy")

        chain = Blockchain(verify_signatures=False, policy_verifiers=[policy])
        coinbase = Transaction(inputs=(), output_count=2)
        chain.append_block(chain.make_block([coinbase], timestamp=1.0))
        members = tuple(sorted(f"{coinbase.tx_id}:{i}" for i in range(2)))
        spend = Transaction(inputs=(RingInput(ring_tokens=members),), output_count=1)
        with pytest.raises(ValidationError, match="policy"):
            chain.append_block(chain.make_block([spend], timestamp=2.0))
        assert len(calls) == 1


class TestClockInjection:
    def test_default_clock_is_wall_time(self):
        import time

        chain = Blockchain(verify_signatures=False)
        before = time.time()
        block = chain.make_block([Transaction(inputs=(), output_count=1)])
        assert before <= block.timestamp <= time.time()

    def test_manual_clock_stamps_blocks_deterministically(self):
        from repro.obs.clock import ManualClock

        chain = Blockchain(
            verify_signatures=False, clock=ManualClock(start=100.0, step=10.0)
        )
        first = chain.make_block([Transaction(inputs=(), output_count=1)])
        chain.append_block(first)
        second = chain.make_block([Transaction(inputs=(), output_count=1, nonce=1)])
        assert (first.timestamp, second.timestamp) == (100.0, 110.0)

    def test_explicit_timestamp_bypasses_clock(self):
        from repro.obs.clock import ManualClock

        clock = ManualClock(start=100.0)
        chain = Blockchain(verify_signatures=False, clock=clock)
        block = chain.make_block(
            [Transaction(inputs=(), output_count=1)], timestamp=7.0
        )
        assert block.timestamp == 7.0
        assert clock.now == 100.0  # the clock was never consulted
