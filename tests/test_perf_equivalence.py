"""End-to-end equivalence of the perf layer against the frozen seed.

The contract of the performance PR: caching, incremental matching,
compact worlds and the parallel fan-out change *nothing* observable —
same optimum, same mixin set, same ``candidates_checked``, same
exceptions — only wall-clock.  These tests pin that contract, plus the
budget-regression fix the seed lacked (a deadline that fires *inside*
one pathological candidate's DTRS sweep).
"""

import random
import time

import pytest

from repro.analysis.chain_reaction import exact_analysis
from repro.cli import main
from repro.core.bfs import SearchBudgetExceeded, bfs_select
from repro.core.perf.cache import SolverCache
from repro.core.perf.reference import bfs_select_reference
from repro.core.problem import DamsInstance, InfeasibleError
from repro.core.ring import Ring, TokenUniverse


def random_instance(seed, token_count=8, ht_count=4, history=2):
    rng = random.Random(seed)
    tokens = [f"t{i}" for i in range(token_count)]
    universe = TokenUniverse(
        {token: f"h{rng.randrange(ht_count)}" for token in tokens}
    )
    rings = []
    for i in range(rng.randint(0, history)):
        size = rng.randint(2, 4)
        rings.append(
            Ring(
                rid=f"r{i}",
                tokens=frozenset(rng.sample(tokens, size)),
                c=1.0,
                ell=1,
                seq=i,
            )
        )
    target = tokens[rng.randrange(token_count)]
    c = rng.choice([1.0, 2.0])
    ell = rng.choice([2, 3])
    return DamsInstance(universe, rings, target, c=c, ell=ell)


def outcomes_of(solver, instance, **kwargs):
    """(kind, payload): 'ok' results compare by ring/mixins/checked."""
    try:
        result = solver(instance, **kwargs)
    except InfeasibleError:
        return ("infeasible", None)
    return (
        "ok",
        (result.ring.tokens, result.mixins, result.candidates_checked),
    )


class TestBfsEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_optimized_equals_reference(self, seed):
        instance = random_instance(seed)
        assert outcomes_of(bfs_select, instance) == outcomes_of(
            bfs_select_reference, instance
        ), f"solver divergence on seed {seed}"

    @pytest.mark.parametrize("seed", range(6))
    def test_parallel_equals_serial(self, seed):
        instance = random_instance(50 + seed)
        serial = outcomes_of(bfs_select, instance)
        parallel = outcomes_of(bfs_select, instance, workers=2)
        assert parallel == serial, f"workers=2 divergence on seed {seed}"

    @pytest.mark.parametrize("seed", range(6))
    def test_shared_cache_across_calls(self, seed):
        # One SolverCache reused for every target over the same history
        # must not leak state between searches.
        instance = random_instance(80 + seed, history=2)
        cache = SolverCache(instance.universe, instance.rings)
        for target in sorted(instance.universe.tokens)[:4]:
            probe = DamsInstance(
                instance.universe,
                list(instance.rings),
                target,
                c=instance.c,
                ell=instance.ell,
            )
            assert outcomes_of(bfs_select, probe, cache=cache) == outcomes_of(
                bfs_select_reference, probe
            )

    def test_sequential_workload_equals_reference(self):
        # Fig-4 style: each accepted ring enters the next instance's
        # history, so cache/worlds bugs would compound and diverge.
        rng = random.Random(3)
        universe = TokenUniverse(
            {f"t{i:02d}": f"h{rng.randrange(5)}" for i in range(12)}
        )
        rings = []
        consumed = set()
        for index in range(3):
            free = sorted(universe.tokens - consumed)
            target = free[rng.randrange(len(free))]
            instance = DamsInstance(universe, list(rings), target, c=2.0, ell=3)
            ours = outcomes_of(bfs_select, instance)
            theirs = outcomes_of(bfs_select_reference, instance)
            assert ours == theirs, f"divergence at generation {index}"
            if ours[0] != "ok":
                break
            tokens, _, _ = ours[1]
            rings.append(
                Ring(
                    rid=f"g{index}", tokens=tokens, c=2.0, ell=3, seq=index
                )
            )
            consumed.add(target)


class TestBudgetRegression:
    def test_deadline_fires_inside_one_candidate(self):
        # 11 rings over 12 fully-shared tokens: the very first candidate
        # ({t0} alone) pulls the whole component into its closure, whose
        # world enumeration has ~12!/1 states.  The seed only looked at
        # the clock between candidates, so it would grind through the
        # entire enumeration; the fixed solver must trip its deadline
        # inside the sweep and return promptly.
        tokens = {f"t{i}" for i in range(12)}
        universe = TokenUniverse({t: f"h{t[1:]}" for t in tokens})
        rings = [
            Ring(rid=f"r{i}", tokens=frozenset(tokens), c=1.0, ell=1, seq=i)
            for i in range(11)
        ]
        instance = DamsInstance(universe, rings, "t0", c=1.0, ell=1)
        start = time.perf_counter()
        with pytest.raises(SearchBudgetExceeded):
            bfs_select(instance, time_budget=0.3)
        assert time.perf_counter() - start < 5.0


class TestAnalysisEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_parallel_analysis_equals_serial(self, seed):
        rng = random.Random(500 + seed)
        tokens = [f"t{i}" for i in range(10)]
        rings = [
            Ring(
                rid=f"r{i}",
                tokens=frozenset(rng.sample(tokens, rng.randint(2, 4))),
                c=1.0,
                ell=1,
                seq=i,
            )
            for i in range(5)
        ]
        serial = exact_analysis(rings)
        fanned = exact_analysis(rings, workers=2)
        assert fanned.possible == serial.possible
        assert fanned.deanonymized == serial.deanonymized
        assert fanned.eliminated == serial.eliminated

    def test_side_information_respected_in_parallel(self):
        rings = [
            Ring(rid="r0", tokens=frozenset({"a", "b"}), c=1.0, ell=1, seq=0),
            Ring(rid="r1", tokens=frozenset({"a", "b", "c"}), c=1.0, ell=1, seq=1),
        ]
        side = {"r0": "a"}
        serial = exact_analysis(rings, side_information=side)
        fanned = exact_analysis(rings, side_information=side, workers=2)
        assert fanned.possible == serial.possible
        assert fanned.possible["r0"] == frozenset({"a"})


class TestCliWorkers:
    def test_fig4_workers_flag(self, capsys):
        assert (
            main(
                [
                    "fig4",
                    "--tokens", "10",
                    "--max-rings", "1",
                    "--budget", "10",
                    "--workers", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "i-th RS" in out

    def test_fig4_workers_output_matches_serial(self, capsys):
        argv = ["fig4", "--tokens", "10", "--max-rings", "1", "--budget", "10"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out

        def strip_times(text):
            return [
                [col for i, col in enumerate(line.split("|")) if i != 1]
                for line in text.splitlines()
            ]

        assert strip_times(parallel) == strip_times(serial)
