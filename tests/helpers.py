"""Shared builders for the test suite (not a test module)."""

from repro.core.modules import ModuleUniverse
from repro.core.ring import Ring, TokenUniverse

__all__ = ["make_ring", "example3_modules"]


def make_ring(rid, tokens, seq=0, c=1.0, ell=1):
    """Terse ring constructor used across test modules."""
    return Ring(rid=rid, tokens=frozenset(tokens), c=c, ell=ell, seq=seq)


def example3_modules() -> ModuleUniverse:
    """Paper Example 3: four super RSs over six HTs.

    s1 = {t1..t6}, s2 = {t7..t10}, s3 = {t11, t12}, s4 = {t13..t15};
    h1 = {t1,t2,t7,t8}, h2 = {t3,t4,t9}, h3 = {t5,t13,t14},
    h6 = {t6,t10}, h4 = {t11,t15}, h5 = {t12}.
    """
    ht = {}
    for t in ("t1", "t2", "t7", "t8"):
        ht[t] = "h1"
    for t in ("t3", "t4", "t9"):
        ht[t] = "h2"
    for t in ("t5", "t13", "t14"):
        ht[t] = "h3"
    for t in ("t6", "t10"):
        ht[t] = "h6"
    for t in ("t11", "t15"):
        ht[t] = "h4"
    ht["t12"] = "h5"
    universe = TokenUniverse(ht)
    rings = [
        make_ring("s1", {"t1", "t2", "t3", "t4", "t5", "t6"}, seq=0),
        make_ring("s2", {"t7", "t8", "t9", "t10"}, seq=1),
        make_ring("s3", {"t11", "t12"}, seq=2),
        make_ring("s4", {"t13", "t14", "t15"}, seq=3),
    ]
    return ModuleUniverse(universe, rings)
