"""Unit tests for the homogeneity attack."""

from repro.analysis.homogeneity import homogeneity_attack, ht_distribution
from repro.core.ring import Ring, TokenUniverse


def ring(rid, tokens, seq=0):
    return Ring(rid=rid, tokens=frozenset(tokens), seq=seq)


class TestHomogeneityAttack:
    def test_paper_example_1_first_solution(self):
        # r3 = {t1, t3} with both tokens from h1: the HT leaks even
        # though the exact token stays hidden.
        universe = TokenUniverse({"t1": "h1", "t3": "h1"})
        rings = [ring("r3", {"t1", "t3"})]
        result = homogeneity_attack(rings, universe)
        assert result.revealed == {"r3": "h1"}
        assert result.revelation_rate == 1.0

    def test_diverse_ring_resists(self):
        universe = TokenUniverse({"a": "h1", "b": "h2"})
        rings = [ring("r1", {"a", "b"})]
        result = homogeneity_attack(rings, universe)
        assert result.revealed == {}
        assert result.ht_support["r1"] == 2

    def test_elimination_feeds_homogeneity(self):
        # After elimination, r3's survivors {t3, t4} share HT hx.
        universe = TokenUniverse(
            {"t1": "ha", "t2": "hb", "t3": "hx", "t4": "hx"}
        )
        rings = [
            ring("r1", {"t1", "t2"}),
            ring("r2", {"t1", "t2"}),
            ring("r3", {"t1", "t3", "t4"}),
        ]
        result = homogeneity_attack(rings, universe)
        assert result.revealed == {"r3": "hx"}

    def test_side_information_narrows_support(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h2"})
        rings = [ring("r1", {"a", "b"}), ring("r2", {"a", "c"})]
        before = homogeneity_attack(rings, universe)
        after = homogeneity_attack(rings, universe, side_information={"r1": "a"})
        assert before.revealed == {}
        # Knowing r1 -> a forces r2 -> c, whose HT is h2.
        assert after.revealed["r2"] == "h2"

    def test_precomputed_analysis_reused(self):
        from repro.analysis.chain_reaction import exact_analysis

        universe = TokenUniverse({"a": "h1", "b": "h1"})
        rings = [ring("r1", {"a", "b"})]
        analysis = exact_analysis(rings)
        result = homogeneity_attack(rings, universe, chain_reaction=analysis)
        assert result.revealed == {"r1": "h1"}


class TestHtDistribution:
    def test_counts(self):
        universe = TokenUniverse({"a": "h1", "b": "h1", "c": "h2"})
        counts = ht_distribution(frozenset({"a", "b", "c"}), universe)
        assert counts == {"h1": 2, "h2": 1}

    def test_empty(self):
        universe = TokenUniverse({"a": "h1"})
        assert ht_distribution(frozenset(), universe) == {}
