"""Property-based tests (hypothesis) on the core invariants."""

import random
from collections import Counter

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.combinations import (
    enumerate_combinations,
    has_complete_assignment,
    possible_consumed_tokens,
)
from repro.core.diversity import (
    diversity_deficit,
    satisfies_recursive_diversity,
    sorted_frequencies,
)
from repro.core.dtrs import get_dtrss
from repro.core.modules import ModuleUniverse, find_super_rings
from repro.core.problem import InfeasibleError
from repro.core.ring import Ring, TokenUniverse, related_ring_set
from repro.tokenmagic.registry import consumed_closure, neighbor_set_consumed

# -- strategies -----------------------------------------------------------

frequencies = st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=10)
c_values = st.floats(min_value=0.1, max_value=5.0, allow_nan=False)
ell_values = st.integers(min_value=1, max_value=8)


@st.composite
def small_ring_systems(draw, max_tokens=7, max_rings=5):
    """Random ring sets over a small token universe, with HT labels."""
    token_count = draw(st.integers(min_value=2, max_value=max_tokens))
    ht_count = draw(st.integers(min_value=1, max_value=token_count))
    tokens = [f"t{i}" for i in range(token_count)]
    universe = TokenUniverse(
        {t: f"h{draw(st.integers(min_value=0, max_value=ht_count - 1))}" for t in tokens}
    )
    ring_count = draw(st.integers(min_value=1, max_value=max_rings))
    rings = []
    for index in range(ring_count):
        size = draw(st.integers(min_value=1, max_value=token_count))
        members = draw(
            st.sets(st.sampled_from(tokens), min_size=size, max_size=size)
        )
        rings.append(Ring(rid=f"r{index}", tokens=frozenset(members), seq=index))
    return universe, rings


# -- diversity ------------------------------------------------------------


@given(frequencies, c_values, ell_values)
def test_deficit_sign_iff_satisfied(freqs, c, ell):
    freqs = sorted(freqs, reverse=True)
    assert (diversity_deficit(freqs, c, ell) < 0) == satisfies_recursive_diversity(
        freqs, c, ell
    )


@given(frequencies, c_values, ell_values)
def test_diversity_monotone_in_c(freqs, c, ell):
    freqs = sorted(freqs, reverse=True)
    if satisfies_recursive_diversity(freqs, c, ell):
        assert satisfies_recursive_diversity(freqs, c * 2, ell)


@given(frequencies, c_values, ell_values)
def test_diversity_antitone_in_ell(freqs, c, ell):
    freqs = sorted(freqs, reverse=True)
    if satisfies_recursive_diversity(freqs, c, ell + 1):
        assert satisfies_recursive_diversity(freqs, c, ell)


@given(frequencies)
def test_sorted_frequencies_descending(freqs):
    result = sorted_frequencies(Counter({f"h{i}": f for i, f in enumerate(freqs)}))
    assert result == sorted(result, reverse=True)


@given(frequencies, c_values, ell_values)
def test_adding_rare_label_never_hurts(freqs, c, ell):
    # Appending a fresh label with count 1 grows the tail and cannot
    # turn a satisfied instance into a violated one.
    freqs = sorted(freqs, reverse=True)
    if satisfies_recursive_diversity(freqs, c, ell):
        extended = sorted(freqs + [1], reverse=True)
        assert satisfies_recursive_diversity(extended, c, ell)


# -- combinations ---------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(small_ring_systems())
def test_enumeration_agrees_with_matching(system):
    _, rings = system
    combos = list(enumerate_combinations(rings, limit=500))
    if len(combos) < 500:
        assert has_complete_assignment(rings) == (len(combos) > 0)


@settings(max_examples=60, deadline=None)
@given(small_ring_systems())
def test_combinations_are_injective(system):
    _, rings = system
    for combo in enumerate_combinations(rings, limit=100):
        assert len(set(combo.values())) == len(combo)
        for ring in rings:
            assert combo[ring.rid] in ring.tokens


@settings(max_examples=40, deadline=None)
@given(small_ring_systems())
def test_possible_tokens_match_enumeration(system):
    _, rings = system
    assume(has_complete_assignment(rings))
    combos = list(enumerate_combinations(rings, limit=1000))
    assume(len(combos) < 1000)
    for ring in rings:
        from_worlds = {combo[ring.rid] for combo in combos}
        assert possible_consumed_tokens(ring, rings) == frozenset(from_worlds)


# -- DTRS -----------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(small_ring_systems(max_tokens=5, max_rings=3))
def test_dtrs_minimality_and_soundness(system):
    universe, rings = system
    assume(has_complete_assignment(rings))
    target = rings[0]
    worlds = list(enumerate_combinations(rings))
    assume(0 < len(worlds) <= 200)
    dtrss = get_dtrss(target, rings, universe)
    for dtrs in dtrss:
        # Soundness: every world containing the pairs agrees on the HT.
        for world in worlds:
            if all(world.get(rid) == token for token, rid in dtrs.pairs):
                assert universe.ht_of(world[target.rid]) == dtrs.determined_ht
        # Minimality: no returned DTRS strictly contains another.
        for other in dtrss:
            if other is not dtrs:
                assert not (other.pairs < dtrs.pairs)


# -- consumed closure ------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(small_ring_systems())
def test_neighbor_rule_under_approximates_closure(system):
    _, rings = system
    assume(has_complete_assignment(rings))
    assert neighbor_set_consumed(rings) <= consumed_closure(rings)


@settings(max_examples=60, deadline=None)
@given(small_ring_systems())
def test_closure_soundness(system):
    # Every token the closure marks consumed is consumed in every world.
    _, rings = system
    assume(has_complete_assignment(rings))
    combos = list(enumerate_combinations(rings, limit=500))
    assume(len(combos) < 500)
    consumed = consumed_closure(rings)
    for token in consumed:
        for combo in combos:
            assert token in combo.values()


# -- structure ------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(small_ring_systems())
def test_related_set_is_closed(system):
    _, rings = system
    target = rings[0]
    related = related_ring_set(target, rings[1:])
    related_tokens = set(target.tokens)
    for ring in related:
        related_tokens |= ring.tokens
    for ring in rings[1:]:
        if ring not in related:
            assert ring.tokens.isdisjoint(related_tokens)


@settings(max_examples=60, deadline=None)
@given(small_ring_systems())
def test_super_rings_cover_all_ring_tokens(system):
    universe, rings = system
    supers = find_super_rings(rings)
    ring_tokens = set()
    for ring in rings:
        ring_tokens |= ring.tokens
    super_tokens = set()
    for ring in supers:
        super_tokens |= ring.tokens
    assert ring_tokens == super_tokens


@settings(max_examples=40, deadline=None)
@given(small_ring_systems(), st.integers(min_value=0, max_value=1000))
def test_selectors_output_feasible_or_raise(system, seed):
    universe, rings = system
    from repro.core.baselines import smallest_select
    from repro.core.diversity import ht_counts_satisfy
    from repro.core.game import game_select
    from repro.core.progressive import progressive_select

    modules = ModuleUniverse(universe, rings)
    target = sorted(universe.tokens)[seed % len(universe.tokens)]
    for select in (progressive_select, game_select, smallest_select):
        try:
            result = select(modules, target, c=1.5, ell=2, rng=random.Random(seed))
        except InfeasibleError:
            continue
        assert target in result.tokens
        assert ht_counts_satisfy(universe.ht_counts(result.tokens), 1.5, 2)
