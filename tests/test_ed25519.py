"""Unit tests for the Ed25519 group arithmetic."""

import pytest

from repro.crypto.ed25519 import (
    D,
    G,
    IDENTITY,
    L,
    P,
    DecodingError,
    Point,
    compress,
    decompress,
    is_on_curve,
    multi_scalar_mult,
    point_add,
    point_double,
    scalar_mult,
)


class TestCurveConstants:
    def test_field_prime(self):
        assert P == 2**255 - 19

    def test_group_order_is_odd_prime_like(self):
        assert L % 2 == 1
        assert L > 2**251

    def test_d_satisfies_definition(self):
        assert (D * 121666 + 121665) % P == 0

    def test_base_point_on_curve(self):
        assert is_on_curve(G)

    def test_base_point_y_is_4_over_5(self):
        assert G.y * 5 % P == 4

    def test_identity_on_curve(self):
        assert is_on_curve(IDENTITY)


class TestGroupLaws:
    def test_identity_is_neutral(self):
        assert point_add(G, IDENTITY) == G
        assert point_add(IDENTITY, G) == G

    def test_addition_commutes(self):
        two_g = point_double(G)
        assert point_add(G, two_g) == point_add(two_g, G)

    def test_addition_associates(self):
        a = scalar_mult(2, G)
        b = scalar_mult(3, G)
        c = scalar_mult(5, G)
        assert point_add(point_add(a, b), c) == point_add(a, point_add(b, c))

    def test_double_equals_add_self(self):
        assert point_double(G) == point_add(G, G)

    def test_scalar_mult_matches_repeated_addition(self):
        accumulated = IDENTITY
        for k in range(1, 8):
            accumulated = point_add(accumulated, G)
            assert scalar_mult(k, G) == accumulated

    def test_order_annihilates_base_point(self):
        assert scalar_mult(L, G) == IDENTITY

    def test_scalar_zero_gives_identity(self):
        assert scalar_mult(0, G) == IDENTITY

    def test_scalar_reduction_mod_order(self):
        assert scalar_mult(L + 5, G) == scalar_mult(5, G)

    def test_negative_inverse(self):
        minus_one = scalar_mult(L - 1, G)
        assert point_add(G, minus_one) == IDENTITY

    def test_distributivity(self):
        assert scalar_mult(7, G) == point_add(scalar_mult(3, G), scalar_mult(4, G))

    def test_results_stay_on_curve(self):
        point = scalar_mult(123456789, G)
        assert is_on_curve(point)

    def test_operator_overloads(self):
        assert G + G == point_double(G)
        assert 3 * G == scalar_mult(3, G)
        assert G * 3 == scalar_mult(3, G)


class TestMultiScalarMult:
    def test_empty_sum_is_identity(self):
        assert multi_scalar_mult([]) == IDENTITY

    def test_single_term(self):
        assert multi_scalar_mult([(9, G)]) == scalar_mult(9, G)

    def test_linear_combination(self):
        p = scalar_mult(11, G)
        expected = point_add(scalar_mult(3, G), scalar_mult(5, p))
        assert multi_scalar_mult([(3, G), (5, p)]) == expected


class TestEncoding:
    def test_round_trip_base_point(self):
        assert decompress(compress(G)) == G

    def test_round_trip_random_points(self):
        for k in (2, 3, 99, 2**200 + 17):
            point = scalar_mult(k, G)
            assert decompress(compress(point)) == point

    def test_encoding_is_32_bytes(self):
        assert len(compress(G)) == 32

    def test_identity_round_trip(self):
        assert decompress(compress(IDENTITY)) == IDENTITY

    def test_wrong_length_rejected(self):
        with pytest.raises(DecodingError):
            decompress(b"\x00" * 31)

    def test_non_curve_bytes_rejected(self):
        # y = 2 is not on the curve: (y^2-1)/(dy^2+1) has no square root.
        bad = (2).to_bytes(32, "little")
        with pytest.raises(DecodingError):
            decompress(bad)

    def test_y_out_of_range_rejected(self):
        bad = (P + 1).to_bytes(32, "little")
        with pytest.raises(DecodingError):
            decompress(bad)

    def test_points_hashable(self):
        assert len({G, point_double(G), G}) == 2


class TestPointValidation:
    def test_off_curve_point_detected(self):
        assert not is_on_curve(Point(1, 1))

    def test_encode_method(self):
        assert G.encode() == compress(G)
