"""Unit tests for anonymity metrics."""

import math

import pytest

from repro.analysis.chain_reaction import exact_analysis
from repro.analysis.metrics import (
    population_metrics,
    ring_anonymity,
    total_fee,
)
from repro.core.ring import Ring, TokenUniverse


def ring(rid, tokens, seq=0):
    return Ring(rid=rid, tokens=frozenset(tokens), seq=seq)


class TestRingAnonymity:
    def test_untouched_ring(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3", "d": "h4"})
        r = ring("r", {"a", "b", "c", "d"})
        analysis = exact_analysis([r])
        anonymity = ring_anonymity(r, analysis, universe)
        assert anonymity.nominal_size == 4
        assert anonymity.effective_size == 4
        assert anonymity.token_entropy == pytest.approx(2.0)
        assert anonymity.ht_entropy == pytest.approx(2.0)
        assert not anonymity.fully_deanonymized

    def test_deanonymized_ring(self):
        universe = TokenUniverse({"a": "h1", "b": "h2"})
        r1 = ring("r1", {"a"})
        r2 = ring("r2", {"a", "b"})
        analysis = exact_analysis([r1, r2])
        anonymity = ring_anonymity(r2, analysis, universe)
        assert anonymity.effective_size == 1
        assert anonymity.token_entropy == 0.0
        assert anonymity.fully_deanonymized

    def test_ht_entropy_lower_than_token_entropy_when_skewed(self):
        universe = TokenUniverse({"a": "h1", "b": "h1", "c": "h2"})
        r = ring("r", {"a", "b", "c"})
        analysis = exact_analysis([r])
        anonymity = ring_anonymity(r, analysis, universe)
        assert anonymity.token_entropy == pytest.approx(math.log2(3))
        assert anonymity.ht_entropy < anonymity.token_entropy


class TestPopulationMetrics:
    def test_aggregates(self):
        universe = TokenUniverse(
            {"a": "h1", "b": "h2", "c": "h3", "d": "h4"}
        )
        rings = [ring("r1", {"a", "b"}), ring("r2", {"c", "d"})]
        metrics = population_metrics(rings, universe)
        assert metrics.ring_count == 2
        assert metrics.mean_nominal_size == 2.0
        assert metrics.mean_effective_size == 2.0
        assert metrics.deanonymization_rate == 0.0
        assert metrics.total_fee == 2  # one mixin each

    def test_cascade_option(self):
        universe = TokenUniverse({"a": "h1", "b": "h2"})
        rings = [ring("r1", {"a", "b"}), ring("r2", {"a", "b"})]
        exact = population_metrics(rings, universe, exact=True)
        weak = population_metrics(rings, universe, exact=False)
        assert exact.mean_effective_size <= weak.mean_effective_size

    def test_side_information(self):
        universe = TokenUniverse({"a": "h1", "b": "h2"})
        rings = [ring("r1", {"a", "b"}), ring("r2", {"a", "b"})]
        metrics = population_metrics(
            rings, universe, side_information={"r1": "a"}
        )
        assert metrics.deanonymization_rate == 1.0

    def test_empty_population_rejected(self):
        universe = TokenUniverse({"a": "h1"})
        with pytest.raises(ValueError):
            population_metrics([], universe)


class TestTotalFee:
    def test_fee_counts_mixins(self):
        rings = [ring("r1", {"a", "b", "c"}), ring("r2", {"d"})]
        assert total_fee(rings) == 2

    def test_empty(self):
        assert total_fee([]) == 0
