"""The observability equivalence contract (DESIGN.md §9).

Recording must never change solver behaviour: with metrics and tracing
enabled, ``bfs_select`` returns byte-identical results (ring tokens,
mixin set, ``candidates_checked``) to a bare run, serial and parallel
alike.  This is the acceptance pin of the obs layer — instrumentation
that bends the search is worse than none.
"""

import random

from repro.core.bfs import bfs_select
from repro.core.problem import DamsInstance
from repro.core.ring import Ring, TokenUniverse
from repro.obs import metrics, trace

TOKEN_COUNT = 20
HT_COUNT = 10
C = 5.0
ELL = 3
MAX_RINGS = 3


def _ladder(workers: int = 0):
    """Three sequential fig4-style generations; returns comparable rows."""
    rng = random.Random(0)
    universe = TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(HT_COUNT)}" for i in range(TOKEN_COUNT)}
    )
    rings: list[Ring] = []
    consumed: set[str] = set()
    rows = []
    for index in range(MAX_RINGS):
        free = sorted(universe.tokens - consumed)
        target = free[rng.randrange(len(free))]
        instance = DamsInstance(universe, list(rings), target, c=C, ell=ELL)
        result = bfs_select(instance, workers=workers)
        rows.append(
            (
                sorted(result.ring.tokens),
                sorted(result.mixins),
                result.candidates_checked,
            )
        )
        rings.append(
            Ring(
                rid=f"r{index}",
                tokens=result.ring.tokens,
                c=C,
                ell=ELL,
                seq=result.ring.seq,
            )
        )
        consumed.add(target)
    return rows


def test_recording_off_matches_recording_on_serial():
    bare = _ladder()
    with metrics.recording() as rec, trace.tracing() as tracer:
        observed = _ladder()
    assert observed == bare
    # ... and the run actually recorded something (no silent no-op).
    assert rec.counters["bfs.selected"] == MAX_RINGS
    assert rec.counters["bfs.candidates"] > 0
    assert any(sp.name == "bfs.select" for sp in tracer.finished)


def test_recording_on_matches_bare_parallel():
    bare = _ladder()
    with metrics.recording():
        observed = _ladder(workers=2)
    assert observed == bare


def test_metrics_only_and_trace_only_both_inert():
    bare = _ladder()
    with metrics.recording():
        assert _ladder() == bare
    with trace.tracing():
        assert _ladder() == bare
