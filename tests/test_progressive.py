"""Unit tests for the Progressive Algorithm (Algorithm 4)."""

import pytest

from repro.core.diversity import ht_counts_satisfy
from repro.core.modules import ModuleUniverse
from repro.core.problem import InfeasibleError
from repro.core.progressive import progressive_select
from repro.core.ring import TokenUniverse

from helpers import example3_modules


class TestPaperExample3:
    def test_exact_trace(self):
        # Paper: first while-loop picks s2; second picks s4 (beta_4=1/3
        # beats beta_1=-1/6); result s2 ∪ s3 ∪ s4, size 9.
        result = progressive_select(example3_modules(), "t11", c=1.0, ell=4)
        assert set(result.modules) == {"s:s3", "s:s2", "s:s4"}
        assert result.size == 9

    def test_result_satisfies_requirement(self):
        modules = example3_modules()
        result = progressive_select(modules, "t11", c=1.0, ell=4)
        counts = modules.universe.ht_counts(result.tokens)
        assert ht_counts_satisfy(counts, 1.0, 4)


class TestGeneralBehaviour:
    def test_anchor_always_included(self):
        modules = example3_modules()
        result = progressive_select(modules, "t7", c=1.0, ell=4)
        assert "t7" in result.tokens
        assert result.target_token == "t7"

    def test_fresh_token_anchor(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3"})
        modules = ModuleUniverse(universe, [])
        result = progressive_select(modules, "a", c=2.0, ell=2)
        assert "a" in result.tokens
        assert result.size == 2  # a + one other HT's token

    def test_output_is_union_of_modules(self):
        modules = example3_modules()
        result = progressive_select(modules, "t11", c=1.0, ell=4)
        expected = set()
        for mid in result.modules:
            module = next(m for m in modules.modules if m.mid == mid)
            expected |= module.tokens
        assert result.tokens == frozenset(expected)

    def test_deterministic(self):
        modules = example3_modules()
        a = progressive_select(modules, "t11", c=1.0, ell=4)
        b = progressive_select(modules, "t11", c=1.0, ell=4)
        assert a.tokens == b.tokens
        assert a.modules == b.modules

    def test_algorithm_label_and_timing(self):
        result = progressive_select(example3_modules(), "t11", c=1.0, ell=4)
        assert result.algorithm == "progressive"
        assert result.elapsed >= 0
        assert result.mixins == result.tokens - {"t11"}


class TestInfeasibility:
    def test_not_enough_hts(self):
        universe = TokenUniverse({"a": "h1", "b": "h1", "c": "h2"})
        modules = ModuleUniverse(universe, [])
        with pytest.raises(InfeasibleError):
            progressive_select(modules, "a", c=1.0, ell=3)

    def test_deficit_cannot_be_repaired(self):
        # Nine tokens of h1 vs one of h2: (0.1, 2) needs q1 < 0.1 * q2.
        universe = TokenUniverse(
            {f"t{i}": "h1" for i in range(9)} | {"x": "h2"}
        )
        modules = ModuleUniverse(universe, [])
        with pytest.raises(InfeasibleError):
            progressive_select(modules, "t0", c=0.1, ell=2)


class TestApproximationQuality:
    def test_never_smaller_than_ell_requirement(self):
        modules = example3_modules()
        result = progressive_select(modules, "t11", c=1.0, ell=4)
        hts = set(modules.universe.ht_counts(result.tokens))
        assert len(hts) >= 4

    def test_reasonable_against_universe(self):
        modules = example3_modules()
        result = progressive_select(modules, "t11", c=1.0, ell=4)
        assert result.size < len(modules.universe)
