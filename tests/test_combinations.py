"""Unit tests for token-RS combinations (SDR enumeration + matching)."""

import pytest

from repro.core.combinations import (
    count_combinations,
    eliminated_tokens,
    enumerate_combinations,
    has_complete_assignment,
    possible_consumed_tokens,
)
from repro.core.ring import Ring


def ring(rid, tokens, seq=0):
    return Ring(rid=rid, tokens=frozenset(tokens), seq=seq)


class TestEnumeration:
    def test_single_ring(self):
        combos = list(enumerate_combinations([ring("r1", {"a", "b"})]))
        assert sorted(c["r1"] for c in combos) == ["a", "b"]

    def test_injectivity(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"a", "b"})]
        combos = list(enumerate_combinations(rings))
        assert len(combos) == 2
        for combo in combos:
            assert combo["r1"] != combo["r2"]

    def test_all_rings_assigned(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"b", "c"}), ring("r3", {"c", "a"})]
        for combo in enumerate_combinations(rings):
            assert set(combo) == {"r1", "r2", "r3"}

    def test_count_matches_permanent(self):
        # Complete bipartite K3,3: permanent = 3! = 6.
        tokens = {"a", "b", "c"}
        rings = [ring(f"r{i}", tokens) for i in range(3)]
        assert count_combinations(rings) == 6

    def test_no_combination_when_overconstrained(self):
        # Three rings over two tokens cannot all consume distinct tokens.
        rings = [ring(f"r{i}", {"a", "b"}) for i in range(3)]
        assert count_combinations(rings) == 0

    def test_forced_pair_restricts(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"a", "b"})]
        combos = list(enumerate_combinations(rings, forced={"r1": "a"}))
        assert combos == [{"r1": "a", "r2": "b"}]

    def test_forced_pair_outside_ring_yields_nothing(self):
        assert count_combinations([ring("r1", {"a"})], forced={"r1": "z"}) == 0

    def test_excluded_tokens_removed(self):
        rings = [ring("r1", {"a", "b"})]
        combos = list(enumerate_combinations(rings, excluded_tokens={"a"}))
        assert combos == [{"r1": "b"}]

    def test_limit_stops_early(self):
        tokens = {f"t{i}" for i in range(6)}
        rings = [ring(f"r{i}", tokens) for i in range(6)]
        assert count_combinations(rings, limit=10) == 10

    def test_empty_ring_set(self):
        assert list(enumerate_combinations([])) == [{}]


class TestMatching:
    def test_feasible_simple(self):
        assert has_complete_assignment([ring("r1", {"a"}), ring("r2", {"b"})])

    def test_infeasible_hall_violation(self):
        rings = [ring(f"r{i}", {"a", "b"}) for i in range(3)]
        assert not has_complete_assignment(rings)

    def test_matches_enumeration(self):
        cases = [
            [ring("r1", {"a", "b"}), ring("r2", {"b"}), ring("r3", {"a", "c"})],
            [ring("r1", {"a"}), ring("r2", {"a"})],
            [ring("r1", {"a", "b", "c"})],
        ]
        for rings in cases:
            assert has_complete_assignment(rings) == (count_combinations(rings) > 0)

    def test_forced_respected(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"b"})]
        assert has_complete_assignment(rings, forced={"r1": "a"})
        assert not has_complete_assignment(rings, forced={"r1": "b"})

    def test_excluded_respected(self):
        rings = [ring("r1", {"a", "b"})]
        assert not has_complete_assignment(rings, excluded_tokens={"a", "b"})


class TestPossibleTokens:
    def test_paper_example_1_elimination(self):
        # r1 = r2 = {t1, t2}; a new ring {t2, t3} can only consume t3.
        r1 = ring("r1", {"t1", "t2"})
        r2 = ring("r2", {"t1", "t2"})
        r3 = ring("r3", {"t2", "t3"})
        possible = possible_consumed_tokens(r3, [r1, r2, r3])
        assert possible == frozenset({"t3"})
        assert eliminated_tokens(r3, [r1, r2, r3]) == frozenset({"t2"})

    def test_unconstrained_ring_keeps_all(self):
        r1 = ring("r1", {"a", "b", "c"})
        assert possible_consumed_tokens(r1, [r1]) == frozenset({"a", "b", "c"})

    def test_target_must_be_member(self):
        r1 = ring("r1", {"a"})
        outsider = ring("r2", {"b"})
        with pytest.raises(ValueError):
            possible_consumed_tokens(outsider, [r1])

    def test_agrees_with_enumeration(self):
        r1 = ring("r1", {"a", "b"})
        r2 = ring("r2", {"b", "c"})
        r3 = ring("r3", {"a", "c"})
        rings = [r1, r2, r3]
        for target in rings:
            from_worlds = {
                combo[target.rid] for combo in enumerate_combinations(rings)
            }
            assert possible_consumed_tokens(target, rings) == frozenset(from_worlds)
