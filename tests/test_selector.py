"""Unit tests for the shared selector interface and result type."""

import pytest

from repro.core.selector import (
    SELECTORS,
    SelectionResult,
    get_selector,
    register_selector,
)


class TestSelectionResult:
    def test_size_and_mixins(self):
        result = SelectionResult(
            tokens=frozenset({"a", "b", "c"}),
            target_token="a",
        )
        assert result.size == 3
        assert result.mixins == frozenset({"b", "c"})

    def test_defaults(self):
        result = SelectionResult(tokens=frozenset({"x"}), target_token="x")
        assert result.modules == ()
        assert result.elapsed == 0.0
        assert result.algorithm == ""

    def test_frozen(self):
        result = SelectionResult(tokens=frozenset({"x"}), target_token="x")
        with pytest.raises((AttributeError, TypeError)):
            result.tokens = frozenset({"y"})


class TestRegistry:
    def test_builtin_selectors_present(self):
        for name in ("progressive", "game", "smallest", "random"):
            assert name in SELECTORS

    def test_register_and_lookup(self):
        @register_selector("test-only-selector")
        def fake(modules, target_token, c, ell, rng=None):
            return SelectionResult(
                tokens=frozenset({target_token}), target_token=target_token
            )

        try:
            assert get_selector("test-only-selector") is fake
        finally:
            del SELECTORS["test-only-selector"]

    def test_unknown_lists_known(self):
        with pytest.raises(KeyError) as excinfo:
            get_selector("nope")
        message = str(excinfo.value)
        assert "game" in message and "progressive" in message
