"""Unit tests for transactions and ring inputs."""

import pytest

from repro.chain.token import TokenOutput
from repro.chain.transaction import FEE_PER_MIXIN, RingInput, Transaction


class TestRingInput:
    def test_canonical_sorted_form_required(self):
        with pytest.raises(ValueError):
            RingInput(ring_tokens=("b", "a"))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            RingInput(ring_tokens=("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RingInput(ring_tokens=())

    def test_mixin_count(self):
        ring = RingInput(ring_tokens=("a", "b", "c"))
        assert ring.mixin_count == 2

    def test_token_set(self):
        ring = RingInput(ring_tokens=("a", "b"))
        assert ring.token_set() == frozenset({"a", "b"})

    def test_diversity_claim_defaults(self):
        ring = RingInput(ring_tokens=("a",))
        assert ring.claimed_c == 1.0
        assert ring.claimed_ell == 1


class TestTransaction:
    def test_id_is_deterministic(self):
        tx1 = Transaction(inputs=(), output_count=2, nonce=7)
        tx2 = Transaction(inputs=(), output_count=2, nonce=7)
        assert tx1.tx_id == tx2.tx_id

    def test_id_depends_on_content(self):
        base = Transaction(inputs=(), output_count=2, nonce=0)
        other_nonce = Transaction(inputs=(), output_count=2, nonce=1)
        other_outputs = Transaction(inputs=(), output_count=3, nonce=0)
        assert base.tx_id != other_nonce.tx_id
        assert base.tx_id != other_outputs.tx_id

    def test_id_depends_on_rings(self):
        tx_a = Transaction(
            inputs=(RingInput(ring_tokens=("a", "b")),), output_count=1
        )
        tx_b = Transaction(
            inputs=(RingInput(ring_tokens=("a", "c")),), output_count=1
        )
        assert tx_a.tx_id != tx_b.tx_id

    def test_empty_transaction_rejected(self):
        with pytest.raises(ValueError):
            Transaction(inputs=(), output_count=0)

    def test_negative_outputs_rejected(self):
        with pytest.raises(ValueError):
            Transaction(inputs=(), output_count=-1)

    def test_fee_proportional_to_mixins(self):
        tx = Transaction(
            inputs=(
                RingInput(ring_tokens=("a", "b", "c")),
                RingInput(ring_tokens=("d", "e")),
            ),
            output_count=1,
        )
        assert tx.fee == FEE_PER_MIXIN * 3

    def test_coinbase_has_zero_fee(self):
        tx = Transaction(inputs=(), output_count=2)
        assert tx.fee == 0

    def test_make_outputs(self):
        tx = Transaction(inputs=(), output_count=3)
        outputs = tx.make_outputs()
        assert len(outputs) == 3
        assert [o.index for o in outputs] == [0, 1, 2]
        assert all(o.origin_tx == tx.tx_id for o in outputs)
        assert outputs[0].token_id == f"{tx.tx_id}:0"

    def test_make_outputs_deterministic(self):
        tx = Transaction(inputs=(), output_count=2)
        assert tx.make_outputs() == tx.make_outputs()


class TestTokenOutput:
    def test_make_id(self):
        assert TokenOutput.make_id("abc", 4) == "abc:4"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            TokenOutput(token_id="x:0", origin_tx="x", index=-1)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            TokenOutput(token_id="", origin_tx="x", index=0)
