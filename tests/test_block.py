"""Unit tests for blocks and the Merkle digest."""

import pytest

from repro.chain.block import GENESIS_HASH, Block
from repro.chain.transaction import Transaction


def coinbase(outputs=2, nonce=0):
    return Transaction(inputs=(), output_count=outputs, nonce=nonce)


class TestBlock:
    def test_hash_deterministic(self):
        tx = coinbase()
        a = Block(height=0, prev_hash=GENESIS_HASH, timestamp=1.0, transactions=(tx,))
        b = Block(height=0, prev_hash=GENESIS_HASH, timestamp=1.0, transactions=(tx,))
        assert a.block_hash == b.block_hash

    def test_hash_depends_on_transactions(self):
        a = Block(0, GENESIS_HASH, 1.0, (coinbase(nonce=0),))
        b = Block(0, GENESIS_HASH, 1.0, (coinbase(nonce=1),))
        assert a.block_hash != b.block_hash

    def test_hash_depends_on_prev(self):
        a = Block(1, "a" * 64, 1.0, ())
        b = Block(1, "b" * 64, 1.0, ())
        assert a.block_hash != b.block_hash

    def test_hash_depends_on_height_and_time(self):
        assert (
            Block(1, GENESIS_HASH, 1.0, ()).block_hash
            != Block(2, GENESIS_HASH, 1.0, ()).block_hash
        )
        assert (
            Block(1, GENESIS_HASH, 1.0, ()).block_hash
            != Block(1, GENESIS_HASH, 2.0, ()).block_hash
        )

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            Block(-1, GENESIS_HASH, 1.0, ())

    def test_token_count(self):
        block = Block(0, GENESIS_HASH, 1.0, (coinbase(2), coinbase(3, nonce=1)))
        assert block.token_count == 5

    def test_empty_block_token_count(self):
        assert Block(0, GENESIS_HASH, 1.0, ()).token_count == 0

    def test_odd_transaction_count_merkle(self):
        # Odd leaf counts exercise the duplicate-tail branch.
        txs = tuple(coinbase(nonce=i) for i in range(3))
        block = Block(0, GENESIS_HASH, 1.0, txs)
        assert len(block.block_hash) == 64
