"""Tests for repro.obs.trace: spans, nesting, the JSONL exporter."""

import json
import os

from repro.obs import trace


class TestSpans:
    def test_disabled_span_yields_none(self):
        assert trace.active() is None
        with trace.span("anything", key=1) as sp:
            assert sp is None

    def test_tracing_installs_and_restores(self):
        with trace.tracing() as tracer:
            assert trace.active() is tracer
        assert trace.active() is None

    def test_span_records_name_attrs_and_timing(self):
        with trace.tracing() as tracer:
            with trace.span("bfs.select", target="t1") as sp:
                sp.attrs["late"] = 42  # attrs stay writable until finish
        (finished,) = tracer.finished
        assert finished.name == "bfs.select"
        assert finished.attrs == {"target": "t1", "late": 42}
        assert finished.end is not None
        assert finished.duration >= 0

    def test_nesting_sets_parent_ids(self):
        with trace.tracing() as tracer:
            with trace.span("outer") as outer:
                with trace.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
            with trace.span("sibling") as sibling:
                assert sibling.parent_id is None
        # Children finish before their parents.
        names = [sp.name for sp in tracer.finished]
        assert names == ["inner", "outer", "sibling"]

    def test_instant_is_zero_duration_child(self):
        with trace.tracing() as tracer:
            with trace.span("parent") as parent:
                trace.instant("event", hit=True)
        event = tracer.finished[0]
        assert event.name == "event"
        assert event.parent_id == parent.span_id
        assert event.duration == 0
        assert event.attrs == {"hit": True}

    def test_instant_disabled_is_noop(self):
        trace.instant("dropped")  # no tracer installed: must not raise


class TestJsonlExport:
    def test_export_is_parseable_and_end_ordered(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with trace.tracing() as tracer:
            with trace.span("a"):
                with trace.span("b"):
                    trace.instant("mark")
        count = tracer.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert all(
            set(r) == {"name", "span_id", "parent_id", "pid", "start", "end",
                       "attrs"}
            for r in records
        )
        assert all(r["pid"] == os.getpid() for r in records)
        ends = [r["end"] for r in records]
        assert ends == sorted(ends)

    def test_export_appends_across_tracers(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            with trace.tracing() as tracer:
                with trace.span("run"):
                    pass
            tracer.export_jsonl(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2  # O_APPEND: the second export kept the first

    def test_exporter_writes_whole_lines(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        # Two exporters on one file model two processes sharing a trace.
        with trace.JsonlExporter(path) as left, trace.JsonlExporter(path) as right:
            left.write({"who": "left"})
            right.write({"who": "right"})
            left.write({"who": "left"})
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["who"] for r in records] == ["left", "right", "left"]
